"""Engine run telemetry: the run ledger, live tailing and trial profiling.

The experiment engine used to be a black box: the warm pool forked, chunks
flew, and the only artifact was the final result document.  This module
gives every run a durable, streamable self-description:

* :class:`RunManifest` — who/what/where of a run: ``run_id``, the
  :class:`~repro.engine.spec.ExecutorSpec`, a plan digest, repro and
  result-schema versions, host info.  Written as the first line of the
  telemetry stream, it *is* the run ledger entry.
* :class:`TelemetryRecorder` — owns the append-only ``telemetry.jsonl``
  file beside the result document (``repro-run-telemetry`` v1, see
  :mod:`repro.obs.spans`), receives the executor's hierarchical spans
  (run → dispatch → chunk → trial, with calibration / warm-up /
  quarantine annotated), aggregates per-worker health (busy time, queue
  wait, utilization, trials/sec, peak RSS) and writes the final
  ``summary`` record.  Every line is flushed on write so a concurrent
  ``repro top`` can tail the live file.
* :class:`TelemetryTail` — the incremental reader behind ``repro top``:
  polls a (possibly still growing) stream, maintains progress / ETA /
  per-worker state, renders the live table.
* :func:`scan_runs` / :func:`find_run` — the ledger view behind
  ``repro runs list|show``: every ``*.telemetry.jsonl`` under a directory
  is one run, keyed by its manifest.
* :func:`profile_slowest` — opt-in cProfile sampling: deterministically
  re-runs the K slowest trials under the profiler *after* the plan
  finishes (re-running never perturbs the recorded run) and surfaces the
  hottest functions in the telemetry summary.

Determinism contract (the faults/resilience idiom): telemetry is pure
observation.  ``run_plan(plan, telemetry=...)`` produces the byte-identical
result document to ``run_plan(plan)`` under every backend, chunk size and
stream container — pinned by ``tests/engine/test_telemetry.py``.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import socket
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Mapping, Sequence

from repro.obs.spans import (
    Span,
    SpanTracer,
    TELEMETRY_SCHEMA,
    TELEMETRY_VERSION,
    read_telemetry,
)
from repro.sim.errors import ConfigurationError
from repro.version import package_version

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.plan import ExperimentPlan, TrialSpec
    from repro.engine.results import TrialResult

#: Default ledger directory for runs that have no result-document anchor.
DEFAULT_RUNS_DIR = os.path.join(".repro", "runs")

#: Filename suffix every ledger entry carries.
TELEMETRY_SUFFIX = ".telemetry.jsonl"


def new_run_id() -> str:
    """A sortable, collision-safe run id: UTC stamp + random tail."""
    stamp = time.strftime("%Y%m%d-%H%M%S", time.gmtime())
    return f"{stamp}-{uuid.uuid4().hex[:6]}"


def plan_digest(plan: "ExperimentPlan") -> str:
    """A stable hex digest of a plan's full spec list.

    Two runs with the same digest executed the same trials (same grid,
    base config, seeds and order), so ledger consumers can group repeats
    and detect drift without re-reading result documents.
    """
    from repro.engine.results import jsonable

    specs = [
        [spec.kind, spec.index, spec.trial, spec.seed,
         jsonable(spec.point), jsonable(spec.labels), jsonable(spec.overrides)]
        for spec in plan.specs
    ]
    blob = json.dumps([jsonable(plan.meta()), specs], sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def host_info() -> dict[str, Any]:
    """The host fields of a run manifest."""
    return {
        "hostname": socket.gethostname(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "pid": os.getpid(),
    }


@dataclass(frozen=True)
class RunManifest:
    """The durable identity of one engine run — the ledger entry.

    Serialised as the first line of the telemetry stream.  ``executor``
    holds the :class:`~repro.engine.spec.ExecutorSpec` wire dict (or a
    best-effort description of a hand-built backend); ``cli`` is present
    only for runs launched through ``repro`` and carries the
    ``repro --version`` banner plus the argv.
    """

    run_id: str
    started: float
    plan: Mapping[str, Any]
    executor: Mapping[str, Any]
    host: Mapping[str, Any]
    repro_version: str
    result_schema: Mapping[str, Any]
    cli: Mapping[str, Any] | None = None
    #: Path of the run's ``repro-run-checkpoint`` journal, when one was
    #: written — what ``repro resume`` follows.
    checkpoint: str | None = None
    #: The run id this run resumed (``repro resume``); ``None`` for
    #: first attempts.
    resumed_from: str | None = None

    def to_record(self) -> dict[str, Any]:
        record: dict[str, Any] = {
            "type": "manifest",
            "schema": TELEMETRY_SCHEMA,
            "version": TELEMETRY_VERSION,
            "run_id": self.run_id,
            "started": self.started,
            "started_iso": time.strftime(
                "%Y-%m-%dT%H:%M:%SZ", time.gmtime(self.started)
            ),
            "plan": dict(self.plan),
            "executor": dict(self.executor),
            "host": dict(self.host),
            "repro_version": self.repro_version,
            "result_schema": dict(self.result_schema),
        }
        if self.cli is not None:
            record["cli"] = dict(self.cli)
        if self.checkpoint is not None:
            record["checkpoint"] = self.checkpoint
        if self.resumed_from is not None:
            record["resumed_from"] = self.resumed_from
        return record

    @classmethod
    def from_record(cls, record: Mapping[str, Any]) -> "RunManifest":
        return cls(
            run_id=record["run_id"],
            started=record["started"],
            plan=dict(record.get("plan", {})),
            executor=dict(record.get("executor", {})),
            host=dict(record.get("host", {})),
            repro_version=record.get("repro_version", ""),
            result_schema=dict(record.get("result_schema", {})),
            cli=dict(record["cli"]) if record.get("cli") else None,
            checkpoint=record.get("checkpoint"),
            resumed_from=record.get("resumed_from"),
        )


@dataclass
class WorkerHealth:
    """Accumulated health metrics for one worker process.

    ``busy_s`` sums chunk wall times; ``queue_wait_s`` sums each chunk's
    submit→start latency; utilization is busy time over the worker's
    observed lifetime (first chunk start to last chunk end).  The parent
    process itself appears as a worker for serial runs and calibration
    trials.
    """

    pid: int
    chunks: int = 0
    trials: int = 0
    busy_s: float = 0.0
    queue_wait_s: float = 0.0
    rss_kb_max: float = 0.0
    first_start: float = field(default=float("inf"))
    last_end: float = 0.0

    def observe_chunk(
        self,
        t0: float,
        t1: float,
        trials: int,
        queue_wait: float,
        rss_kb: float,
    ) -> None:
        self.chunks += 1
        self.trials += trials
        self.busy_s += max(0.0, t1 - t0)
        self.queue_wait_s += max(0.0, queue_wait)
        self.rss_kb_max = max(self.rss_kb_max, rss_kb)
        self.first_start = min(self.first_start, t0)
        self.last_end = max(self.last_end, t1)

    @property
    def lifetime_s(self) -> float:
        if self.last_end <= self.first_start:
            return 0.0
        return self.last_end - self.first_start

    @property
    def utilization(self) -> float:
        life = self.lifetime_s
        return min(1.0, self.busy_s / life) if life > 0 else 1.0

    @property
    def trials_per_sec(self) -> float:
        return self.trials / self.busy_s if self.busy_s > 0 else 0.0

    @property
    def queue_wait_mean_s(self) -> float:
        return self.queue_wait_s / self.chunks if self.chunks else 0.0

    def to_record(self) -> dict[str, Any]:
        return {
            "pid": self.pid,
            "chunks": self.chunks,
            "trials": self.trials,
            "busy_s": round(self.busy_s, 6),
            "utilization": round(self.utilization, 4),
            "trials_per_sec": round(self.trials_per_sec, 3),
            "queue_wait_mean_s": round(self.queue_wait_mean_s, 6),
            "rss_kb_max": self.rss_kb_max,
        }


class TelemetryRecorder:
    """Writes one run's ``repro-run-telemetry`` stream.

    Usage (what :func:`repro.engine.executor.run_plan` does internally)::

        recorder = TelemetryRecorder("results.telemetry.jsonl")
        recorder.open_run(plan, executor_desc)
        ...   # the executor emits spans through the recorder
        recorder.close()

    The recorder is attached to a backend for the duration of one plan
    (``backend.telemetry = recorder``); the executor calls the
    ``record_*`` hooks from its dispatch loops.  All writes happen in the
    parent process and are line-buffered + flushed, so the stream is
    tail-able while the run is live.
    """

    def __init__(
        self,
        path: str | None = None,
        directory: str | None = None,
        run_id: str | None = None,
        cli: Mapping[str, Any] | None = None,
        resumed_from: str | None = None,
    ) -> None:
        if path is not None and directory is not None:
            raise ConfigurationError(
                "give either 'path' or 'directory', not both"
            )
        self.run_id = run_id if run_id is not None else new_run_id()
        self._cli = dict(cli) if cli is not None else None
        self._resumed_from = resumed_from
        if path is None:
            base = directory if directory is not None else DEFAULT_RUNS_DIR
            path = os.path.join(base, f"run-{self.run_id}{TELEMETRY_SUFFIX}")
        self.path = str(path)
        self.manifest: RunManifest | None = None
        self.tracer = SpanTracer(self._write_span)
        self._handle: Any = None
        self._lock = threading.Lock()
        self._run_span: Any = None
        self._counts = {"ok": 0, "failed": 0, "skipped": 0, "quarantined": 0}
        self._trials = 0
        self._workers: dict[int, WorkerHealth] = {}
        self._profiles: list[dict[str, Any]] = []
        self._recovery = {
            "worker_respawns": 0,
            "chunks_redispatched": 0,
            "trials_redispatched": 0,
            "poison_quarantined": 0,
        }
        self._resumed_trials: int | None = None
        self._closed = False

    # ------------------------------------------------------------------
    # Stream plumbing
    # ------------------------------------------------------------------

    def _write(self, record: Mapping[str, Any]) -> None:
        with self._lock:
            if self._handle is None:
                parent = os.path.dirname(self.path)
                if parent:
                    os.makedirs(parent, exist_ok=True)
                self._handle = open(self.path, "w", encoding="utf-8")
            self._handle.write(json.dumps(record, sort_keys=True) + "\n")
            self._handle.flush()

    def _write_span(self, span: Span) -> None:
        self._write(span.to_record())

    # ------------------------------------------------------------------
    # Run lifecycle
    # ------------------------------------------------------------------

    def open_run(
        self,
        plan: "ExperimentPlan | Mapping[str, Any]",
        executor: Mapping[str, Any] | None = None,
        cli: Mapping[str, Any] | None = None,
        checkpoint: str | None = None,
        resumed_trials: int | None = None,
    ) -> RunManifest:
        """Write the manifest line and open the root ``run`` span.

        ``checkpoint`` records the run's journal path in the manifest
        (what ``repro resume`` follows); ``resumed_trials`` is how many
        trials were preloaded from a checkpoint rather than executed —
        it lands in the summary so the ledger can mark resumed runs.
        """
        from repro.engine.results import SCHEMA_NAME, SCHEMA_VERSION

        if self.manifest is not None:
            return self.manifest
        if hasattr(plan, "meta"):
            plan_meta = dict(plan.meta())
            plan_meta["digest"] = plan_digest(plan)  # type: ignore[arg-type]
        else:
            plan_meta = dict(plan or {})
        self._resumed_trials = resumed_trials
        self.manifest = RunManifest(
            run_id=self.run_id,
            started=time.time(),
            plan=plan_meta,
            executor=dict(executor or {}),
            host=host_info(),
            repro_version=package_version(),
            result_schema={"name": SCHEMA_NAME, "version": SCHEMA_VERSION},
            cli=cli if cli is not None else self._cli,
            checkpoint=checkpoint,
            resumed_from=self._resumed_from,
        )
        self._write(self.manifest.to_record())
        self._run_span = self.tracer.begin("run", run_id=self.run_id)
        return self.manifest

    @property
    def run_span(self) -> Any:
        """The open root span (valid between open_run and close)."""
        return self._run_span

    def close(self) -> dict[str, Any]:
        """Finish the run span and append the ``summary`` record."""
        if self._closed:
            return {}
        self._closed = True
        if self._run_span is not None:
            self.tracer.finish(self._run_span, trials=self._trials)
            self._run_span = None
        summary: dict[str, Any] = {
            "type": "summary",
            "run_id": self.run_id,
            "finished": time.time(),
            "trials": self._trials,
            "counts": dict(self._counts),
            "workers": [
                self._workers[pid].to_record()
                for pid in sorted(self._workers)
            ],
        }
        if self.manifest is not None:
            summary["wall_s"] = round(
                summary["finished"] - self.manifest.started, 6
            )
        if self._resumed_trials is not None:
            summary["resumed_trials"] = self._resumed_trials
        if any(self._recovery.values()):
            summary["recovery"] = {
                f"engine.recovery.{key}": value
                for key, value in self._recovery.items()
            }
        if self._profiles:
            summary["profile"] = list(self._profiles)
        self._write(summary)
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None
        return summary

    def abort(self) -> None:
        """Close the stream *without* a summary record.

        Called when the run dies (SIGINT, a crashed plan): every span
        written so far stays durable, and the missing summary is exactly
        what marks the ledger entry ``interrupted`` — a summary would
        falsely declare the run complete.
        """
        if self._closed:
            return
        self._closed = True
        self._run_span = None
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "TelemetryRecorder":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Executor hooks
    # ------------------------------------------------------------------

    def _count(self, result: "TrialResult") -> None:
        self._trials += 1
        if getattr(result, "status", "") == "quarantined":
            self._counts["quarantined"] += 1
        elif not getattr(result, "terminated", True):
            self._counts["skipped"] += 1
        elif getattr(result, "ok", False):
            self._counts["ok"] += 1
        else:
            self._counts["failed"] += 1

    def _trial_attrs(
        self, spec: "TrialSpec", result: "TrialResult"
    ) -> dict[str, Any]:
        attrs: dict[str, Any] = {
            "index": spec.index,
            "seed": spec.seed,
            "ok": bool(getattr(result, "ok", False)),
        }
        if not getattr(result, "terminated", True):
            attrs["terminated"] = False
        status = getattr(result, "status", "")
        if status:
            # Quarantine / retry dispositions ride on the span.
            attrs["status"] = status
        return attrs

    def record_trial(
        self,
        spec: "TrialSpec",
        result: "TrialResult",
        t0: float,
        t1: float,
        worker: int | None = None,
        parent: Any = None,
        calibration: bool = False,
    ) -> None:
        """One parent-side trial (serial loop or the calibration trial)."""
        pid = worker if worker is not None else os.getpid()
        attrs = self._trial_attrs(spec, result)
        attrs["worker"] = pid
        name = "calibration" if calibration else "trial"
        self.tracer.emit(
            name, t0, t1,
            parent=parent if parent is not None else self._run_span,
            **attrs,
        )
        health = self._workers.setdefault(pid, WorkerHealth(pid))
        health.observe_chunk(t0, t1, trials=1, queue_wait=0.0,
                             rss_kb=attrs.get("rss_kb", 0.0))
        self._count(result)

    def record_warmup(self, t0: float, t1: float, jobs: int) -> None:
        """The pool fork + pre-import window."""
        self.tracer.emit(
            "warm_pool", t0, t1, parent=self._run_span, jobs=jobs
        )

    def begin_dispatch(self, total: int, chunk: int) -> Any:
        """Open the span covering chunked submission + drain."""
        return self.tracer.begin(
            "dispatch", parent=self._run_span, trials=total, chunk=chunk
        )

    def end_dispatch(self, dispatch: Any, chunks: int) -> None:
        self.tracer.finish(dispatch, chunks=chunks)

    def record_chunk(
        self,
        specs: Sequence["TrialSpec"],
        results: Sequence["TrialResult"],
        meta: Mapping[str, Any],
        submitted: float,
        parent: Any = None,
    ) -> None:
        """One drained worker chunk plus its nested trial spans.

        ``meta`` is the worker-side measurement shipped back with the
        payloads (pid, chunk endpoints, per-trial endpoints, peak RSS);
        ``submitted`` is the parent-side submit time, so ``queue_wait``
        is the task's time in the pool queue before a worker picked it up.
        """
        pid = int(meta.get("pid", 0))
        t0 = float(meta.get("t0", submitted))
        t1 = float(meta.get("t1", t0))
        rss_kb = float(meta.get("rss_kb", 0.0))
        queue_wait = max(0.0, t0 - submitted)
        chunk_span = self.tracer.emit(
            "chunk", t0, t1, parent=parent,
            worker=pid, trials=len(specs),
            queue_wait_s=round(queue_wait, 6), rss_kb=rss_kb,
        )
        trial_times = meta.get("trials", ())
        for spec, result, times in zip(specs, results, trial_times):
            attrs = self._trial_attrs(spec, result)
            attrs["worker"] = pid
            self.tracer.emit(
                "trial", float(times[0]), float(times[1]),
                parent=chunk_span, **attrs,
            )
            self._count(result)
        health = self._workers.setdefault(pid, WorkerHealth(pid))
        health.observe_chunk(
            t0, t1, trials=len(specs), queue_wait=queue_wait, rss_kb=rss_kb
        )

    def record_profiles(self, profiles: Iterable[Mapping[str, Any]]) -> None:
        """Attach :func:`profile_slowest` output to the summary record."""
        self._profiles.extend(dict(p) for p in profiles)

    # ------------------------------------------------------------------
    # Self-healing hooks (engine.recovery.* counters)
    # ------------------------------------------------------------------

    def record_respawn(
        self, t0: float, t1: float, jobs: int, backoff_s: float,
        consecutive: int,
    ) -> None:
        """One warm-pool respawn after a worker death: the span covers
        the backoff sleep plus the fresh fork."""
        self._recovery["worker_respawns"] += 1
        self.tracer.emit(
            "worker_respawned", t0, t1, parent=self._run_span,
            jobs=jobs, backoff_s=round(backoff_s, 6), consecutive=consecutive,
        )

    def record_redispatch(
        self, trials: int, deaths: int, split: bool = False
    ) -> None:
        """One incomplete chunk re-submitted after a pool respawn."""
        now = time.time()
        self._recovery["chunks_redispatched"] += 1
        self._recovery["trials_redispatched"] += trials
        self.tracer.emit(
            "chunk_redispatched", now, now, parent=self._run_span,
            trials=trials, deaths=deaths, split=split,
        )

    def record_poison(self, index: int, kills: int) -> None:
        """One trial quarantined for killing too many workers (the trial
        span itself is emitted through :meth:`record_trial`)."""
        self._recovery["poison_quarantined"] += 1


def resolve_recorder(
    telemetry: "TelemetryRecorder | str | None",
) -> tuple["TelemetryRecorder | None", bool]:
    """Normalise a ``telemetry=`` argument to ``(recorder, owned)``.

    ``None`` disables telemetry; a string is a stream path (the recorder
    is built here and closed by the caller when the run finishes); a
    ready :class:`TelemetryRecorder` is used as-is and left open.
    """
    if telemetry is None:
        return None, False
    if isinstance(telemetry, TelemetryRecorder):
        return telemetry, False
    if isinstance(telemetry, str):
        return TelemetryRecorder(path=telemetry), True
    raise ConfigurationError(
        "'telemetry' must be a TelemetryRecorder, a path or None, got "
        f"{type(telemetry).__name__}"
    )


# ----------------------------------------------------------------------
# Live tailing (repro top)
# ----------------------------------------------------------------------


class TelemetryTail:
    """Incremental reader of a (possibly live) telemetry stream.

    Re-polling picks up only the lines appended since the last poll, so a
    ``repro top`` loop costs O(new records) per refresh.  State mirrors
    what the recorder wrote: manifest, per-status trial counts, chunk
    counters, per-worker health, and the final summary when the run ends.
    """

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self.manifest: RunManifest | None = None
        self.summary: dict[str, Any] | None = None
        self.trials_done = 0
        self.counts = {"ok": 0, "failed": 0, "skipped": 0, "quarantined": 0}
        self.chunks = 0
        self.workers: dict[int, WorkerHealth] = {}
        self._trial_walls: list[float] = []
        self._offset = 0
        self._validated = False

    @property
    def finished(self) -> bool:
        return self.summary is not None

    @property
    def total(self) -> int:
        if self.manifest is None:
            return 0
        return int(self.manifest.plan.get("n_trials", 0))

    def eta_s(self, jobs: int | None = None) -> float:
        """Remaining wall estimate from observed mean trial duration."""
        if not self._trial_walls or self.total == 0:
            return float("nan")
        if jobs is None:
            jobs = max(1, len(self.workers))
        mean = sum(self._trial_walls) / len(self._trial_walls)
        return mean * max(0, self.total - self.trials_done) / max(1, jobs)

    def poll(self) -> int:
        """Consume newly appended complete lines; returns how many."""
        try:
            handle = open(self.path, "r", encoding="utf-8")
        except OSError:
            return 0
        consumed = 0
        with handle:
            handle.seek(self._offset)
            while True:
                start = handle.tell()
                line = handle.readline()
                if not line or not line.endswith("\n"):
                    # Torn trailing line: re-read it whole next poll.
                    self._offset = start
                    break
                self._offset = handle.tell()
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                self._ingest(record)
                consumed += 1
        return consumed

    def _ingest(self, record: Mapping[str, Any]) -> None:
        kind = record.get("type")
        if kind == "manifest":
            from repro.obs.spans import validate_manifest

            if not self._validated:
                validate_manifest(record, path=self.path)
                self._validated = True
            self.manifest = RunManifest.from_record(record)
        elif kind == "span":
            self._ingest_span(record)
        elif kind == "summary":
            self.summary = dict(record)

    def _ingest_span(self, record: Mapping[str, Any]) -> None:
        name = record.get("name")
        attrs = record.get("attrs", {})
        t0 = float(record.get("t0", 0.0))
        t1 = float(record.get("t1", t0))
        if name in ("trial", "calibration"):
            self.trials_done += 1
            self._trial_walls.append(t1 - t0)
            status = attrs.get("status", "")
            if status == "quarantined":
                self.counts["quarantined"] += 1
            elif not attrs.get("terminated", True):
                self.counts["skipped"] += 1
            elif attrs.get("ok"):
                self.counts["ok"] += 1
            else:
                self.counts["failed"] += 1
        if name == "chunk":
            self.chunks += 1
            pid = int(attrs.get("worker", 0))
            health = self.workers.setdefault(pid, WorkerHealth(pid))
            health.observe_chunk(
                t0, t1,
                trials=int(attrs.get("trials", 0)),
                queue_wait=float(attrs.get("queue_wait_s", 0.0)),
                rss_kb=float(attrs.get("rss_kb", 0.0)),
            )
        elif name in ("trial", "calibration"):
            pid = int(attrs.get("worker", 0))
            # Parent-side trials (serial / calibration) have no chunk
            # span; account them to their worker directly.
            parent = record.get("parent_id")
            if parent is None or self._is_run_root(parent):
                health = self.workers.setdefault(pid, WorkerHealth(pid))
                health.observe_chunk(t0, t1, trials=1, queue_wait=0.0,
                                     rss_kb=0.0)

    def _is_run_root(self, parent_id: str) -> bool:
        # The run span is always s1 (first id the recorder allocates).
        return parent_id == "s1"

    def render(self) -> str:
        """The ``repro top`` screen: header, progress, worker table."""
        from repro.analysis.tables import render_table

        lines: list[str] = []
        if self.manifest is None:
            return f"{self.path}: waiting for manifest..."
        m = self.manifest
        backend = m.executor.get("backend", "?")
        jobs = m.executor.get("jobs")
        jobs_label = jobs if jobs is not None else "auto"
        lines.append(
            f"run {m.run_id} · plan {m.plan.get('name', '?')!r} "
            f"({m.plan.get('n_trials', '?')} trials) · "
            f"executor {backend}/jobs={jobs_label} · repro {m.repro_version}"
        )
        total = self.total or max(self.trials_done, 1)
        done = self.trials_done
        width = 30
        filled = int(width * min(1.0, done / total)) if total else 0
        bar = "#" * filled + "-" * (width - filled)
        if self.finished:
            wall = self.summary.get("wall_s", 0.0) if self.summary else 0.0
            tail = f"done in {wall:.1f}s"
        else:
            eta = self.eta_s()
            tail = f"eta {eta:.1f}s" if eta == eta else "eta --"
        counts = self.counts
        lines.append(
            f"[{bar}] {done}/{total} trials · {counts['ok']} ok, "
            f"{counts['failed']} failed, {counts['skipped']} skipped, "
            f"{counts['quarantined']} quarantined · {self.chunks} chunks "
            f"· {tail}"
        )
        if self.workers:
            rows = []
            for pid in sorted(self.workers):
                w = self.workers[pid]
                rows.append([
                    pid, w.chunks, w.trials, f"{w.busy_s:.2f}",
                    f"{w.utilization * 100:.0f}%",
                    f"{w.trials_per_sec:.2f}",
                    f"{w.queue_wait_mean_s * 1000:.1f}ms",
                    f"{w.rss_kb_max:.0f}",
                ])
            lines.append(render_table(
                ["worker", "chunks", "trials", "busy s", "util",
                 "trials/s", "q-wait", "rss kb"],
                rows, title="workers",
            ))
        return "\n".join(lines)


# ----------------------------------------------------------------------
# The run ledger (repro runs list|show)
# ----------------------------------------------------------------------


def load_telemetry(
    path: str,
) -> tuple[RunManifest, list[Span], dict[str, Any] | None]:
    """Read a whole telemetry stream: (manifest, spans, summary|None)."""
    manifest: RunManifest | None = None
    spans: list[Span] = []
    summary: dict[str, Any] | None = None
    for record in read_telemetry(path):
        kind = record.get("type")
        if kind == "manifest":
            manifest = RunManifest.from_record(record)
        elif kind == "span":
            spans.append(Span.from_record(record))
        elif kind == "summary":
            summary = dict(record)
    if manifest is None:
        raise ConfigurationError(f"{path}: telemetry stream has no manifest")
    return manifest, spans, summary


def run_status(
    manifest: RunManifest, summary: Mapping[str, Any] | None
) -> str:
    """The ledger disposition of one run.

    ``"completed"`` — the summary record landed; ``"resumed"`` — completed
    *and* this run was a ``repro resume`` of an earlier one;
    ``"interrupted"`` — a manifest with no summary, i.e. the run died (or
    is still live; the stream cannot tell a crash from an in-flight run,
    so the ledger treats both as resumable).
    """
    if summary is None:
        return "interrupted"
    if manifest.resumed_from is not None:
        return "resumed"
    return "completed"


def scan_runs(directory: str = DEFAULT_RUNS_DIR) -> list[dict[str, Any]]:
    """The ledger: every telemetry stream under ``directory``.

    Returns one entry per readable stream — ``{"path", "manifest",
    "summary", "status"}`` with ``summary`` ``None`` (and ``status``
    ``"interrupted"``) for runs whose summary never landed — sorted by
    start time.  Unreadable files are skipped, so a half-written stream
    never breaks ``repro runs list``.
    """
    entries: list[dict[str, Any]] = []
    if not os.path.isdir(directory):
        return entries
    for name in sorted(os.listdir(directory)):
        if not name.endswith(".jsonl"):
            continue
        path = os.path.join(directory, name)
        try:
            manifest, _, summary = load_telemetry(path)
        except (ConfigurationError, OSError, KeyError, ValueError):
            continue
        entries.append({
            "path": path, "manifest": manifest, "summary": summary,
            "status": run_status(manifest, summary),
        })
    entries.sort(key=lambda e: e["manifest"].started)
    return entries


def find_run(
    run_id: str, directory: str = DEFAULT_RUNS_DIR
) -> dict[str, Any]:
    """Locate a ledger entry by (a unique prefix of) its run id."""
    matches = [
        entry for entry in scan_runs(directory)
        if entry["manifest"].run_id.startswith(run_id)
    ]
    if not matches:
        raise ConfigurationError(
            f"no run matching {run_id!r} under {directory!r}"
        )
    if len(matches) > 1:
        ids = ", ".join(e["manifest"].run_id for e in matches)
        raise ConfigurationError(
            f"run id {run_id!r} is ambiguous under {directory!r}: {ids}"
        )
    return matches[0]


# ----------------------------------------------------------------------
# Opt-in trial profiling
# ----------------------------------------------------------------------


def profile_slowest(
    specs: Sequence["TrialSpec"],
    results: Sequence["TrialResult"],
    k: int = 1,
    limit: int = 10,
) -> list[dict[str, Any]]:
    """cProfile the K slowest trials by deterministic re-execution.

    Trials are deterministic, so re-running one under the profiler *after*
    the plan finished reproduces its work exactly without ever slowing (or
    perturbing) the recorded run.  Returns one entry per profiled trial —
    ``{"index", "seed", "wall_time", "functions": [{"function",
    "cumtime_s", "ncalls"}, ...]}`` — hottest functions first, ready to
    embed in the telemetry summary.
    """
    import cProfile
    import pstats

    if k < 1:
        raise ConfigurationError(f"profile count must be >= 1, got {k}")
    from repro.engine.executor import execute_trial

    by_index = {spec.index: spec for spec in specs}
    # Quarantined trials overran the watchdog budget every attempt;
    # re-running one unguarded could hang the profiler indefinitely.
    eligible = [r for r in results if getattr(r, "status", "") != "quarantined"]
    slowest = sorted(eligible, key=lambda r: r.wall_time, reverse=True)[:k]
    profiles: list[dict[str, Any]] = []
    for result in slowest:
        spec = by_index.get(result.index)
        if spec is None:
            continue
        profiler = cProfile.Profile()
        profiler.enable()
        execute_trial(spec)
        profiler.disable()
        stats = pstats.Stats(profiler)
        rows = sorted(
            stats.stats.items(),  # type: ignore[attr-defined]
            key=lambda item: item[1][3],  # cumulative time
            reverse=True,
        )
        functions = []
        for (filename, lineno, func), row in rows[:limit]:
            ncalls, _, _, cumtime = row[0], row[1], row[2], row[3]
            where = f"{os.path.basename(filename)}:{lineno}" \
                if filename != "~" else "builtin"
            functions.append({
                "function": f"{func} ({where})",
                "cumtime_s": round(cumtime, 6),
                "ncalls": ncalls,
            })
        profiles.append({
            "index": result.index,
            "seed": result.seed,
            "wall_time": round(result.wall_time, 6),
            "functions": functions,
        })
    return profiles


def render_profiles(profiles: Sequence[Mapping[str, Any]]) -> str:
    """Human-readable table of :func:`profile_slowest` output."""
    from repro.analysis.tables import render_table

    blocks = []
    for profile in profiles:
        rows = [
            [f["function"], f"{f['cumtime_s']:.4f}", f["ncalls"]]
            for f in profile.get("functions", [])
        ]
        blocks.append(render_table(
            ["function", "cum s", "calls"], rows,
            title=(f"trial {profile['index']} (seed {profile['seed']}, "
                   f"{profile['wall_time']:.3f}s wall)"),
        ))
    return "\n".join(blocks)
