"""The ExperimentPlan layer: declarative, picklable trial specifications.

A plan turns "sweep this grid with that base config, N trials per point"
into an immutable list of :class:`TrialSpec`s.  Specs are plain data — no
lambdas, no simulator objects — so they cross process boundaries intact,
which is what lets :class:`~repro.engine.executor.ParallelExecutor` fan
trials out over worker processes.

Seed discipline (the contract every consumer relies on):

* trial ``t`` of **every** grid point uses the ``t``-th seed from
  :func:`repro.sim.rng.iter_seeds(root_seed, trials)` — common randomness
  across parameters, so parameter effects pair naturally;
* seeds depend only on ``(root_seed, trial index)``, never on the grid —
  growing the grid (new rates, new sizes) never perturbs the seeds, and
  therefore the results, of the points that were already there.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, fields
from typing import Any, Callable, Mapping, Sequence

from repro.churn.spec import ChurnBuilder, ChurnSpec
from repro.faults.presets import fault_preset
from repro.faults.spec import FaultPlan
from repro.resilience.presets import resilience_preset
from repro.resilience.spec import ResilienceSpec
from repro.engine.trials import (
    DisseminationConfig,
    GossipConfig,
    QueryConfig,
)
from repro.sim.errors import ConfigurationError
from repro.sim.rng import iter_seeds


def _unit_value(index: int) -> float:
    """Every entity carries the value 1.0 (COUNT-style workloads)."""
    return 1.0


#: Named value functions, so specs can select one by (picklable) name.
VALUE_FUNCTIONS: dict[str, Callable[[int], float]] = {
    "index": float,
    "unit": _unit_value,
}


_CONFIG_TYPES = {
    "query": QueryConfig,
    "gossip": GossipConfig,
    "dissemination": DisseminationConfig,
}

#: Spec keys that are translated rather than passed to the config verbatim.
_SPECIAL_KEYS = ("churn_rate", "churn", "value_of", "faults", "resilience")


@dataclass(frozen=True)
class TrialSpec:
    """One trial: a kind, a seed, and declarative config parameters.

    Attributes:
        kind: ``"query"``, ``"gossip"`` or ``"dissemination"``.
        index: position in the plan (results are reported in this order).
        trial: trial number within the grid point (selects the seed).
        seed: the root seed handed to the simulator.
        point: the grid coordinates, e.g. ``(("churn_rate", 2.0),)`` —
            these feed the config *and* label the result.
        labels: extra reporting-only coordinates that do **not** feed the
            config (e.g. a topology family name when the topology itself is
            prebuilt and passed via ``overrides``).
        overrides: base config parameters shared by the whole plan.
    """

    kind: str
    index: int
    trial: int
    seed: int
    point: tuple[tuple[str, Any], ...] = ()
    labels: tuple[tuple[str, Any], ...] = ()
    overrides: tuple[tuple[str, Any], ...] = ()

    def point_dict(self) -> dict[str, Any]:
        """Grid coordinates plus labels, for reporting."""
        merged = dict(self.point)
        merged.update(dict(self.labels))
        return merged

    def to_config(self) -> QueryConfig | GossipConfig | DisseminationConfig:
        """Materialise the (possibly unpicklable) config for execution."""
        try:
            config_type = _CONFIG_TYPES[self.kind]
        except KeyError:
            raise ConfigurationError(
                f"unknown trial kind {self.kind!r}; use "
                f"{', '.join(sorted(_CONFIG_TYPES))}"
            ) from None
        params: dict[str, Any] = dict(self.overrides)
        params.update(dict(self.point))
        params["seed"] = self.seed

        churn_spec = params.pop("churn", None)
        churn_rate = params.pop("churn_rate", None)
        if churn_spec is not None and churn_rate is not None:
            raise ConfigurationError("give either 'churn' or 'churn_rate', not both")
        if churn_rate is not None and churn_rate > 0:
            churn_spec = ChurnSpec(kind="replacement", rate=churn_rate)
        if churn_spec is not None:
            if not isinstance(churn_spec, ChurnSpec):
                raise ConfigurationError(
                    f"'churn' must be a ChurnSpec, got {type(churn_spec).__name__}"
                )
            # Configs accept the spec directly; the builder closure is only
            # materialised inside the worker (resolve_churn), keeping the
            # spec picklable end to end.
            params["churn"] = churn_spec

        faults = params.get("faults")
        if faults is not None:
            # Preset names stay strings in the spec (maximally picklable,
            # and they label grid points readably); the plan object is
            # materialised here, inside the worker.  Empty plans are
            # dropped so they configure exactly what "no plan" configures.
            if isinstance(faults, str):
                params["faults"] = fault_preset(faults)
            elif isinstance(faults, FaultPlan):
                if not faults:
                    params.pop("faults")
            else:
                raise ConfigurationError(
                    "'faults' must be a FaultPlan or a preset name, got "
                    f"{type(faults).__name__}"
                )

        resilience = params.get("resilience")
        if resilience is not None:
            # Mirrors the faults translation: preset names stay strings in
            # the spec; disabled specs are dropped so they configure exactly
            # what "no resilience" configures (byte-identical documents).
            if isinstance(resilience, str):
                params["resilience"] = resilience_preset(resilience)
            elif isinstance(resilience, ResilienceSpec):
                if not resilience.enabled:
                    params.pop("resilience")
            else:
                raise ConfigurationError(
                    "'resilience' must be a ResilienceSpec or a preset "
                    f"name, got {type(resilience).__name__}"
                )

        trace_path = params.get("trace_path")
        if isinstance(trace_path, str) and "{" in trace_path:
            params["trace_path"] = trace_path.format(
                index=self.index, seed=self.seed, trial=self.trial
            )

        value_name = params.pop("value_of", None)
        if value_name is not None:
            try:
                params["value_of"] = VALUE_FUNCTIONS[value_name]
            except KeyError:
                raise ConfigurationError(
                    f"unknown value function {value_name!r}; known: "
                    f"{', '.join(sorted(VALUE_FUNCTIONS))}"
                ) from None

        known = {f.name for f in fields(config_type)}
        unknown = sorted(set(params) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown {self.kind} config field(s) {unknown}; known: "
                f"{', '.join(sorted(known))}"
            )
        return config_type(**params)


@dataclass(frozen=True)
class ExperimentPlan:
    """An immutable, fully expanded list of trial specs."""

    name: str
    root_seed: int
    trials_per_point: int
    specs: tuple[TrialSpec, ...]

    def __len__(self) -> int:
        return len(self.specs)

    def points(self) -> list[dict[str, Any]]:
        """The distinct grid points, in plan order."""
        seen: list[dict[str, Any]] = []
        for spec in self.specs:
            point = spec.point_dict()
            if point not in seen:
                seen.append(point)
        return seen

    def meta(self) -> dict[str, Any]:
        """Plan header for the result document."""
        return {
            "name": self.name,
            "root_seed": self.root_seed,
            "trials_per_point": self.trials_per_point,
            "n_trials": len(self.specs),
        }


def build_plan(
    name: str,
    *,
    kind: str = "query",
    grid: Mapping[str, Sequence[Any]] | None = None,
    base: Mapping[str, Any] | None = None,
    trials: int = 5,
    root_seed: int = 2007,
    seeds: Sequence[int] | None = None,
) -> ExperimentPlan:
    """Expand ``grid`` x ``trials`` into an :class:`ExperimentPlan`.

    ``grid`` maps config field names to the values to sweep (the cartesian
    product is taken in insertion order); ``base`` holds the parameters
    shared by every trial.  Seeds are fanned out with
    :func:`repro.sim.rng.iter_seeds` and shared across grid points (paired
    comparisons); pass ``seeds`` to pin them explicitly instead.
    """
    if kind not in _CONFIG_TYPES:
        raise ConfigurationError(
            f"unknown trial kind {kind!r}; use {', '.join(sorted(_CONFIG_TYPES))}"
        )
    if seeds is None:
        if trials < 1:
            raise ConfigurationError(f"trials must be >= 1, got {trials}")
        seed_list = list(iter_seeds(root_seed, trials))
    else:
        seed_list = list(seeds)
        if not seed_list:
            raise ConfigurationError("explicit seed list must not be empty")
    overrides = tuple(sorted((base or {}).items(), key=lambda kv: kv[0]))
    axes = [(key, list(values)) for key, values in (grid or {}).items()]
    for key, values in axes:
        if not values:
            raise ConfigurationError(f"grid axis {key!r} has no values")
    if axes:
        keys = [key for key, _ in axes]
        combos = itertools.product(*[values for _, values in axes])
        points = [tuple(zip(keys, combo)) for combo in combos]
    else:
        points = [()]
    specs: list[TrialSpec] = []
    index = 0
    for point in points:
        for trial_number, seed in enumerate(seed_list):
            specs.append(TrialSpec(
                kind=kind,
                index=index,
                trial=trial_number,
                seed=seed,
                point=point,
                overrides=overrides,
            ))
            index += 1
    return ExperimentPlan(
        name=name,
        root_seed=root_seed,
        trials_per_point=len(seed_list),
        specs=tuple(specs),
    )
