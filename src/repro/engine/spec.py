"""Declarative executor specifications.

The fault plane made the adversary declarative (:class:`FaultPlan`), the
resilience plane made the defence declarative (:class:`ResilienceSpec`);
:class:`ExecutorSpec` does the same for *where and how trials run*.  It is
plain, frozen, picklable data — backend choice, worker count, chunking
policy, watchdog budget — with the same lossless JSON wire format
(``repro-executor-spec`` v1), builtin presets and ``resolve_*`` idiom as
its siblings, and it is the single blessed way to configure execution::

    from repro.api import ExecutorSpec, build_plan, run_plan

    store = run_plan(plan, executor=ExecutorSpec.parallel(jobs=4))
    store = run_plan(plan, executor="parallel")          # preset name
    store = run_plan(plan)                               # serial default

Determinism contract: the spec configures *wall-clock shape only*.  For a
fixed plan, every spec — serial or parallel, any worker count, any chunk
size — produces the byte-identical canonical result document.  The chunk
layout, worker scheduling and calibration trial can never leak into
results; ``tests/engine/test_chunking.py`` pins this.

The historical entry points — :func:`repro.engine.executor.make_executor`
and the scattered ``jobs=`` / ``watchdog=`` / ``trial_retries=`` keyword
arguments on :func:`run_plan` / :func:`stream_plan` — remain as
:class:`DeprecationWarning` shims over this spec.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, fields
from typing import TYPE_CHECKING, Any, Mapping

from repro.sim.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.engine.executor import TrialExecutor

#: JSON schema identifier for serialised specs.
SPEC_SCHEMA = "repro-executor-spec"
SPEC_VERSION = 1

#: The backends a spec may name.
BACKENDS = ("serial", "parallel")


@dataclass(frozen=True)
class ExecutorSpec:
    """One complete execution policy for a plan's trials.

    Attributes:
        name: optional label (presets set it; it never affects behavior).
        backend: ``"serial"`` (in-process, the reference backend) or
            ``"parallel"`` (persistent warm worker pool).
        jobs: worker count for the parallel backend; ``None`` means the
            machine's CPU count.  Ignored by the serial backend.
        chunk: trials per dispatched task for the parallel backend.
            ``None`` selects adaptive chunking: one cheap calibration
            trial runs in the parent and the chunk size is sized so each
            task carries about ``chunk_target`` seconds of work.  ``1``
            restores per-trial dispatch.  Chunking never affects results.
        chunk_target: adaptive-chunking wall-time target per task, in
            seconds.  Only consulted when ``chunk`` is ``None``.
        watchdog: per-trial wall-clock timeout in seconds (``None``
            disables the guard — the historical code path).
        trial_retries: watchdog retries per trial before the trial is
            quarantined (see
            :func:`repro.engine.executor.execute_trial_guarded`).  The
            same knob scales the self-healing pool's patience with trials
            that *kill* their worker outright: a suspect trial gets
            ``trial_retries + 1`` isolated re-runs before being declared
            poison and quarantined in place (see
            :mod:`repro.engine.recovery.healing` and docs/RECOVERY.md).
    """

    name: str = ""
    backend: str = "serial"
    jobs: int | None = None
    chunk: int | None = None
    chunk_target: float = 0.25
    watchdog: float | None = None
    trial_retries: int = 0

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ConfigurationError(
                f"unknown executor backend {self.backend!r}; use "
                f"{' or '.join(BACKENDS)}"
            )
        if self.jobs is not None and self.jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {self.jobs}")
        if self.chunk is not None and self.chunk < 1:
            raise ConfigurationError(
                f"chunk must be >= 1 trials per task, got {self.chunk}"
            )
        if self.chunk_target <= 0.0:
            raise ConfigurationError(
                f"chunk_target must be > 0 seconds, got {self.chunk_target}"
            )
        if self.watchdog is not None and self.watchdog <= 0.0:
            raise ConfigurationError(
                f"watchdog must be > 0 seconds, got {self.watchdog}"
            )
        if self.trial_retries < 0:
            raise ConfigurationError(
                f"trial_retries must be >= 0, got {self.trial_retries}"
            )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def serial(cls, **kwargs: Any) -> "ExecutorSpec":
        """The in-process reference backend."""
        return cls(backend="serial", **kwargs)

    @classmethod
    def parallel(cls, jobs: int | None = None, **kwargs: Any) -> "ExecutorSpec":
        """The warm-pool backend (``jobs=None`` uses every CPU)."""
        return cls(backend="parallel", jobs=jobs, **kwargs)

    def effective_jobs(self) -> int:
        """The worker count this spec resolves to on this machine."""
        if self.backend == "serial":
            return 1
        return self.jobs if self.jobs is not None else (os.cpu_count() or 1)

    def make(self) -> "TrialExecutor":
        """Materialise the backend this spec describes."""
        from repro.engine.executor import ParallelExecutor, SerialExecutor

        if self.backend == "serial" or self.effective_jobs() == 1:
            return SerialExecutor(
                watchdog=self.watchdog, retries=self.trial_retries
            )
        return ParallelExecutor(
            jobs=self.jobs,
            watchdog=self.watchdog,
            retries=self.trial_retries,
            chunk=self.chunk,
            chunk_target=self.chunk_target,
        )

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON form (lossless; see :meth:`from_dict`)."""
        record: dict[str, Any] = {
            "schema": SPEC_SCHEMA,
            "version": SPEC_VERSION,
        }
        for spec_field in fields(self):
            record[spec_field.name] = getattr(self, spec_field.name)
        return record

    def to_json(self) -> str:
        """Canonical JSON (sorted keys, indent 2, trailing newline)."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_dict(cls, record: Mapping[str, Any]) -> "ExecutorSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        if record.get("schema", SPEC_SCHEMA) != SPEC_SCHEMA:
            raise ConfigurationError(
                f"not a {SPEC_SCHEMA} document "
                f"(schema={record.get('schema')!r})"
            )
        version = record.get("version", SPEC_VERSION)
        if version != SPEC_VERSION:
            raise ConfigurationError(
                f"unsupported executor spec version {version!r}; this "
                f"release reads version {SPEC_VERSION}"
            )
        params = {
            key: value for key, value in record.items()
            if key not in ("schema", "version")
        }
        known = {spec_field.name for spec_field in fields(cls)}
        unknown = sorted(set(params) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown executor spec field(s) {unknown}; known: "
                f"{', '.join(sorted(known))}"
            )
        return cls(**params)

    @classmethod
    def from_json(cls, text: str) -> "ExecutorSpec":
        return cls.from_dict(json.loads(text))


#: Builtin execution policies, selectable by name anywhere a spec is
#: accepted (``run_plan(plan, executor="parallel")``, CLI ``--executor``).
EXECUTOR_PRESETS: dict[str, ExecutorSpec] = {
    "serial": ExecutorSpec(name="serial", backend="serial"),
    "parallel": ExecutorSpec(name="parallel", backend="parallel"),
    "parallel-unchunked": ExecutorSpec(
        name="parallel-unchunked", backend="parallel", chunk=1
    ),
    "guarded": ExecutorSpec(
        name="guarded", backend="parallel", watchdog=300.0, trial_retries=1
    ),
}


def executor_preset(name: str) -> ExecutorSpec:
    """Look up a builtin :class:`ExecutorSpec` by name."""
    try:
        return EXECUTOR_PRESETS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown executor preset {name!r}; builtin presets: "
            f"{', '.join(sorted(EXECUTOR_PRESETS))}"
        ) from None


def resolve_executor(
    executor: "ExecutorSpec | str | None",
) -> ExecutorSpec:
    """Normalise an ``executor=`` argument to an :class:`ExecutorSpec`.

    Accepts a spec, a builtin preset name (see :data:`EXECUTOR_PRESETS`)
    or ``None`` (the serial default) — the same idiom as
    :func:`repro.faults.spec.resolve_faults` and
    :func:`repro.resilience.spec.resolve_resilience`.  Already-built
    :class:`~repro.engine.executor.TrialExecutor` instances are accepted
    directly by :func:`run_plan` / :func:`stream_plan` and never reach
    this function.
    """
    if executor is None:
        return EXECUTOR_PRESETS["serial"]
    if isinstance(executor, str):
        return executor_preset(executor)
    if isinstance(executor, ExecutorSpec):
        return executor
    raise ConfigurationError(
        f"'executor' must be an ExecutorSpec, a preset name or None, "
        f"got {type(executor).__name__}"
    )
