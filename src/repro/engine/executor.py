"""The TrialExecutor layer: interchangeable serial / parallel backends.

:func:`execute_trial` is the single unit of work — a module-level function
taking a picklable :class:`~repro.engine.plan.TrialSpec` and returning a
picklable :class:`~repro.engine.results.TrialResult`.

Both backends return results **in plan order** regardless of completion
order, so a plan's result list (and therefore its
:class:`~repro.engine.results.ResultStore` document) is identical under
``SerialExecutor`` and ``ParallelExecutor``: parallelism changes wall-clock
time, never results.

The parallel hot path (rebuilt for sweep-scale plans):

* **persistent warm pool** — the worker pool is created once per
  :class:`ParallelExecutor` (lazily, at first use), pre-imports the trial
  layer, and is reused across every ``run``/``run_specs``/``stream``/
  ``map`` call until :meth:`~ParallelExecutor.close`; per-plan pool
  setup is paid once, not per invocation;
* **chunked dispatch** — trial specs are batched many-per-task
  (:func:`_run_chunk`), either a fixed ``chunk`` size or adaptively sized
  from one cheap calibration trial so each task carries about
  ``chunk_target`` seconds of work, amortising task submission and result
  pickling over dozens of ~26 ms trials;
* **compact result transport** — workers ship back a slim positional
  payload per trial (:func:`_pack_result`) instead of a pickled
  :class:`TrialResult`; the parent reassembles the full result
  deterministically from the payload plus its own copy of the spec
  (:func:`_unpack_result`), so identity fields never cross the process
  boundary twice.

Configuration lives in the frozen, picklable
:class:`~repro.engine.spec.ExecutorSpec` (``run_plan(plan,
executor=ExecutorSpec.parallel(jobs=4))`` or a preset name); the
historical :func:`make_executor` and ``jobs=`` keyword arguments remain as
:class:`DeprecationWarning` shims.
"""

from __future__ import annotations

import abc
import functools
import itertools
import math
import os
import threading
import time
import warnings
import weakref
from collections import deque
from concurrent.futures import ProcessPoolExecutor as _ProcessPool
from concurrent.futures import as_completed
from typing import Any, Callable, Iterable, Optional, Sequence, TypeVar

from repro.engine.plan import ExperimentPlan, TrialSpec
from repro.engine.results import (
    ResultStore,
    StreamingResultStore,
    TrialResult,
    jsonable,
)
from repro.engine.spec import ExecutorSpec, resolve_executor
from repro.engine.telemetry import TelemetryRecorder, resolve_recorder
from repro.engine.trials import (
    DisseminationOutcome,
    GossipOutcome,
    QueryOutcome,
    run_dissemination,
    run_gossip,
    run_query,
)
from repro.sim.errors import ConfigurationError

T = TypeVar("T")
R = TypeVar("R")

#: Progress callback: ``(done_count, total, just_finished_result)``.
#: Invoked in *completion* order as work drains — the returned result list
#: is still in input order, so progress reporting never perturbs results.
#: A callback may additionally expose a ``chunk_update(dispatched,
#: completed)`` method; chunked backends call it as task batches move.
ProgressFn = Callable[[int, int, Any], None]


def _peak_rss_kb() -> float:
    """Peak resident set size of this process in KB (0.0 where the
    ``resource`` module is unavailable)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return 0.0
    return float(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def execute_trial(spec: TrialSpec) -> TrialResult:
    """Run one trial spec to completion and summarise it.

    Wall time covers config materialisation plus the whole simulation;
    ``events_executed`` comes straight from the simulator.  Two perf
    metrics join the trial's (timing-quarantined) ``timings`` section:
    ``events_per_sec`` — events executed over the ``simulate`` phase wall
    time — and ``peak_rss_kb``, the worker's peak resident set.  Both are
    wall-clock-derived, so canonical documents stay byte-identical.
    """
    start = time.perf_counter()
    config = spec.to_config()
    if spec.kind == "query":
        outcome: Any = run_query(config)
    elif spec.kind == "gossip":
        outcome = run_gossip(config)
    elif spec.kind == "dissemination":
        outcome = run_dissemination(config)
    else:  # pragma: no cover - to_config already rejects unknown kinds
        raise ConfigurationError(f"unknown trial kind {spec.kind!r}")
    wall = time.perf_counter() - start
    timings = (
        outcome.metrics.get("timings") if isinstance(outcome.metrics, dict) else None
    )
    if isinstance(timings, dict):
        simulate = timings.get("simulate", 0.0)
        if simulate > 0.0:
            timings["events_per_sec"] = outcome.events_executed / simulate
        timings["peak_rss_kb"] = _peak_rss_kb()
    return _summarise(spec, outcome, wall)


def _summarise(spec: TrialSpec, outcome: Any, wall: float) -> TrialResult:
    point = tuple(spec.point_dict().items())
    common = {
        "index": spec.index,
        "kind": spec.kind,
        "seed": spec.seed,
        "trial": spec.trial,
        "point": point,
        "messages": outcome.messages,
        "events_executed": outcome.events_executed,
        "wall_time": wall,
        "metrics": outcome.metrics,
    }
    if isinstance(outcome, QueryOutcome):
        report = getattr(outcome, "coverage_report", None)
        return TrialResult(
            ok=outcome.ok,
            terminated=outcome.terminated,
            result=jsonable(outcome.record.result),
            truth=jsonable(outcome.truth),
            error=outcome.error,
            completeness=outcome.completeness,
            latency=outcome.latency,
            core_size=len(outcome.verdict.stable_core),
            coverage=report.to_dict() if report is not None else None,
            **common,
        )
    if isinstance(outcome, GossipOutcome):
        return TrialResult(
            ok=math.isfinite(outcome.error),
            terminated=True,
            result=outcome.estimate,
            truth=outcome.truth,
            error=outcome.error,
            completeness=float("nan"),
            latency=outcome.read_time,
            core_size=0,
            **common,
        )
    if isinstance(outcome, DisseminationOutcome):
        return TrialResult(
            ok=outcome.ok,
            terminated=True,
            result=outcome.coverage,
            truth=outcome.population_coverage,
            error=1.0 - outcome.coverage,
            completeness=outcome.coverage,
            latency=float("nan"),
            core_size=len(outcome.verdict.obligation),
            **common,
        )
    raise ConfigurationError(
        f"cannot summarise outcome type {type(outcome).__name__}"
    )


def execute_trial_guarded(
    spec: TrialSpec, watchdog: float | None = None, retries: int = 0
) -> TrialResult:
    """Run :func:`execute_trial` under a wall-clock watchdog.

    The trial runs on a daemon thread with ``watchdog`` seconds per
    attempt.  A trial that overruns is retried from scratch (determinism
    makes retries exact re-runs, so they only help against *environmental*
    stalls — an overloaded worker, a paging storm — never against a
    genuinely divergent simulation).  After ``retries + 1`` overruns the
    trial is **quarantined**: a schema-compatible failure record with
    ``status="quarantined"`` takes its place, the hung thread is abandoned
    (daemon threads die with the worker process), and the rest of the plan
    proceeds.  A trial that *errors* re-raises immediately — the watchdog
    guards time, not correctness.

    With ``watchdog=None`` this is exactly :func:`execute_trial`.
    """
    if watchdog is None:
        return execute_trial(spec)
    if watchdog <= 0:
        raise ConfigurationError(f"watchdog must be > 0 seconds, got {watchdog}")
    if retries < 0:
        raise ConfigurationError(f"retries must be >= 0, got {retries}")
    attempts = retries + 1
    for _ in range(attempts):
        box: dict[str, Any] = {}

        def attempt() -> None:
            try:
                box["result"] = execute_trial(spec)
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                box["error"] = exc

        thread = threading.Thread(
            target=attempt, name=f"trial-{spec.index}", daemon=True
        )
        thread.start()
        thread.join(watchdog)
        if "error" in box:
            raise box["error"]
        if "result" in box:
            return box["result"]
        # Timed out: the daemon thread is abandoned and the attempt retried.
    return _quarantined_result(spec, watchdog, attempts)


def _quarantined_result(
    spec: TrialSpec, watchdog: float, attempts: int
) -> TrialResult:
    """The placeholder record for a trial every watchdog attempt lost."""
    return TrialResult(
        index=spec.index,
        kind=spec.kind,
        seed=spec.seed,
        trial=spec.trial,
        point=tuple(spec.point_dict().items()),
        ok=False,
        terminated=False,
        result=None,
        truth=None,
        error=float("inf"),
        completeness=0.0,
        latency=float("inf"),
        messages=0,
        core_size=0,
        events_executed=0,
        wall_time=watchdog * attempts,
        metrics={},
        status="quarantined",
    )


# ----------------------------------------------------------------------
# Compact result transport (worker -> parent)
# ----------------------------------------------------------------------

#: Positional payload layout shipped back per trial.  Identity fields
#: (index / kind / seed / trial / point) are *not* transported — the
#: parent already holds the spec and reattaches them deterministically —
#: so the wire cost per trial is the verdict fields, the metrics block
#: and the timings, nothing else.
PAYLOAD_FIELDS: tuple[str, ...] = (
    "ok",
    "terminated",
    "result",
    "truth",
    "error",
    "completeness",
    "latency",
    "messages",
    "core_size",
    "events_executed",
    "wall_time",
    "metrics",
    "status",
    "coverage",
)


def _pack_result(result: TrialResult) -> tuple:
    """Flatten a result to the slim positional wire payload."""
    return tuple(getattr(result, name) for name in PAYLOAD_FIELDS)


def _unpack_result(payload: Sequence[Any], spec: TrialSpec) -> TrialResult:
    """Reassemble the full :class:`TrialResult` from a wire payload plus
    the parent's copy of the spec.  Exactly inverts :func:`_pack_result`:
    ``_unpack_result(_pack_result(r), spec)`` reproduces ``r`` field for
    field whenever ``r`` came from ``spec``."""
    if len(payload) != len(PAYLOAD_FIELDS):
        raise ConfigurationError(
            f"executor wire payload has {len(payload)} fields, expected "
            f"{len(PAYLOAD_FIELDS)} — worker/parent version mismatch?"
        )
    values = dict(zip(PAYLOAD_FIELDS, payload))
    return TrialResult(
        index=spec.index,
        kind=spec.kind,
        seed=spec.seed,
        trial=spec.trial,
        point=tuple(spec.point_dict().items()),
        **values,
    )


def _run_chunk(
    specs: Sequence[TrialSpec],
    watchdog: float | None = None,
    retries: int = 0,
) -> tuple[tuple[tuple, ...], dict[str, Any]]:
    """The worker-side task: run a batch of specs, return slim payloads.

    One pool task per *chunk* instead of per trial: submission overhead,
    future bookkeeping and result pickling are paid once per batch.  The
    payloads come back in batch order (which is plan order — chunks are
    contiguous plan slices), so the parent's merge is a zip.

    Alongside the payloads, every chunk ships a small telemetry ``meta``
    dict — worker pid, chunk endpoints, per-trial endpoints (Unix epoch
    seconds, comparable across same-host processes) and the worker's peak
    RSS.  It is always measured (a handful of clock reads per chunk) and
    simply discarded by the parent when no telemetry recorder is
    attached; it never reaches result documents, so it cannot perturb
    byte-identity.
    """
    t0 = time.time()
    out = []
    trial_times: list[tuple[float, float]] = []
    for spec in specs:
        trial_start = time.time()
        if watchdog is None:
            result = execute_trial(spec)
        else:
            result = execute_trial_guarded(spec, watchdog=watchdog, retries=retries)
        trial_times.append((trial_start, time.time()))
        out.append(_pack_result(result))
    meta = {
        "pid": os.getpid(),
        "t0": t0,
        "t1": time.time(),
        "trials": trial_times,
        "rss_kb": _peak_rss_kb(),
    }
    return tuple(out), meta


def _warm_worker() -> None:
    """Pool initializer: pre-import the trial layer so the first real task
    on every worker pays no import cost (a no-op under the ``fork`` start
    method, where workers inherit the parent's modules; load-bearing under
    ``spawn``/``forkserver``)."""
    import repro.engine.trials  # noqa: F401 - imported for the side effect


def _shutdown_pool(pool: _ProcessPool) -> None:
    """GC-time cleanup for a pool whose executor was never closed."""
    pool.shutdown(wait=False, cancel_futures=True)


class TrialExecutor(abc.ABC):
    """Runs a plan's trial specs; backends differ only in *where* they run."""

    #: Worker count the backend will use (1 for serial).
    jobs: int = 1
    #: Per-trial wall-clock timeout in seconds (``None`` disables the
    #: watchdog entirely — the historical code path, byte-identical).
    watchdog: float | None = None
    #: Watchdog retries per trial before quarantining it.
    retries: int = 0
    #: Task batches submitted / drained during the most recent
    #: ``run_specs``/``stream`` call (0/0 for unchunked backends).
    chunks_dispatched: int = 0
    chunks_completed: int = 0
    #: Telemetry recorder for the current plan, attached by
    #: :func:`run_plan` / :func:`stream_plan` (``telemetry=...``) and
    #: detached when the call finishes.  ``None`` — the default — is the
    #: historical code path; attaching a recorder adds wall-clock span
    #: records to a side stream and never touches results.
    telemetry: "TelemetryRecorder | None" = None

    def _trial_fn(self) -> Callable[[TrialSpec], TrialResult]:
        """The per-spec work function, honouring the watchdog settings."""
        if self.watchdog is None:
            return execute_trial
        return functools.partial(
            execute_trial_guarded, watchdog=self.watchdog, retries=self.retries
        )

    def _instrumented_trial_fn(self) -> Callable[[TrialSpec], TrialResult]:
        """The work function, wrapped to emit one ``trial`` span per call
        when a telemetry recorder is attached (parent-side execution:
        the serial backend and degraded 1-job parallel paths)."""
        fn = self._trial_fn()
        tel = self.telemetry
        if tel is None:
            return fn

        def timed(spec: TrialSpec) -> TrialResult:
            t0 = time.time()
            result = fn(spec)
            tel.record_trial(spec, result, t0, time.time())
            return result

        return timed

    def _notify_chunks(self, progress: Optional[ProgressFn]) -> None:
        """Push the chunk counters to a progress callback that wants them."""
        update = getattr(progress, "chunk_update", None)
        if callable(update):
            update(self.chunks_dispatched, self.chunks_completed)

    def run(
        self,
        plan: ExperimentPlan,
        progress: Optional[ProgressFn] = None,
    ) -> list[TrialResult]:
        """Execute every spec in ``plan``; results come back in plan order.

        ``progress`` (if given) fires after each trial completes, in
        completion order, with ``(done, total, result)``.
        """
        return self.run_specs(plan.specs, progress=progress)

    def run_specs(
        self,
        specs: Sequence[TrialSpec],
        progress: Optional[ProgressFn] = None,
    ) -> list[TrialResult]:
        """Execute an explicit spec list, preserving input order."""
        return self.map(
            self._instrumented_trial_fn(), list(specs), progress=progress
        )

    @abc.abstractmethod
    def map(
        self,
        fn: Callable[[T], R],
        items: Iterable[T],
        progress: Optional[ProgressFn] = None,
    ) -> list[R]:
        """Apply ``fn`` over ``items``, preserving input order.

        The generic escape hatch for harnesses (like ``repro.bench.sweep``)
        whose work units are callables rather than trial specs.  With the
        parallel backend, ``fn`` and every item must be picklable; generic
        items are dispatched one per task (chunking applies only to trial
        specs, where the work function is known).
        """

    def stream(
        self,
        specs: Sequence[TrialSpec],
        consume: Callable[[TrialResult], None],
        progress: Optional[ProgressFn] = None,
    ) -> int:
        """Execute specs and hand each result to ``consume`` in plan order,
        retaining nothing — the memory-flat path behind
        :func:`stream_plan`.  Returns how many trials ran.  ``progress``
        fires as results are consumed (plan order here, unlike :meth:`map`).
        """
        fn = self._instrumented_trial_fn()
        specs = list(specs)
        done = 0
        for spec in specs:
            result = fn(spec)
            done += 1
            consume(result)
            if progress is not None:
                progress(done, len(specs), result)
        return done

    def close(self) -> None:
        """Release backend resources (a no-op for in-process backends)."""

    def __enter__(self) -> "TrialExecutor":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class SerialExecutor(TrialExecutor):
    """In-process, strictly sequential execution (the reference backend)."""

    jobs = 1

    def __init__(
        self, watchdog: float | None = None, retries: int = 0
    ) -> None:
        self.watchdog = watchdog
        self.retries = retries

    def map(
        self,
        fn: Callable[[T], R],
        items: Iterable[T],
        progress: Optional[ProgressFn] = None,
    ) -> list[R]:
        items = list(items)
        results: list[R] = []
        for item in items:
            results.append(fn(item))
            if progress is not None:
                progress(len(results), len(items), results[-1])
        return results

    def __repr__(self) -> str:
        return "SerialExecutor()"


class ParallelExecutor(TrialExecutor):
    """Fans trials out over a persistent warm process pool.

    Trials are independent simulations, so process-level parallelism is
    safe; results are re-ordered to plan order, making the backend
    observationally identical to :class:`SerialExecutor` (modulo wall
    time).  ``jobs`` defaults to the machine's CPU count.

    The pool is created lazily on first use and **reused across calls**
    (``run`` / ``run_specs`` / ``stream`` / ``map``) until :meth:`close`
    — fork once per plan, not once per invocation.  Trial specs are
    dispatched in contiguous plan-order *chunks* (``chunk`` trials per
    task, or adaptively sized from a calibration trial to carry about
    ``chunk_target`` seconds each); workers return compact payloads that
    the parent reassembles deterministically, so the canonical result
    document is byte-identical at every chunk size, worker count and
    backend.
    """

    def __init__(
        self,
        jobs: int | None = None,
        watchdog: float | None = None,
        retries: int = 0,
        chunk: int | None = None,
        chunk_target: float = 0.25,
    ) -> None:
        if jobs is not None and jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        if chunk is not None and chunk < 1:
            raise ConfigurationError(
                f"chunk must be >= 1 trials per task, got {chunk}"
            )
        if chunk_target <= 0.0:
            raise ConfigurationError(
                f"chunk_target must be > 0 seconds, got {chunk_target}"
            )
        self.jobs = jobs if jobs is not None else (os.cpu_count() or 1)
        self.watchdog = watchdog
        self.retries = retries
        self.chunk = chunk
        self.chunk_target = chunk_target
        self.chunks_dispatched = 0
        self.chunks_completed = 0
        self._pool: _ProcessPool | None = None
        self._pool_finalizer: weakref.finalize | None = None

    # ------------------------------------------------------------------
    # Warm pool lifecycle
    # ------------------------------------------------------------------

    def _ensure_pool(self) -> _ProcessPool:
        """The persistent pool, created on first use and kept warm."""
        if self._pool is None:
            warm_start = time.time()
            self._pool = _ProcessPool(
                max_workers=self.jobs, initializer=_warm_worker
            )
            # If the executor is dropped without close(), shut the pool
            # down at GC instead of leaking worker processes.
            self._pool_finalizer = weakref.finalize(
                self, _shutdown_pool, self._pool
            )
            if self.telemetry is not None:
                self.telemetry.record_warmup(
                    warm_start, time.time(), jobs=self.jobs
                )
        return self._pool

    @property
    def pool_active(self) -> bool:
        """Whether the warm pool currently holds live workers."""
        return self._pool is not None

    def close(self) -> None:
        """Shut the warm pool down; the next use forks a fresh one."""
        if self._pool is not None:
            if self._pool_finalizer is not None:
                self._pool_finalizer.detach()
                self._pool_finalizer = None
            self._pool.shutdown(wait=True)
            self._pool = None

    # ------------------------------------------------------------------
    # Chunked trial dispatch
    # ------------------------------------------------------------------

    def _chunk_size_for(self, calibration_wall: float, remaining: int) -> int:
        """Adaptive chunk size: about ``chunk_target`` seconds per task,
        but never so large that the plan's remainder fills fewer tasks
        than there are workers."""
        per_trial = max(calibration_wall, 1e-6)
        size = max(1, round(self.chunk_target / per_trial))
        if remaining > 0:
            size = min(size, math.ceil(remaining / self.jobs))
        return size

    def run_specs(
        self,
        specs: Sequence[TrialSpec],
        progress: Optional[ProgressFn] = None,
    ) -> list[TrialResult]:
        """Chunked fan-out over the warm pool, results in plan order."""
        specs = list(specs)
        self.chunks_dispatched = 0
        self.chunks_completed = 0
        if not specs:
            return []
        if self.jobs == 1 or len(specs) == 1:
            return super().run_specs(specs, progress=progress)
        tel = self.telemetry
        pool = self._ensure_pool()
        total = len(specs)
        results: list[TrialResult | None] = [None] * total
        done = 0
        start = 0
        if self.chunk is not None:
            chunk = self.chunk
        else:
            # Calibration: run the first spec in the parent (identical
            # result — execution is deterministic) and size chunks so each
            # task carries about chunk_target seconds of work.
            calib_start = time.time()
            first = self._trial_fn()(specs[0])
            if tel is not None:
                tel.record_trial(
                    specs[0], first, calib_start, time.time(),
                    calibration=True,
                )
            results[0] = first
            done = 1
            start = 1
            if progress is not None:
                progress(done, total, first)
            chunk = self._chunk_size_for(first.wall_time, total - 1)
        dispatch = tel.begin_dispatch(total, chunk) if tel is not None else None
        pending: dict[Any, tuple[int, list[TrialSpec], float]] = {}
        for offset in range(start, total, chunk):
            batch = specs[offset:offset + chunk]
            future = pool.submit(
                _run_chunk, tuple(batch), self.watchdog, self.retries
            )
            pending[future] = (offset, batch, time.time())
            self.chunks_dispatched += 1
        self._notify_chunks(progress)
        for future in as_completed(pending):
            offset, batch, submitted = pending[future]
            payloads, meta = future.result()
            self.chunks_completed += 1
            # Chunk counters update before the per-trial callbacks so a
            # consumer summarising on the final trial sees them current.
            self._notify_chunks(progress)
            batch_results: list[TrialResult] = []
            for position, (spec, payload) in enumerate(zip(batch, payloads)):
                result = _unpack_result(payload, spec)
                results[offset + position] = result
                batch_results.append(result)
                done += 1
                if progress is not None:
                    # Completion order, like map(); the results list is
                    # still assembled in plan order.
                    progress(done, total, result)
            if tel is not None:
                tel.record_chunk(
                    batch, batch_results, meta, submitted, parent=dispatch
                )
        if tel is not None:
            tel.end_dispatch(dispatch, chunks=self.chunks_completed)
        return list(results)  # type: ignore[arg-type]

    def map(
        self,
        fn: Callable[[T], R],
        items: Iterable[T],
        progress: Optional[ProgressFn] = None,
    ) -> list[R]:
        items = list(items)
        if not items:
            return []
        if self.jobs == 1 or len(items) == 1:
            return SerialExecutor().map(fn, items, progress=progress)
        pool = self._ensure_pool()
        futures = [pool.submit(fn, item) for item in items]
        if progress is not None:
            # Progress fires in completion order; result collection
            # below still reads in submission order.
            done = 0
            for future in as_completed(futures):
                done += 1
                progress(done, len(futures), future.result())
        # Collect in submission order: completion order never leaks
        # into the result list.
        return [future.result() for future in futures]

    def stream(
        self,
        specs: Sequence[TrialSpec],
        consume: Callable[[TrialResult], None],
        progress: Optional[ProgressFn] = None,
    ) -> int:
        """Chunked streaming over the warm pool with windowed submission.

        At most ``jobs * 4`` chunks are in flight or awaiting consumption
        at any moment, so memory stays flat no matter how long the plan
        is.  Chunks are contiguous plan slices submitted and drained FIFO,
        so results are consumed strictly in plan order (the stream file
        then matches the serial backend's byte for byte).
        """
        specs = list(specs)
        self.chunks_dispatched = 0
        self.chunks_completed = 0
        if not specs:
            return 0
        if self.jobs == 1 or len(specs) == 1:
            return super().stream(specs, consume, progress=progress)
        tel = self.telemetry
        pool = self._ensure_pool()
        total = len(specs)
        done = 0
        start = 0
        if self.chunk is not None:
            chunk = self.chunk
        else:
            calib_start = time.time()
            first = self._trial_fn()(specs[0])
            if tel is not None:
                tel.record_trial(
                    specs[0], first, calib_start, time.time(),
                    calibration=True,
                )
            done = 1
            start = 1
            consume(first)
            if progress is not None:
                progress(done, total, first)
            chunk = self._chunk_size_for(first.wall_time, total - 1)
        dispatch = tel.begin_dispatch(total, chunk) if tel is not None else None
        batches = (
            specs[offset:offset + chunk]
            for offset in range(start, total, chunk)
        )
        window = self.jobs * 4
        pending: deque = deque()

        def submit(batch: list[TrialSpec]) -> None:
            pending.append((
                pool.submit(_run_chunk, tuple(batch), self.watchdog, self.retries),
                batch,
                time.time(),
            ))
            self.chunks_dispatched += 1

        for batch in itertools.islice(batches, window):
            submit(batch)
        self._notify_chunks(progress)
        while pending:
            future, batch, submitted = pending.popleft()
            payloads, meta = future.result()
            self.chunks_completed += 1
            self._notify_chunks(progress)
            batch_results: list[TrialResult] = []
            for spec, payload in zip(batch, payloads):
                result = _unpack_result(payload, spec)
                batch_results.append(result)
                done += 1
                consume(result)
                if progress is not None:
                    progress(done, total, result)
            if tel is not None:
                tel.record_chunk(
                    batch, batch_results, meta, submitted, parent=dispatch
                )
            for batch in itertools.islice(batches, 1):
                submit(batch)
            self._notify_chunks(progress)
        if tel is not None:
            tel.end_dispatch(dispatch, chunks=self.chunks_completed)
        return done

    def __repr__(self) -> str:
        chunk = self.chunk if self.chunk is not None else "adaptive"
        return (
            f"ParallelExecutor(jobs={self.jobs}, chunk={chunk}, "
            f"warm={self.pool_active})"
        )


def _executor_from_jobs(
    jobs: int | None,
    watchdog: float | None = None,
    retries: int = 0,
) -> TrialExecutor:
    """The historical ``jobs`` convention: ``None``/``0``/``1`` mean
    serial; anything larger selects the warm-pool backend."""
    if jobs is None or jobs <= 1:
        return SerialExecutor(watchdog=watchdog, retries=retries)
    return ParallelExecutor(jobs, watchdog=watchdog, retries=retries)


def make_executor(
    jobs: int | None,
    watchdog: float | None = None,
    retries: int = 0,
) -> TrialExecutor:
    """Deprecated: build an :class:`~repro.engine.spec.ExecutorSpec`
    instead (``ExecutorSpec.parallel(jobs=4)``, or a preset name like
    ``"parallel"``) and pass it as ``executor=`` to :func:`run_plan` /
    :func:`stream_plan`.  This shim keeps the old ``jobs`` semantics —
    ``None``/``0``/``1`` mean serial — and remains fully functional."""
    warnings.warn(
        "make_executor() is deprecated; pass an ExecutorSpec (or a preset "
        "name like 'parallel') as executor= to run_plan/stream_plan — see "
        "repro.api.ExecutorSpec",
        DeprecationWarning,
        stacklevel=2,
    )
    return _executor_from_jobs(jobs, watchdog=watchdog, retries=retries)


def _describe_backend(backend: TrialExecutor) -> dict[str, Any]:
    """A manifest-ready description of a hand-built backend instance."""
    desc: dict[str, Any] = {
        "backend": "parallel" if isinstance(backend, ParallelExecutor)
        else "serial",
        "jobs": backend.jobs,
        "watchdog": backend.watchdog,
        "trial_retries": backend.retries,
    }
    if isinstance(backend, ParallelExecutor):
        desc["chunk"] = backend.chunk
        desc["chunk_target"] = backend.chunk_target
    return desc


def _resolve_backend(
    executor: "TrialExecutor | ExecutorSpec | str | None",
    jobs: int | None,
    caller: str,
) -> tuple[TrialExecutor, bool, dict[str, Any]]:
    """Normalise the ``executor=``/``jobs=`` arguments of :func:`run_plan`
    and :func:`stream_plan` to a backend instance.

    Returns ``(backend, owned, description)``: ``owned`` backends were
    built here from a spec / preset / the default and are closed when the
    call finishes; caller-supplied :class:`TrialExecutor` instances stay
    open so their warm pool survives for the next plan.  ``description``
    is the executor block of the run manifest — the spec's lossless wire
    dict when a spec/preset selected the backend, or a best-effort
    instance description otherwise.
    """
    if executor is not None and jobs is not None:
        raise ConfigurationError("give either 'executor' or 'jobs', not both")
    if jobs is not None:
        warnings.warn(
            f"{caller}(jobs=...) is deprecated; pass "
            "executor=ExecutorSpec.parallel(jobs=N) or a preset name like "
            "'parallel' instead",
            DeprecationWarning,
            stacklevel=3,
        )
        backend = _executor_from_jobs(jobs)
        return backend, True, _describe_backend(backend)
    if isinstance(executor, TrialExecutor):
        return executor, False, _describe_backend(executor)
    spec = resolve_executor(executor)
    return spec.make(), True, spec.to_dict()


def run_plan(
    plan: ExperimentPlan,
    executor: "TrialExecutor | ExecutorSpec | str | None" = None,
    jobs: int | None = None,
    progress: Optional[ProgressFn] = None,
    telemetry: "TelemetryRecorder | str | None" = None,
) -> ResultStore:
    """Execute ``plan`` and aggregate the results into a
    :class:`ResultStore` — the one-call form of the three-layer pipeline.

    ``executor`` accepts an :class:`~repro.engine.spec.ExecutorSpec`, a
    builtin preset name (``"serial"``, ``"parallel"``, …), an
    already-built :class:`TrialExecutor` (whose warm pool is reused and
    left open), or ``None`` for the serial default.  ``jobs=`` is a
    deprecated shim.

    ``telemetry`` accepts a :class:`~repro.engine.telemetry.TelemetryRecorder`
    (left open for the caller to close) or a path string (a recorder is
    opened there and closed when the run finishes).  Telemetry observes
    the run but never alters it: the result document is byte-identical
    with telemetry on or off.
    """
    backend, owned, desc = _resolve_backend(executor, jobs, "run_plan")
    recorder, tel_owned = resolve_recorder(telemetry)
    if recorder is not None:
        recorder.open_run(plan, executor=desc)
        backend.telemetry = recorder
    try:
        return ResultStore.from_run(plan, backend.run(plan, progress=progress))
    finally:
        if recorder is not None:
            backend.telemetry = None
            if tel_owned:
                recorder.close()
        if owned:
            backend.close()


def stream_plan(
    plan: ExperimentPlan,
    path: str,
    executor: "TrialExecutor | ExecutorSpec | str | None" = None,
    jobs: int | None = None,
    progress: Optional[ProgressFn] = None,
    include_timing: bool = False,
    telemetry: "TelemetryRecorder | str | None" = None,
) -> int:
    """Execute ``plan`` straight into a JSONL stream at ``path``.

    The memory-flat counterpart of :func:`run_plan`: each trial is written
    by :class:`~repro.engine.results.StreamingResultStore` the moment it
    finishes, so peak memory is one window of in-flight chunks rather than
    the whole plan.  ``load_document(path)`` later reassembles the exact
    canonical document.  ``executor`` and ``telemetry`` accept the same
    forms as :func:`run_plan`.  Returns the number of trials written.
    """
    backend, owned, desc = _resolve_backend(executor, jobs, "stream_plan")
    recorder, tel_owned = resolve_recorder(telemetry)
    meta = plan.meta() if hasattr(plan, "meta") else {}
    if recorder is not None:
        recorder.open_run(plan, executor=desc)
        backend.telemetry = recorder
    try:
        with StreamingResultStore(
            path, plan=meta, include_timing=include_timing
        ) as store:
            return backend.stream(plan.specs, store.append, progress=progress)
    finally:
        if recorder is not None:
            backend.telemetry = None
            if tel_owned:
                recorder.close()
        if owned:
            backend.close()
