"""The TrialExecutor layer: interchangeable serial / parallel backends.

:func:`execute_trial` is the single unit of work — a module-level function
taking a picklable :class:`~repro.engine.plan.TrialSpec` and returning a
picklable :class:`~repro.engine.results.TrialResult`.

Both backends return results **in plan order** regardless of completion
order, so a plan's result list (and therefore its
:class:`~repro.engine.results.ResultStore` document) is identical under
``SerialExecutor`` and ``ParallelExecutor``: parallelism changes wall-clock
time, never results.

The parallel hot path (rebuilt for sweep-scale plans):

* **persistent warm pool** — the worker pool is created once per
  :class:`ParallelExecutor` (lazily, at first use), pre-imports the trial
  layer, and is reused across every ``run``/``run_specs``/``stream``/
  ``map`` call until :meth:`~ParallelExecutor.close`; per-plan pool
  setup is paid once, not per invocation;
* **chunked dispatch** — trial specs are batched many-per-task
  (:func:`_run_chunk`), either a fixed ``chunk`` size or adaptively sized
  from one cheap calibration trial so each task carries about
  ``chunk_target`` seconds of work, amortising task submission and result
  pickling over dozens of ~26 ms trials;
* **compact result transport** — workers ship back a slim positional
  payload per trial (:func:`_pack_result`) instead of a pickled
  :class:`TrialResult`; the parent reassembles the full result
  deterministically from the payload plus its own copy of the spec
  (:func:`_unpack_result`), so identity fields never cross the process
  boundary twice.

Configuration lives in the frozen, picklable
:class:`~repro.engine.spec.ExecutorSpec` (``run_plan(plan,
executor=ExecutorSpec.parallel(jobs=4))`` or a preset name); the
historical :func:`make_executor` and ``jobs=`` keyword arguments remain as
:class:`DeprecationWarning` shims.
"""

from __future__ import annotations

import abc
import functools
import itertools
import math
import os
import shutil
import tempfile
import threading
import time
import warnings
import weakref
from collections import deque
from concurrent.futures import FIRST_COMPLETED
from concurrent.futures import ProcessPoolExecutor as _ProcessPool
from concurrent.futures import as_completed, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Optional, Sequence, TypeVar

from repro.engine.plan import ExperimentPlan, TrialSpec
from repro.engine.recovery.checkpoint import (
    CheckpointState,
    CheckpointWriter,
    resolve_checkpoint,
)
from repro.engine.recovery.healing import (
    SPLIT_AFTER_DEATHS,
    WorkerPoolError,
    max_consecutive_respawns,
    quarantine_threshold,
    respawn_backoff,
)
from repro.engine.results import (
    ResultStore,
    StreamingResultStore,
    TrialResult,
    jsonable,
)
from repro.engine.spec import ExecutorSpec, resolve_executor
from repro.engine.telemetry import TelemetryRecorder, resolve_recorder
from repro.engine.trials import (
    DisseminationOutcome,
    GossipOutcome,
    QueryOutcome,
    run_dissemination,
    run_gossip,
    run_query,
)
from repro.sim.errors import ConfigurationError

T = TypeVar("T")
R = TypeVar("R")

#: Progress callback: ``(done_count, total, just_finished_result)``.
#: Invoked in *completion* order as work drains — the returned result list
#: is still in input order, so progress reporting never perturbs results.
#: A callback may additionally expose a ``chunk_update(dispatched,
#: completed)`` method; chunked backends call it as task batches move.
ProgressFn = Callable[[int, int, Any], None]


def _peak_rss_kb() -> float:
    """Peak resident set size of this process in KB (0.0 where the
    ``resource`` module is unavailable)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return 0.0
    return float(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def execute_trial(spec: TrialSpec) -> TrialResult:
    """Run one trial spec to completion and summarise it.

    Wall time covers config materialisation plus the whole simulation;
    ``events_executed`` comes straight from the simulator.  Two perf
    metrics join the trial's (timing-quarantined) ``timings`` section:
    ``events_per_sec`` — events executed over the ``simulate`` phase wall
    time — and ``peak_rss_kb``, the worker's peak resident set.  Both are
    wall-clock-derived, so canonical documents stay byte-identical.
    """
    start = time.perf_counter()
    config = spec.to_config()
    if spec.kind == "query":
        outcome: Any = run_query(config)
    elif spec.kind == "gossip":
        outcome = run_gossip(config)
    elif spec.kind == "dissemination":
        outcome = run_dissemination(config)
    else:  # pragma: no cover - to_config already rejects unknown kinds
        raise ConfigurationError(f"unknown trial kind {spec.kind!r}")
    wall = time.perf_counter() - start
    timings = (
        outcome.metrics.get("timings") if isinstance(outcome.metrics, dict) else None
    )
    if isinstance(timings, dict):
        simulate = timings.get("simulate", 0.0)
        if simulate > 0.0:
            timings["events_per_sec"] = outcome.events_executed / simulate
        timings["peak_rss_kb"] = _peak_rss_kb()
    return _summarise(spec, outcome, wall)


def _summarise(spec: TrialSpec, outcome: Any, wall: float) -> TrialResult:
    point = tuple(spec.point_dict().items())
    common = {
        "index": spec.index,
        "kind": spec.kind,
        "seed": spec.seed,
        "trial": spec.trial,
        "point": point,
        "messages": outcome.messages,
        "events_executed": outcome.events_executed,
        "wall_time": wall,
        "metrics": outcome.metrics,
    }
    if isinstance(outcome, QueryOutcome):
        report = getattr(outcome, "coverage_report", None)
        return TrialResult(
            ok=outcome.ok,
            terminated=outcome.terminated,
            result=jsonable(outcome.record.result),
            truth=jsonable(outcome.truth),
            error=outcome.error,
            completeness=outcome.completeness,
            latency=outcome.latency,
            core_size=len(outcome.verdict.stable_core),
            coverage=report.to_dict() if report is not None else None,
            **common,
        )
    if isinstance(outcome, GossipOutcome):
        return TrialResult(
            ok=math.isfinite(outcome.error),
            terminated=True,
            result=outcome.estimate,
            truth=outcome.truth,
            error=outcome.error,
            completeness=float("nan"),
            latency=outcome.read_time,
            core_size=0,
            **common,
        )
    if isinstance(outcome, DisseminationOutcome):
        return TrialResult(
            ok=outcome.ok,
            terminated=True,
            result=outcome.coverage,
            truth=outcome.population_coverage,
            error=1.0 - outcome.coverage,
            completeness=outcome.coverage,
            latency=float("nan"),
            core_size=len(outcome.verdict.obligation),
            **common,
        )
    raise ConfigurationError(
        f"cannot summarise outcome type {type(outcome).__name__}"
    )


def execute_trial_guarded(
    spec: TrialSpec, watchdog: float | None = None, retries: int = 0
) -> TrialResult:
    """Run :func:`execute_trial` under a wall-clock watchdog.

    The trial runs on a daemon thread with ``watchdog`` seconds per
    attempt.  A trial that overruns is retried from scratch (determinism
    makes retries exact re-runs, so they only help against *environmental*
    stalls — an overloaded worker, a paging storm — never against a
    genuinely divergent simulation).  After ``retries + 1`` overruns the
    trial is **quarantined**: a schema-compatible failure record with
    ``status="quarantined"`` takes its place, the hung thread is abandoned
    (daemon threads die with the worker process), and the rest of the plan
    proceeds.  A trial that *errors* re-raises immediately — the watchdog
    guards time, not correctness.

    With ``watchdog=None`` this is exactly :func:`execute_trial`.
    """
    if watchdog is None:
        return execute_trial(spec)
    if watchdog <= 0:
        raise ConfigurationError(f"watchdog must be > 0 seconds, got {watchdog}")
    if retries < 0:
        raise ConfigurationError(f"retries must be >= 0, got {retries}")
    attempts = retries + 1
    for _ in range(attempts):
        box: dict[str, Any] = {}

        def attempt() -> None:
            try:
                box["result"] = execute_trial(spec)
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                box["error"] = exc

        thread = threading.Thread(
            target=attempt, name=f"trial-{spec.index}", daemon=True
        )
        thread.start()
        thread.join(watchdog)
        if "error" in box:
            raise box["error"]
        if "result" in box:
            return box["result"]
        # Timed out: the daemon thread is abandoned and the attempt retried.
    return _quarantined_result(spec, watchdog, attempts)


def _quarantined_result(
    spec: TrialSpec, watchdog: float, attempts: int
) -> TrialResult:
    """The placeholder record for a trial every watchdog attempt lost."""
    return TrialResult(
        index=spec.index,
        kind=spec.kind,
        seed=spec.seed,
        trial=spec.trial,
        point=tuple(spec.point_dict().items()),
        ok=False,
        terminated=False,
        result=None,
        truth=None,
        error=float("inf"),
        completeness=0.0,
        latency=float("inf"),
        messages=0,
        core_size=0,
        events_executed=0,
        wall_time=watchdog * attempts,
        metrics={},
        status="quarantined",
    )


def _poison_result(spec: TrialSpec, kills: int) -> TrialResult:
    """The placeholder record for a poison trial — one that killed
    ``kills`` workers outright (segfault, OOM kill) and was quarantined
    by the self-healing pool.  Shares the watchdog quarantine's schema
    (``status="quarantined"``) so downstream consumers need no new case;
    ``wall_time`` is pinned to 0.0 — the trial never finished, and a
    deterministic value keeps ``include_timing`` documents reproducible.
    """
    return TrialResult(
        index=spec.index,
        kind=spec.kind,
        seed=spec.seed,
        trial=spec.trial,
        point=tuple(spec.point_dict().items()),
        ok=False,
        terminated=False,
        result=None,
        truth=None,
        error=float("inf"),
        completeness=0.0,
        latency=float("inf"),
        messages=0,
        core_size=0,
        events_executed=0,
        wall_time=0.0,
        metrics={},
        status="quarantined",
    )


@dataclass
class _ChunkTask:
    """Parent-side bookkeeping for one in-flight worker task.

    ``offsets`` aligns with ``batch``: the position of each spec in the
    spec list the caller submitted (needed to place results after a
    redispatch splits the original contiguous chunk).  ``deaths`` counts
    how many pool breaks this task has been in flight for; ``solo`` marks
    a suspect task that must run with nothing else in flight so a further
    break attributes precisely.
    """

    offsets: tuple[int, ...]
    batch: tuple[TrialSpec, ...]
    submitted: float = 0.0
    deaths: int = 0
    solo: bool = False


# ----------------------------------------------------------------------
# Compact result transport (worker -> parent)
# ----------------------------------------------------------------------

#: Positional payload layout shipped back per trial.  Identity fields
#: (index / kind / seed / trial / point) are *not* transported — the
#: parent already holds the spec and reattaches them deterministically —
#: so the wire cost per trial is the verdict fields, the metrics block
#: and the timings, nothing else.
PAYLOAD_FIELDS: tuple[str, ...] = (
    "ok",
    "terminated",
    "result",
    "truth",
    "error",
    "completeness",
    "latency",
    "messages",
    "core_size",
    "events_executed",
    "wall_time",
    "metrics",
    "status",
    "coverage",
)


def _pack_result(result: TrialResult) -> tuple:
    """Flatten a result to the slim positional wire payload."""
    return tuple(getattr(result, name) for name in PAYLOAD_FIELDS)


def _unpack_result(payload: Sequence[Any], spec: TrialSpec) -> TrialResult:
    """Reassemble the full :class:`TrialResult` from a wire payload plus
    the parent's copy of the spec.  Exactly inverts :func:`_pack_result`:
    ``_unpack_result(_pack_result(r), spec)`` reproduces ``r`` field for
    field whenever ``r`` came from ``spec``."""
    if len(payload) != len(PAYLOAD_FIELDS):
        raise ConfigurationError(
            f"executor wire payload has {len(payload)} fields, expected "
            f"{len(PAYLOAD_FIELDS)} — worker/parent version mismatch?"
        )
    values = dict(zip(PAYLOAD_FIELDS, payload))
    return TrialResult(
        index=spec.index,
        kind=spec.kind,
        seed=spec.seed,
        trial=spec.trial,
        point=tuple(spec.point_dict().items()),
        **values,
    )


def _mark_heartbeat(directory: str, index: int) -> None:
    """Worker-side heartbeat: atomically record "this worker is about to
    run trial ``index``" in a per-pid file.  After a pool break the parent
    reads the dead workers' last marks to attribute the break to specific
    in-flight trials (poison-trial detection); a failed write only costs
    attribution precision, never correctness, so errors are swallowed."""
    path = os.path.join(directory, f"{os.getpid()}.hb")
    tmp = f"{path}.tmp"
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(str(index))
        os.replace(tmp, path)
    except OSError:  # pragma: no cover - heartbeat loss degrades gracefully
        pass


def _run_chunk(
    specs: Sequence[TrialSpec],
    watchdog: float | None = None,
    retries: int = 0,
    heartbeat: str | None = None,
) -> tuple[tuple[tuple, ...], dict[str, Any]]:
    """The worker-side task: run a batch of specs, return slim payloads.

    One pool task per *chunk* instead of per trial: submission overhead,
    future bookkeeping and result pickling are paid once per batch.  The
    payloads come back in batch order (which is plan order — chunks are
    contiguous plan slices), so the parent's merge is a zip.

    Alongside the payloads, every chunk ships a small telemetry ``meta``
    dict — worker pid, chunk endpoints, per-trial endpoints (Unix epoch
    seconds, comparable across same-host processes) and the worker's peak
    RSS.  It is always measured (a handful of clock reads per chunk) and
    simply discarded by the parent when no telemetry recorder is
    attached; it never reaches result documents, so it cannot perturb
    byte-identity.

    ``heartbeat`` (a directory path) enables the self-healing pool's
    death-attribution channel: the worker marks each trial it is about to
    run (:func:`_mark_heartbeat`), so a crash points at its trial.
    """
    t0 = time.time()
    out = []
    trial_times: list[tuple[float, float]] = []
    for spec in specs:
        if heartbeat is not None:
            _mark_heartbeat(heartbeat, spec.index)
        trial_start = time.time()
        if watchdog is None:
            result = execute_trial(spec)
        else:
            result = execute_trial_guarded(spec, watchdog=watchdog, retries=retries)
        trial_times.append((trial_start, time.time()))
        out.append(_pack_result(result))
    meta = {
        "pid": os.getpid(),
        "t0": t0,
        "t1": time.time(),
        "trials": trial_times,
        "rss_kb": _peak_rss_kb(),
    }
    return tuple(out), meta


def _warm_worker() -> None:
    """Pool initializer: pre-import the trial layer so the first real task
    on every worker pays no import cost (a no-op under the ``fork`` start
    method, where workers inherit the parent's modules; load-bearing under
    ``spawn``/``forkserver``)."""
    import repro.engine.trials  # noqa: F401 - imported for the side effect


def _shutdown_pool(pool: _ProcessPool) -> None:
    """GC-time cleanup for a pool whose executor was never closed."""
    pool.shutdown(wait=False, cancel_futures=True)


class TrialExecutor(abc.ABC):
    """Runs a plan's trial specs; backends differ only in *where* they run."""

    #: Worker count the backend will use (1 for serial).
    jobs: int = 1
    #: Per-trial wall-clock timeout in seconds (``None`` disables the
    #: watchdog entirely — the historical code path, byte-identical).
    watchdog: float | None = None
    #: Watchdog retries per trial before quarantining it.
    retries: int = 0
    #: Task batches submitted / drained during the most recent
    #: ``run_specs``/``stream`` call (0/0 for unchunked backends).
    chunks_dispatched: int = 0
    chunks_completed: int = 0
    #: Telemetry recorder for the current plan, attached by
    #: :func:`run_plan` / :func:`stream_plan` (``telemetry=...``) and
    #: detached when the call finishes.  ``None`` — the default — is the
    #: historical code path; attaching a recorder adds wall-clock span
    #: records to a side stream and never touches results.
    telemetry: "TelemetryRecorder | None" = None

    def _trial_fn(self) -> Callable[[TrialSpec], TrialResult]:
        """The per-spec work function, honouring the watchdog settings."""
        if self.watchdog is None:
            return execute_trial
        return functools.partial(
            execute_trial_guarded, watchdog=self.watchdog, retries=self.retries
        )

    def _instrumented_trial_fn(self) -> Callable[[TrialSpec], TrialResult]:
        """The work function, wrapped to emit one ``trial`` span per call
        when a telemetry recorder is attached (parent-side execution:
        the serial backend and degraded 1-job parallel paths)."""
        fn = self._trial_fn()
        tel = self.telemetry
        if tel is None:
            return fn

        def timed(spec: TrialSpec) -> TrialResult:
            t0 = time.time()
            result = fn(spec)
            tel.record_trial(spec, result, t0, time.time())
            return result

        return timed

    def _notify_chunks(self, progress: Optional[ProgressFn]) -> None:
        """Push the chunk counters to a progress callback that wants them."""
        update = getattr(progress, "chunk_update", None)
        if callable(update):
            update(self.chunks_dispatched, self.chunks_completed)

    def run(
        self,
        plan: ExperimentPlan,
        progress: Optional[ProgressFn] = None,
    ) -> list[TrialResult]:
        """Execute every spec in ``plan``; results come back in plan order.

        ``progress`` (if given) fires after each trial completes, in
        completion order, with ``(done, total, result)``.
        """
        return self.run_specs(plan.specs, progress=progress)

    def run_specs(
        self,
        specs: Sequence[TrialSpec],
        progress: Optional[ProgressFn] = None,
    ) -> list[TrialResult]:
        """Execute an explicit spec list, preserving input order."""
        return self.map(
            self._instrumented_trial_fn(), list(specs), progress=progress
        )

    @abc.abstractmethod
    def map(
        self,
        fn: Callable[[T], R],
        items: Iterable[T],
        progress: Optional[ProgressFn] = None,
    ) -> list[R]:
        """Apply ``fn`` over ``items``, preserving input order.

        The generic escape hatch for harnesses (like ``repro.bench.sweep``)
        whose work units are callables rather than trial specs.  With the
        parallel backend, ``fn`` and every item must be picklable; generic
        items are dispatched one per task (chunking applies only to trial
        specs, where the work function is known).
        """

    def stream(
        self,
        specs: Sequence[TrialSpec],
        consume: Callable[[TrialResult], None],
        progress: Optional[ProgressFn] = None,
    ) -> int:
        """Execute specs and hand each result to ``consume`` in plan order,
        retaining nothing — the memory-flat path behind
        :func:`stream_plan`.  Returns how many trials ran.  ``progress``
        fires as results are consumed (plan order here, unlike :meth:`map`).
        """
        fn = self._instrumented_trial_fn()
        specs = list(specs)
        done = 0
        for spec in specs:
            result = fn(spec)
            done += 1
            consume(result)
            if progress is not None:
                progress(done, len(specs), result)
        return done

    def close(self) -> None:
        """Release backend resources (a no-op for in-process backends)."""

    def __enter__(self) -> "TrialExecutor":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class SerialExecutor(TrialExecutor):
    """In-process, strictly sequential execution (the reference backend)."""

    jobs = 1

    def __init__(
        self, watchdog: float | None = None, retries: int = 0
    ) -> None:
        self.watchdog = watchdog
        self.retries = retries

    def map(
        self,
        fn: Callable[[T], R],
        items: Iterable[T],
        progress: Optional[ProgressFn] = None,
    ) -> list[R]:
        items = list(items)
        results: list[R] = []
        for item in items:
            results.append(fn(item))
            if progress is not None:
                progress(len(results), len(items), results[-1])
        return results

    def __repr__(self) -> str:
        return "SerialExecutor()"


class ParallelExecutor(TrialExecutor):
    """Fans trials out over a persistent warm process pool.

    Trials are independent simulations, so process-level parallelism is
    safe; results are re-ordered to plan order, making the backend
    observationally identical to :class:`SerialExecutor` (modulo wall
    time).  ``jobs`` defaults to the machine's CPU count.

    The pool is created lazily on first use and **reused across calls**
    (``run`` / ``run_specs`` / ``stream`` / ``map``) until :meth:`close`
    — fork once per plan, not once per invocation.  Trial specs are
    dispatched in contiguous plan-order *chunks* (``chunk`` trials per
    task, or adaptively sized from a calibration trial to carry about
    ``chunk_target`` seconds each); workers return compact payloads that
    the parent reassembles deterministically, so the canonical result
    document is byte-identical at every chunk size, worker count and
    backend.
    """

    def __init__(
        self,
        jobs: int | None = None,
        watchdog: float | None = None,
        retries: int = 0,
        chunk: int | None = None,
        chunk_target: float = 0.25,
    ) -> None:
        if jobs is not None and jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        if chunk is not None and chunk < 1:
            raise ConfigurationError(
                f"chunk must be >= 1 trials per task, got {chunk}"
            )
        if chunk_target <= 0.0:
            raise ConfigurationError(
                f"chunk_target must be > 0 seconds, got {chunk_target}"
            )
        self.jobs = jobs if jobs is not None else (os.cpu_count() or 1)
        self.watchdog = watchdog
        self.retries = retries
        self.chunk = chunk
        self.chunk_target = chunk_target
        self.chunks_dispatched = 0
        self.chunks_completed = 0
        #: Worker pools respawned during the most recent run_specs/stream
        #: call (0 on a healthy run).
        self.respawns = 0
        self._pool: _ProcessPool | None = None
        self._pool_finalizer: weakref.finalize | None = None
        self._heartbeat_dir: str | None = None
        self._hb_finalizer: weakref.finalize | None = None
        self._kills: dict[int, int] = {}
        self._respawn_streak = 0

    # ------------------------------------------------------------------
    # Warm pool lifecycle
    # ------------------------------------------------------------------

    def _ensure_pool(self) -> _ProcessPool:
        """The persistent pool, created on first use and kept warm."""
        if self._pool is None:
            warm_start = time.time()
            self._pool = _ProcessPool(
                max_workers=self.jobs, initializer=_warm_worker
            )
            # If the executor is dropped without close(), shut the pool
            # down at GC instead of leaking worker processes.
            self._pool_finalizer = weakref.finalize(
                self, _shutdown_pool, self._pool
            )
            if self.telemetry is not None:
                self.telemetry.record_warmup(
                    warm_start, time.time(), jobs=self.jobs
                )
        return self._pool

    @property
    def pool_active(self) -> bool:
        """Whether the warm pool currently holds live workers."""
        return self._pool is not None

    def worker_pids(self) -> list[int]:
        """Pids of the current pool's live worker processes (sorted;
        empty when no pool is warm).  The chaos suite uses this to pick a
        victim; operators can use it to correlate with ``ps``."""
        if self._pool is None:
            return []
        processes = getattr(self._pool, "_processes", None) or {}
        return sorted(processes)

    def close(self) -> None:
        """Shut the warm pool down; the next use forks a fresh one."""
        if self._pool is not None:
            if self._pool_finalizer is not None:
                self._pool_finalizer.detach()
                self._pool_finalizer = None
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._heartbeat_dir is not None:
            if self._hb_finalizer is not None:
                self._hb_finalizer.detach()
                self._hb_finalizer = None
            shutil.rmtree(self._heartbeat_dir, ignore_errors=True)
            self._heartbeat_dir = None

    # ------------------------------------------------------------------
    # Self-healing (worker death mid-chunk) — see docs/RECOVERY.md
    # ------------------------------------------------------------------

    def _discard_pool(self) -> None:
        """Drop a broken pool without waiting on its corpse."""
        if self._pool is not None:
            if self._pool_finalizer is not None:
                self._pool_finalizer.detach()
                self._pool_finalizer = None
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def _ensure_heartbeat_dir(self) -> str:
        """The per-executor directory workers write trial heartbeats to."""
        if self._heartbeat_dir is None:
            self._heartbeat_dir = tempfile.mkdtemp(prefix="repro-hb-")
            self._hb_finalizer = weakref.finalize(
                self, shutil.rmtree, self._heartbeat_dir, True
            )
        return self._heartbeat_dir

    def _read_heartbeats(self) -> dict[int, int]:
        """Consume every worker heartbeat mark: pid → last started trial.

        Files are deleted as they are read so each pool break sees only
        marks written since the last one; read errors simply lose a mark
        (attribution then falls back to whole-task death counting).
        """
        marks: dict[int, int] = {}
        directory = self._heartbeat_dir
        if directory is None:
            return marks
        try:
            names = os.listdir(directory)
        except OSError:  # pragma: no cover - directory vanished
            return marks
        for name in names:
            path = os.path.join(directory, name)
            if name.endswith(".hb"):
                try:
                    with open(path, "r", encoding="utf-8") as handle:
                        marks[int(name[:-3])] = int(handle.read().strip())
                except (OSError, ValueError):  # pragma: no cover - torn mark
                    pass
            try:
                os.unlink(path)
            except OSError:  # pragma: no cover - already gone
                pass
        return marks

    def _respawn_pool(self, incomplete: Iterable[int]) -> set[int]:
        """Absorb one pool break: discard the corpse, back off, fork a
        fresh pool, and return the *suspect* trial indices.

        Attribution: with exactly one trial in flight the break is
        precisely attributed — its kill count increments (and only such
        isolated kills ever count toward quarantine).  Otherwise the dead
        workers' heartbeat marks name the trials that were running; those
        suspects are re-run in isolation so a repeat offence *is* precise.
        Raises :class:`WorkerPoolError` after
        :func:`max_consecutive_respawns` breaks with no completed chunk in
        between (the streak resets on every healthy chunk).
        """
        broke = time.time()
        self._discard_pool()
        self.respawns += 1
        self._respawn_streak += 1
        limit = max_consecutive_respawns(self.retries)
        if self._respawn_streak > limit:
            raise WorkerPoolError(
                f"worker pool broke {self._respawn_streak} consecutive "
                f"times with no completed chunk in between; giving up "
                f"after {limit} respawns (see docs/RECOVERY.md)"
            )
        incomplete_set = set(incomplete)
        marks = self._read_heartbeats()
        if len(incomplete_set) == 1:
            lone = next(iter(incomplete_set))
            self._kills[lone] = self._kills.get(lone, 0) + 1
            suspects = {lone}
        else:
            suspects = {i for i in marks.values() if i in incomplete_set}
        delay = respawn_backoff(self._respawn_streak)
        time.sleep(delay)
        self._ensure_pool()
        if self.telemetry is not None:
            self.telemetry.record_respawn(
                broke,
                time.time(),
                jobs=self.jobs,
                backoff_s=delay,
                consecutive=self._respawn_streak,
            )
        return suspects

    def _partition(
        self, task: _ChunkTask, suspects: set[int]
    ) -> list[tuple[Any, ...]]:
        """Decide a dead task's fate trial by trial, preserving order.

        Returns an ordered entry list: ``("done", offset, spec, result)``
        for trials quarantined as poison (kill count reached
        :func:`quarantine_threshold`), ``("run", _ChunkTask)`` for
        everything that re-executes — suspects as isolated single-trial
        tasks, clean trials regrouped into contiguous runs.  A task that
        has been in flight for :data:`SPLIT_AFTER_DEATHS` breaks splits
        entirely into isolated singles (the heartbeat-less fallback).
        """
        threshold = quarantine_threshold(self.retries)
        task.deaths += 1
        split_all = len(task.batch) > 1 and task.deaths >= SPLIT_AFTER_DEATHS
        entries: list[tuple[Any, ...]] = []
        group_offsets: list[int] = []
        group_specs: list[TrialSpec] = []

        def flush() -> None:
            if group_specs:
                entries.append(("run", _ChunkTask(
                    offsets=tuple(group_offsets),
                    batch=tuple(group_specs),
                    deaths=task.deaths,
                )))
                group_offsets.clear()
                group_specs.clear()

        for offset, spec in zip(task.offsets, task.batch):
            kills = self._kills.get(spec.index, 0)
            if kills >= threshold:
                flush()
                entries.append(
                    ("done", offset, spec, _poison_result(spec, kills))
                )
            elif split_all or spec.index in suspects:
                flush()
                entries.append(("run", _ChunkTask(
                    offsets=(offset,),
                    batch=(spec,),
                    deaths=task.deaths,
                    solo=True,
                )))
            else:
                group_offsets.append(offset)
                group_specs.append(spec)
        flush()
        if self.telemetry is not None:
            for entry in entries:
                if entry[0] == "run":
                    redispatched: _ChunkTask = entry[1]
                    self.telemetry.record_redispatch(
                        len(redispatched.batch),
                        redispatched.deaths,
                        split=redispatched.solo,
                    )
        return entries

    # ------------------------------------------------------------------
    # Chunked trial dispatch
    # ------------------------------------------------------------------

    def _chunk_size_for(self, calibration_wall: float, remaining: int) -> int:
        """Adaptive chunk size: about ``chunk_target`` seconds per task,
        but never so large that the plan's remainder fills fewer tasks
        than there are workers."""
        per_trial = max(calibration_wall, 1e-6)
        size = max(1, round(self.chunk_target / per_trial))
        if remaining > 0:
            size = min(size, math.ceil(remaining / self.jobs))
        return size

    def run_specs(
        self,
        specs: Sequence[TrialSpec],
        progress: Optional[ProgressFn] = None,
    ) -> list[TrialResult]:
        """Chunked fan-out over the warm pool, results in plan order.

        Worker death mid-chunk (``BrokenProcessPool``) is absorbed, not
        raised: the pool respawns with exponential backoff, lost chunks
        re-dispatch, and a trial that repeatedly kills isolated workers is
        quarantined in place (see docs/RECOVERY.md).
        """
        specs = list(specs)
        self.chunks_dispatched = 0
        self.chunks_completed = 0
        self.respawns = 0
        self._kills = {}
        self._respawn_streak = 0
        if not specs:
            return []
        if self.jobs == 1 or len(specs) == 1:
            return super().run_specs(specs, progress=progress)
        tel = self.telemetry
        self._ensure_pool()
        total = len(specs)
        results: list[TrialResult | None] = [None] * total
        done = 0
        start = 0
        if self.chunk is not None:
            chunk = self.chunk
        else:
            # Calibration: run the first spec in the parent (identical
            # result — execution is deterministic) and size chunks so each
            # task carries about chunk_target seconds of work.
            calib_start = time.time()
            first = self._trial_fn()(specs[0])
            if tel is not None:
                tel.record_trial(
                    specs[0], first, calib_start, time.time(),
                    calibration=True,
                )
            results[0] = first
            done = 1
            start = 1
            if progress is not None:
                progress(done, total, first)
            chunk = self._chunk_size_for(first.wall_time, total - 1)
        dispatch = tel.begin_dispatch(total, chunk) if tel is not None else None
        heartbeat = self._ensure_heartbeat_dir()
        pending: dict[Any, _ChunkTask] = {}
        deferred: deque[_ChunkTask] = deque()

        def submit(task: _ChunkTask) -> None:
            task.submitted = time.time()
            future = self._ensure_pool().submit(
                _run_chunk, task.batch, self.watchdog, self.retries, heartbeat
            )
            pending[future] = task
            self.chunks_dispatched += 1

        def finish(
            task: _ChunkTask, payloads: Sequence[tuple], meta: dict[str, Any]
        ) -> None:
            nonlocal done
            self.chunks_completed += 1
            self._respawn_streak = 0
            # Chunk counters update before the per-trial callbacks so a
            # consumer summarising on the final trial sees them current.
            self._notify_chunks(progress)
            batch_results: list[TrialResult] = []
            for offset, spec, payload in zip(
                task.offsets, task.batch, payloads
            ):
                result = _unpack_result(payload, spec)
                results[offset] = result
                batch_results.append(result)
                self._kills.pop(spec.index, None)
                done += 1
                if progress is not None:
                    # Completion order, like map(); the results list is
                    # still assembled in plan order.
                    progress(done, total, result)
            if tel is not None:
                tel.record_chunk(
                    task.batch, batch_results, meta, task.submitted,
                    parent=dispatch,
                )

        def settle(offset: int, spec: TrialSpec, result: TrialResult) -> None:
            nonlocal done
            results[offset] = result
            done += 1
            if tel is not None:
                tel.record_poison(spec.index, self._kills.get(spec.index, 0))
                now = time.time()
                tel.record_trial(spec, result, now, now)
            if progress is not None:
                progress(done, total, result)

        for offset in range(start, total, chunk):
            batch = tuple(specs[offset:offset + chunk])
            submit(_ChunkTask(
                offsets=tuple(range(offset, offset + len(batch))),
                batch=batch,
            ))
        self._notify_chunks(progress)
        while pending or deferred:
            if not pending:
                # Suspect isolation: exactly one single-trial task in
                # flight, so a further break attributes precisely.
                submit(deferred.popleft())
            ready, _ = wait(set(pending), return_when=FIRST_COMPLETED)
            dead: list[_ChunkTask] = []
            broke = False
            for future in ready:
                task = pending.pop(future)
                try:
                    payloads, meta = future.result()
                except BrokenProcessPool:
                    broke = True
                    dead.append(task)
                    continue
                finish(task, payloads, meta)
            if not broke:
                continue
            # The pool died: every task still in flight is lost with it,
            # but a chunk that finished *before* the break still has its
            # result — harvest those rather than re-running them.
            for future, task in list(pending.items()):
                if future.done():
                    try:
                        payloads, meta = future.result()
                        finish(task, payloads, meta)
                        continue
                    except BrokenProcessPool:
                        pass
                else:
                    future.cancel()
                dead.append(task)
            pending.clear()
            dead.sort(key=lambda t: t.offsets[0])
            suspects = self._respawn_pool(
                spec.index for t in dead for spec in t.batch
            )
            for task in dead:
                for entry in self._partition(task, suspects):
                    if entry[0] == "done":
                        settle(entry[1], entry[2], entry[3])
                    elif entry[1].solo:
                        deferred.append(entry[1])
                    else:
                        submit(entry[1])
            self._notify_chunks(progress)
        if tel is not None:
            tel.end_dispatch(dispatch, chunks=self.chunks_completed)
        return list(results)  # type: ignore[arg-type]

    def map(
        self,
        fn: Callable[[T], R],
        items: Iterable[T],
        progress: Optional[ProgressFn] = None,
    ) -> list[R]:
        items = list(items)
        if not items:
            return []
        if self.jobs == 1 or len(items) == 1:
            return SerialExecutor().map(fn, items, progress=progress)
        pool = self._ensure_pool()
        futures = [pool.submit(fn, item) for item in items]
        if progress is not None:
            # Progress fires in completion order; result collection
            # below still reads in submission order.
            done = 0
            for future in as_completed(futures):
                done += 1
                progress(done, len(futures), future.result())
        # Collect in submission order: completion order never leaks
        # into the result list.
        return [future.result() for future in futures]

    def stream(
        self,
        specs: Sequence[TrialSpec],
        consume: Callable[[TrialResult], None],
        progress: Optional[ProgressFn] = None,
    ) -> int:
        """Chunked streaming over the warm pool with windowed submission.

        At most ``jobs * 4`` chunks are in flight or awaiting consumption
        at any moment, so memory stays flat no matter how long the plan
        is.  Chunks are contiguous plan slices submitted and drained FIFO,
        so results are consumed strictly in plan order (the stream file
        then matches the serial backend's byte for byte).

        A pool break flips the drain into **cautious mode**: the lost
        window re-executes one task at a time, in plan order (suspects as
        isolated singles, repeat offenders quarantined in place), before
        windowed submission resumes — plan-order consumption is preserved
        across any number of worker deaths.
        """
        specs = list(specs)
        self.chunks_dispatched = 0
        self.chunks_completed = 0
        self.respawns = 0
        self._kills = {}
        self._respawn_streak = 0
        if not specs:
            return 0
        if self.jobs == 1 or len(specs) == 1:
            return super().stream(specs, consume, progress=progress)
        tel = self.telemetry
        self._ensure_pool()
        total = len(specs)
        done = 0
        start = 0
        if self.chunk is not None:
            chunk = self.chunk
        else:
            calib_start = time.time()
            first = self._trial_fn()(specs[0])
            if tel is not None:
                tel.record_trial(
                    specs[0], first, calib_start, time.time(),
                    calibration=True,
                )
            done = 1
            start = 1
            consume(first)
            if progress is not None:
                progress(done, total, first)
            chunk = self._chunk_size_for(first.wall_time, total - 1)
        dispatch = tel.begin_dispatch(total, chunk) if tel is not None else None
        heartbeat = self._ensure_heartbeat_dir()
        batches = (
            _ChunkTask(
                offsets=tuple(range(offset, min(offset + chunk, total))),
                batch=tuple(specs[offset:offset + chunk]),
            )
            for offset in range(start, total, chunk)
        )
        window = self.jobs * 4
        pending: deque = deque()
        cautious: deque = deque()

        def submit(task: _ChunkTask) -> Any:
            task.submitted = time.time()
            future = self._ensure_pool().submit(
                _run_chunk, task.batch, self.watchdog, self.retries, heartbeat
            )
            self.chunks_dispatched += 1
            return future

        def enqueue(task: _ChunkTask) -> None:
            pending.append((submit(task), task))

        def finish(
            task: _ChunkTask, payloads: Sequence[tuple], meta: dict[str, Any]
        ) -> None:
            nonlocal done
            self.chunks_completed += 1
            self._respawn_streak = 0
            self._notify_chunks(progress)
            batch_results: list[TrialResult] = []
            for spec, payload in zip(task.batch, payloads):
                result = _unpack_result(payload, spec)
                batch_results.append(result)
                self._kills.pop(spec.index, None)
                done += 1
                consume(result)
                if progress is not None:
                    progress(done, total, result)
            if tel is not None:
                tel.record_chunk(
                    task.batch, batch_results, meta, task.submitted,
                    parent=dispatch,
                )

        def settle(spec: TrialSpec, result: TrialResult) -> None:
            nonlocal done
            done += 1
            if tel is not None:
                tel.record_poison(spec.index, self._kills.get(spec.index, 0))
                now = time.time()
                tel.record_trial(spec, result, now, now)
            consume(result)
            if progress is not None:
                progress(done, total, result)

        def absorb_break(first_dead: _ChunkTask) -> None:
            """Convert the whole in-flight window into cautious entries,
            in plan order, harvesting chunks that finished pre-break."""
            tail: list[tuple[str, Any, Any]] = [("dead", first_dead, None)]
            for future2, task2 in pending:
                outcome = None
                if future2.done():
                    try:
                        outcome = future2.result()
                    except BrokenProcessPool:
                        outcome = None
                else:
                    future2.cancel()
                if outcome is not None:
                    tail.append(("ready", task2, outcome))
                else:
                    tail.append(("dead", task2, None))
            pending.clear()
            suspects = self._respawn_pool(
                spec.index
                for kind, task2, _ in tail if kind == "dead"
                for spec in task2.batch
            )
            for kind, task2, outcome in reversed(tail):
                if kind == "ready":
                    cautious.appendleft(("ready", task2, outcome))
                else:
                    for entry in reversed(self._partition(task2, suspects)):
                        cautious.appendleft(entry)
            self._notify_chunks(progress)

        for task in itertools.islice(batches, window):
            enqueue(task)
        self._notify_chunks(progress)
        while pending or cautious:
            if pending:
                future, task = pending.popleft()
                try:
                    payloads, meta = future.result()
                except BrokenProcessPool:
                    absorb_break(task)
                    continue
                finish(task, payloads, meta)
                for task in itertools.islice(batches, 1):
                    enqueue(task)
                self._notify_chunks(progress)
                continue
            # Cautious mode: replay the lost window strictly one entry at
            # a time — order is consumption order, isolation is precise
            # attribution for any further break.
            entry = cautious.popleft()
            if entry[0] == "done":
                settle(entry[2], entry[3])
            elif entry[0] == "ready":
                finish(entry[1], *entry[2])
            else:
                task = entry[1]
                future = submit(task)
                try:
                    payloads, meta = future.result()
                except BrokenProcessPool:
                    suspects = self._respawn_pool(
                        spec.index for spec in task.batch
                    )
                    for part in reversed(self._partition(task, suspects)):
                        cautious.appendleft(part)
                    self._notify_chunks(progress)
                    continue
                finish(task, payloads, meta)
            if not cautious:
                # Lost window fully replayed: back to full speed.
                for task in itertools.islice(batches, window):
                    enqueue(task)
                self._notify_chunks(progress)
        if tel is not None:
            tel.end_dispatch(dispatch, chunks=self.chunks_completed)
        return done

    def __repr__(self) -> str:
        chunk = self.chunk if self.chunk is not None else "adaptive"
        return (
            f"ParallelExecutor(jobs={self.jobs}, chunk={chunk}, "
            f"warm={self.pool_active})"
        )


def _executor_from_jobs(
    jobs: int | None,
    watchdog: float | None = None,
    retries: int = 0,
) -> TrialExecutor:
    """The historical ``jobs`` convention: ``None``/``0``/``1`` mean
    serial; anything larger selects the warm-pool backend."""
    if jobs is None or jobs <= 1:
        return SerialExecutor(watchdog=watchdog, retries=retries)
    return ParallelExecutor(jobs, watchdog=watchdog, retries=retries)


def make_executor(
    jobs: int | None,
    watchdog: float | None = None,
    retries: int = 0,
) -> TrialExecutor:
    """Deprecated: build an :class:`~repro.engine.spec.ExecutorSpec`
    instead (``ExecutorSpec.parallel(jobs=4)``, or a preset name like
    ``"parallel"``) and pass it as ``executor=`` to :func:`run_plan` /
    :func:`stream_plan`.  This shim keeps the old ``jobs`` semantics —
    ``None``/``0``/``1`` mean serial — and remains fully functional."""
    warnings.warn(
        "make_executor() is deprecated; pass an ExecutorSpec (or a preset "
        "name like 'parallel') as executor= to run_plan/stream_plan — see "
        "repro.api.ExecutorSpec",
        DeprecationWarning,
        stacklevel=2,
    )
    return _executor_from_jobs(jobs, watchdog=watchdog, retries=retries)


def _describe_backend(backend: TrialExecutor) -> dict[str, Any]:
    """A manifest-ready description of a hand-built backend instance."""
    desc: dict[str, Any] = {
        "backend": "parallel" if isinstance(backend, ParallelExecutor)
        else "serial",
        "jobs": backend.jobs,
        "watchdog": backend.watchdog,
        "trial_retries": backend.retries,
    }
    if isinstance(backend, ParallelExecutor):
        desc["chunk"] = backend.chunk
        desc["chunk_target"] = backend.chunk_target
    return desc


def _resolve_backend(
    executor: "TrialExecutor | ExecutorSpec | str | None",
    jobs: int | None,
    caller: str,
) -> tuple[TrialExecutor, bool, dict[str, Any]]:
    """Normalise the ``executor=``/``jobs=`` arguments of :func:`run_plan`
    and :func:`stream_plan` to a backend instance.

    Returns ``(backend, owned, description)``: ``owned`` backends were
    built here from a spec / preset / the default and are closed when the
    call finishes; caller-supplied :class:`TrialExecutor` instances stay
    open so their warm pool survives for the next plan.  ``description``
    is the executor block of the run manifest — the spec's lossless wire
    dict when a spec/preset selected the backend, or a best-effort
    instance description otherwise.
    """
    if executor is not None and jobs is not None:
        raise ConfigurationError("give either 'executor' or 'jobs', not both")
    if jobs is not None:
        warnings.warn(
            f"{caller}(jobs=...) is deprecated; pass "
            "executor=ExecutorSpec.parallel(jobs=N) or a preset name like "
            "'parallel' instead",
            DeprecationWarning,
            stacklevel=3,
        )
        backend = _executor_from_jobs(jobs)
        return backend, True, _describe_backend(backend)
    if isinstance(executor, TrialExecutor):
        return executor, False, _describe_backend(executor)
    spec = resolve_executor(executor)
    return spec.make(), True, spec.to_dict()


class _CheckpointProgress:
    """Progress-hook wrapper: journal each completed trial *before*
    forwarding to the caller's hook, so an interrupt raised by the hook
    (Ctrl-C landing between trials) never loses the trial that just
    finished.  Forwards ``chunk_update`` so chunk-aware consumers keep
    working through the wrapper."""

    def __init__(
        self, writer: CheckpointWriter, progress: Optional[ProgressFn]
    ) -> None:
        self.writer = writer
        self.progress = progress

    def __call__(self, done: int, total: int, result: TrialResult) -> None:
        self.writer.append(result)
        if self.progress is not None:
            self.progress(done, total, result)

    def chunk_update(self, dispatched: int, completed: int) -> None:
        update = getattr(self.progress, "chunk_update", None)
        if callable(update):
            update(dispatched, completed)


class _ResumeEmitter:
    """Interleaves preloaded (journalled) results with freshly executed
    ones so a downstream consumer sees strict plan order — the resumed
    stream file is then byte-identical to an uninterrupted run's.

    Fresh results arrive in plan order restricted to the missing indices
    (the executor's streaming contract), so emitting each fresh result
    then draining any journalled successors restores the full order.
    """

    def __init__(
        self,
        specs: Sequence[TrialSpec],
        preloaded: dict[int, TrialResult],
        emit: Callable[[TrialResult], None],
    ) -> None:
        self.order = [spec.index for spec in specs]
        self.preloaded = dict(preloaded)
        self.emit = emit
        self.cursor = 0
        self._drain()

    def _drain(self) -> None:
        while self.cursor < len(self.order):
            index = self.order[self.cursor]
            if index not in self.preloaded:
                break
            self.emit(self.preloaded.pop(index))
            self.cursor += 1

    def __call__(self, result: TrialResult) -> None:
        self.emit(result)
        self.cursor += 1
        self._drain()


def run_plan(
    plan: ExperimentPlan,
    executor: "TrialExecutor | ExecutorSpec | str | None" = None,
    jobs: int | None = None,
    progress: Optional[ProgressFn] = None,
    telemetry: "TelemetryRecorder | str | None" = None,
    checkpoint: "CheckpointWriter | str | None" = None,
    resume_from: "CheckpointState | str | None" = None,
) -> ResultStore:
    """Execute ``plan`` and aggregate the results into a
    :class:`ResultStore` — the one-call form of the three-layer pipeline.

    ``executor`` accepts an :class:`~repro.engine.spec.ExecutorSpec`, a
    builtin preset name (``"serial"``, ``"parallel"``, …), an
    already-built :class:`TrialExecutor` (whose warm pool is reused and
    left open), or ``None`` for the serial default.  ``jobs=`` is a
    deprecated shim.

    ``telemetry`` accepts a :class:`~repro.engine.telemetry.TelemetryRecorder`
    (left open for the caller to close) or a path string (a recorder is
    opened there and closed when the run finishes).  Telemetry observes
    the run but never alters it: the result document is byte-identical
    with telemetry on or off.

    ``checkpoint`` (a path or :class:`CheckpointWriter`) journals every
    completed trial to a crash-safe ``repro-run-checkpoint`` file as the
    run progresses; ``resume_from`` (a path or loaded
    :class:`CheckpointState`) preloads completed trials from such a
    journal so only the missing ones re-execute.  A resumed run's
    document is byte-identical to an uninterrupted one.  Passing the same
    path as ``checkpoint=`` across invocations is the idempotent resume
    idiom (an existing journal for the same plan auto-resumes).
    """
    backend, owned, desc = _resolve_backend(executor, jobs, "run_plan")
    recorder, tel_owned = resolve_recorder(telemetry)
    writer, preloaded, ckpt_path = resolve_checkpoint(
        checkpoint, resume_from, plan, executor=desc,
        run_id=recorder.run_id if recorder is not None else None,
    )
    todo = [spec for spec in plan.specs if spec.index not in preloaded]
    if recorder is not None:
        recorder.open_run(
            plan, executor=desc, checkpoint=ckpt_path,
            resumed_trials=len(preloaded) or None,
        )
        backend.telemetry = recorder
    hook: Optional[ProgressFn] = progress
    if writer is not None:
        hook = _CheckpointProgress(writer, progress)
    failed = False
    try:
        fresh = backend.run_specs(todo, progress=hook) if todo else []
        merged = dict(preloaded)
        for result in fresh:
            merged[result.index] = result
        return ResultStore.from_run(
            plan, [merged[spec.index] for spec in plan.specs]
        )
    except BaseException:
        failed = True
        raise
    finally:
        if writer is not None:
            writer.close()
        if recorder is not None:
            backend.telemetry = None
            if tel_owned:
                if failed:
                    # No summary line: the run ledger reports the stream
                    # as "interrupted", and `repro resume` can finish it.
                    recorder.abort()
                else:
                    recorder.close()
        if owned:
            backend.close()


def stream_plan(
    plan: ExperimentPlan,
    path: str,
    executor: "TrialExecutor | ExecutorSpec | str | None" = None,
    jobs: int | None = None,
    progress: Optional[ProgressFn] = None,
    include_timing: bool = False,
    telemetry: "TelemetryRecorder | str | None" = None,
    checkpoint: "CheckpointWriter | str | None" = None,
    resume_from: "CheckpointState | str | None" = None,
) -> int:
    """Execute ``plan`` straight into a JSONL stream at ``path``.

    The memory-flat counterpart of :func:`run_plan`: each trial is written
    by :class:`~repro.engine.results.StreamingResultStore` the moment it
    finishes, so peak memory is one window of in-flight chunks rather than
    the whole plan.  ``load_document(path)`` later reassembles the exact
    canonical document.  ``executor`` and ``telemetry`` accept the same
    forms as :func:`run_plan`.  Returns the number of trials written.

    ``checkpoint`` / ``resume_from`` follow :func:`run_plan`'s contract.
    On resume the stream file is rewritten from the start — journalled
    results are interleaved with fresh ones in plan order, so the
    finished file is byte-identical to an uninterrupted run's.  Each
    trial is journalled *before* it is streamed: a crash between the two
    writes loses stream bytes (rewritten on resume), never journal state.
    """
    backend, owned, desc = _resolve_backend(executor, jobs, "stream_plan")
    recorder, tel_owned = resolve_recorder(telemetry)
    writer, preloaded, ckpt_path = resolve_checkpoint(
        checkpoint, resume_from, plan, executor=desc,
        run_id=recorder.run_id if recorder is not None else None,
    )
    todo = [spec for spec in plan.specs if spec.index not in preloaded]
    meta = plan.meta() if hasattr(plan, "meta") else {}
    if recorder is not None:
        recorder.open_run(
            plan, executor=desc, checkpoint=ckpt_path,
            resumed_trials=len(preloaded) or None,
        )
        backend.telemetry = recorder
    failed = False
    try:
        with StreamingResultStore(
            path, plan=meta, include_timing=include_timing
        ) as store:
            emit: Callable[[TrialResult], None] = store.append
            if preloaded:
                emit = _ResumeEmitter(plan.specs, preloaded, store.append)
            if writer is not None:
                journal = writer

                def consume(
                    result: TrialResult, _emit: Any = emit
                ) -> None:
                    # Journal first: the checkpoint is the durable record,
                    # the stream is reconstructable from it.
                    journal.append(result)
                    _emit(result)
            else:
                consume = emit
            ran = backend.stream(todo, consume, progress=progress)
            return ran + len(preloaded)
    except BaseException:
        failed = True
        raise
    finally:
        if writer is not None:
            writer.close()
        if recorder is not None:
            backend.telemetry = None
            if tel_owned:
                if failed:
                    recorder.abort()
                else:
                    recorder.close()
        if owned:
            backend.close()
