"""The TrialExecutor layer: interchangeable serial / parallel backends.

:func:`execute_trial` is the single unit of work — a module-level function
taking a picklable :class:`~repro.engine.plan.TrialSpec` and returning a
picklable :class:`~repro.engine.results.TrialResult` — which is exactly the
shape :class:`concurrent.futures.ProcessPoolExecutor` needs.

Both backends return results **in plan order** regardless of completion
order, so a plan's result list (and therefore its
:class:`~repro.engine.results.ResultStore` document) is identical under
``SerialExecutor`` and ``ParallelExecutor``: parallelism changes wall-clock
time, never results.
"""

from __future__ import annotations

import abc
import functools
import itertools
import math
import os
import threading
import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor as _ProcessPool
from concurrent.futures import as_completed
from typing import Any, Callable, Iterable, Optional, Sequence, TypeVar

from repro.engine.plan import ExperimentPlan, TrialSpec
from repro.engine.results import (
    ResultStore,
    StreamingResultStore,
    TrialResult,
    jsonable,
)
from repro.engine.trials import (
    DisseminationOutcome,
    GossipOutcome,
    QueryOutcome,
    run_dissemination,
    run_gossip,
    run_query,
)
from repro.sim.errors import ConfigurationError

T = TypeVar("T")
R = TypeVar("R")

#: Progress callback: ``(done_count, total, just_finished_result)``.
#: Invoked in *completion* order as work drains — the returned result list
#: is still in input order, so progress reporting never perturbs results.
ProgressFn = Callable[[int, int, Any], None]


def _peak_rss_kb() -> float:
    """Peak resident set size of this process in KB (0.0 where the
    ``resource`` module is unavailable)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return 0.0
    return float(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def execute_trial(spec: TrialSpec) -> TrialResult:
    """Run one trial spec to completion and summarise it.

    Wall time covers config materialisation plus the whole simulation;
    ``events_executed`` comes straight from the simulator.  Two perf
    metrics join the trial's (timing-quarantined) ``timings`` section:
    ``events_per_sec`` — events executed over the ``simulate`` phase wall
    time — and ``peak_rss_kb``, the worker's peak resident set.  Both are
    wall-clock-derived, so canonical documents stay byte-identical.
    """
    start = time.perf_counter()
    config = spec.to_config()
    if spec.kind == "query":
        outcome: Any = run_query(config)
    elif spec.kind == "gossip":
        outcome = run_gossip(config)
    elif spec.kind == "dissemination":
        outcome = run_dissemination(config)
    else:  # pragma: no cover - to_config already rejects unknown kinds
        raise ConfigurationError(f"unknown trial kind {spec.kind!r}")
    wall = time.perf_counter() - start
    timings = (
        outcome.metrics.get("timings") if isinstance(outcome.metrics, dict) else None
    )
    if isinstance(timings, dict):
        simulate = timings.get("simulate", 0.0)
        if simulate > 0.0:
            timings["events_per_sec"] = outcome.events_executed / simulate
        timings["peak_rss_kb"] = _peak_rss_kb()
    return _summarise(spec, outcome, wall)


def _summarise(spec: TrialSpec, outcome: Any, wall: float) -> TrialResult:
    point = tuple(spec.point_dict().items())
    common = {
        "index": spec.index,
        "kind": spec.kind,
        "seed": spec.seed,
        "trial": spec.trial,
        "point": point,
        "messages": outcome.messages,
        "events_executed": outcome.events_executed,
        "wall_time": wall,
        "metrics": outcome.metrics,
    }
    if isinstance(outcome, QueryOutcome):
        report = getattr(outcome, "coverage_report", None)
        return TrialResult(
            ok=outcome.ok,
            terminated=outcome.terminated,
            result=jsonable(outcome.record.result),
            truth=jsonable(outcome.truth),
            error=outcome.error,
            completeness=outcome.completeness,
            latency=outcome.latency,
            core_size=len(outcome.verdict.stable_core),
            coverage=report.to_dict() if report is not None else None,
            **common,
        )
    if isinstance(outcome, GossipOutcome):
        return TrialResult(
            ok=math.isfinite(outcome.error),
            terminated=True,
            result=outcome.estimate,
            truth=outcome.truth,
            error=outcome.error,
            completeness=float("nan"),
            latency=outcome.read_time,
            core_size=0,
            **common,
        )
    if isinstance(outcome, DisseminationOutcome):
        return TrialResult(
            ok=outcome.ok,
            terminated=True,
            result=outcome.coverage,
            truth=outcome.population_coverage,
            error=1.0 - outcome.coverage,
            completeness=outcome.coverage,
            latency=float("nan"),
            core_size=len(outcome.verdict.obligation),
            **common,
        )
    raise ConfigurationError(
        f"cannot summarise outcome type {type(outcome).__name__}"
    )


def execute_trial_guarded(
    spec: TrialSpec, watchdog: float | None = None, retries: int = 0
) -> TrialResult:
    """Run :func:`execute_trial` under a wall-clock watchdog.

    The trial runs on a daemon thread with ``watchdog`` seconds per
    attempt.  A trial that overruns is retried from scratch (determinism
    makes retries exact re-runs, so they only help against *environmental*
    stalls — an overloaded worker, a paging storm — never against a
    genuinely divergent simulation).  After ``retries + 1`` overruns the
    trial is **quarantined**: a schema-compatible failure record with
    ``status="quarantined"`` takes its place, the hung thread is abandoned
    (daemon threads die with the worker process), and the rest of the plan
    proceeds.  A trial that *errors* re-raises immediately — the watchdog
    guards time, not correctness.

    With ``watchdog=None`` this is exactly :func:`execute_trial`.
    """
    if watchdog is None:
        return execute_trial(spec)
    if watchdog <= 0:
        raise ConfigurationError(f"watchdog must be > 0 seconds, got {watchdog}")
    if retries < 0:
        raise ConfigurationError(f"retries must be >= 0, got {retries}")
    attempts = retries + 1
    for _ in range(attempts):
        box: dict[str, Any] = {}

        def attempt() -> None:
            try:
                box["result"] = execute_trial(spec)
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                box["error"] = exc

        thread = threading.Thread(
            target=attempt, name=f"trial-{spec.index}", daemon=True
        )
        thread.start()
        thread.join(watchdog)
        if "error" in box:
            raise box["error"]
        if "result" in box:
            return box["result"]
        # Timed out: the daemon thread is abandoned and the attempt retried.
    return _quarantined_result(spec, watchdog, attempts)


def _quarantined_result(
    spec: TrialSpec, watchdog: float, attempts: int
) -> TrialResult:
    """The placeholder record for a trial every watchdog attempt lost."""
    return TrialResult(
        index=spec.index,
        kind=spec.kind,
        seed=spec.seed,
        trial=spec.trial,
        point=tuple(spec.point_dict().items()),
        ok=False,
        terminated=False,
        result=None,
        truth=None,
        error=float("inf"),
        completeness=0.0,
        latency=float("inf"),
        messages=0,
        core_size=0,
        events_executed=0,
        wall_time=watchdog * attempts,
        metrics={},
        status="quarantined",
    )


class TrialExecutor(abc.ABC):
    """Runs a plan's trial specs; backends differ only in *where* they run."""

    #: Worker count the backend will use (1 for serial).
    jobs: int = 1
    #: Per-trial wall-clock timeout in seconds (``None`` disables the
    #: watchdog entirely — the historical code path, byte-identical).
    watchdog: float | None = None
    #: Watchdog retries per trial before quarantining it.
    retries: int = 0

    def _trial_fn(self) -> Callable[[TrialSpec], TrialResult]:
        """The per-spec work function, honouring the watchdog settings."""
        if self.watchdog is None:
            return execute_trial
        return functools.partial(
            execute_trial_guarded, watchdog=self.watchdog, retries=self.retries
        )

    def run(
        self,
        plan: ExperimentPlan,
        progress: Optional[ProgressFn] = None,
    ) -> list[TrialResult]:
        """Execute every spec in ``plan``; results come back in plan order.

        ``progress`` (if given) fires after each trial completes, in
        completion order, with ``(done, total, result)``.
        """
        return self.run_specs(plan.specs, progress=progress)

    def run_specs(
        self,
        specs: Sequence[TrialSpec],
        progress: Optional[ProgressFn] = None,
    ) -> list[TrialResult]:
        """Execute an explicit spec list, preserving input order."""
        return self.map(self._trial_fn(), list(specs), progress=progress)

    @abc.abstractmethod
    def map(
        self,
        fn: Callable[[T], R],
        items: Iterable[T],
        progress: Optional[ProgressFn] = None,
    ) -> list[R]:
        """Apply ``fn`` over ``items``, preserving input order.

        The generic escape hatch for harnesses (like ``repro.bench.sweep``)
        whose work units are callables rather than trial specs.  With the
        parallel backend, ``fn`` and every item must be picklable.
        """

    def stream(
        self,
        specs: Sequence[TrialSpec],
        consume: Callable[[TrialResult], None],
        progress: Optional[ProgressFn] = None,
    ) -> int:
        """Execute specs and hand each result to ``consume`` in plan order,
        retaining nothing — the memory-flat path behind
        :func:`stream_plan`.  Returns how many trials ran.  ``progress``
        fires as results are consumed (plan order here, unlike :meth:`map`).
        """
        fn = self._trial_fn()
        specs = list(specs)
        done = 0
        for spec in specs:
            result = fn(spec)
            done += 1
            consume(result)
            if progress is not None:
                progress(done, len(specs), result)
        return done


class SerialExecutor(TrialExecutor):
    """In-process, strictly sequential execution (the reference backend)."""

    jobs = 1

    def __init__(
        self, watchdog: float | None = None, retries: int = 0
    ) -> None:
        self.watchdog = watchdog
        self.retries = retries

    def map(
        self,
        fn: Callable[[T], R],
        items: Iterable[T],
        progress: Optional[ProgressFn] = None,
    ) -> list[R]:
        items = list(items)
        results: list[R] = []
        for item in items:
            results.append(fn(item))
            if progress is not None:
                progress(len(results), len(items), results[-1])
        return results

    def __repr__(self) -> str:
        return "SerialExecutor()"


class ParallelExecutor(TrialExecutor):
    """Fans trials out over a :class:`ProcessPoolExecutor`.

    Trials are independent simulations, so process-level parallelism is
    safe; results are re-ordered to plan order, making the backend
    observationally identical to :class:`SerialExecutor` (modulo wall
    time).  ``jobs`` defaults to the machine's CPU count.
    """

    def __init__(
        self,
        jobs: int | None = None,
        watchdog: float | None = None,
        retries: int = 0,
    ) -> None:
        if jobs is not None and jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs if jobs is not None else (os.cpu_count() or 1)
        self.watchdog = watchdog
        self.retries = retries

    def map(
        self,
        fn: Callable[[T], R],
        items: Iterable[T],
        progress: Optional[ProgressFn] = None,
    ) -> list[R]:
        items = list(items)
        if not items:
            return []
        workers = min(self.jobs, len(items))
        if workers == 1:
            return SerialExecutor().map(fn, items, progress=progress)
        with _ProcessPool(max_workers=workers) as pool:
            futures = [pool.submit(fn, item) for item in items]
            if progress is not None:
                # Progress fires in completion order; result collection
                # below still reads in submission order.
                done = 0
                for future in as_completed(futures):
                    done += 1
                    progress(done, len(futures), future.result())
            # Collect in submission order: completion order never leaks
            # into the result list.
            return [future.result() for future in futures]

    def stream(
        self,
        specs: Sequence[TrialSpec],
        consume: Callable[[TrialResult], None],
        progress: Optional[ProgressFn] = None,
    ) -> int:
        """Streaming over the process pool with windowed submission.

        At most ``jobs * 4`` trials are in flight or awaiting consumption
        at any moment, so memory stays flat no matter how long the plan
        is.  Results are consumed strictly in plan order (the stream file
        then matches the serial backend's byte for byte).
        """
        specs = list(specs)
        if not specs:
            return 0
        workers = min(self.jobs, len(specs))
        if workers == 1:
            return super().stream(specs, consume, progress=progress)
        fn = self._trial_fn()
        window = workers * 4
        pending: deque = deque()
        done = 0
        with _ProcessPool(max_workers=workers) as pool:
            spec_iter = iter(specs)
            for spec in itertools.islice(spec_iter, window):
                pending.append(pool.submit(fn, spec))
            while pending:
                result = pending.popleft().result()
                done += 1
                consume(result)
                if progress is not None:
                    progress(done, len(specs), result)
                for spec in itertools.islice(spec_iter, 1):
                    pending.append(pool.submit(fn, spec))
        return done

    def __repr__(self) -> str:
        return f"ParallelExecutor(jobs={self.jobs})"


def make_executor(
    jobs: int | None,
    watchdog: float | None = None,
    retries: int = 0,
) -> TrialExecutor:
    """``jobs`` semantics shared by the CLI and scripts: ``None``/``0``/``1``
    mean serial; anything larger selects the process-pool backend.
    ``watchdog``/``retries`` configure the per-trial wall-clock guard (see
    :func:`execute_trial_guarded`)."""
    if jobs is None or jobs <= 1:
        return SerialExecutor(watchdog=watchdog, retries=retries)
    return ParallelExecutor(jobs, watchdog=watchdog, retries=retries)


def run_plan(
    plan: ExperimentPlan,
    executor: TrialExecutor | None = None,
    jobs: int | None = None,
    progress: Optional[ProgressFn] = None,
) -> ResultStore:
    """Execute ``plan`` and aggregate the results into a
    :class:`ResultStore` — the one-call form of the three-layer pipeline."""
    if executor is not None and jobs is not None:
        raise ConfigurationError("give either 'executor' or 'jobs', not both")
    backend = executor if executor is not None else make_executor(jobs)
    return ResultStore.from_run(plan, backend.run(plan, progress=progress))


def stream_plan(
    plan: ExperimentPlan,
    path: str,
    executor: TrialExecutor | None = None,
    jobs: int | None = None,
    progress: Optional[ProgressFn] = None,
    include_timing: bool = False,
) -> int:
    """Execute ``plan`` straight into a JSONL stream at ``path``.

    The memory-flat counterpart of :func:`run_plan`: each trial is written
    by :class:`~repro.engine.results.StreamingResultStore` the moment it
    finishes, so peak memory is one window of in-flight trials rather than
    the whole plan.  ``load_document(path)`` later reassembles the exact
    canonical document.  Returns the number of trials written.
    """
    if executor is not None and jobs is not None:
        raise ConfigurationError("give either 'executor' or 'jobs', not both")
    backend = executor if executor is not None else make_executor(jobs)
    meta = plan.meta() if hasattr(plan, "meta") else {}
    with StreamingResultStore(
        path, plan=meta, include_timing=include_timing
    ) as store:
        return backend.stream(plan.specs, store.append, progress=progress)
