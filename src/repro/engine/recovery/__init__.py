"""Crash safety for the experiment engine.

The engine's determinism contract (one plan → one byte-identical result
document, whatever backend ran it) makes crash recovery unusually clean:
a completed trial's record is final the moment it exists, so an
interrupted run can be resumed by re-executing *only* the missing trials
and merging by plan index — the reassembled document is byte-identical
to an uninterrupted run.  This package holds the three recovery layers:

* :mod:`repro.engine.recovery.checkpoint` — the ``repro-run-checkpoint``
  v1 journal: an append-only, flushed-per-line JSONL file recording each
  completed trial (full record + integrity digest) under a header that
  pins the plan digest and executor.  ``run_plan`` / ``stream_plan`` /
  ``run_experiment`` accept ``checkpoint=`` (write one, auto-resuming if
  it already exists) and ``resume_from=`` (seed a run from one).
* :mod:`repro.engine.recovery.healing` — the self-healing policy for the
  warm worker pool: respawn backoff schedule, redispatch bounds, and
  poison-trial quarantine thresholds used by
  :class:`~repro.engine.executor.ParallelExecutor` when a worker dies
  mid-chunk (``BrokenProcessPool``).
* :mod:`repro.engine.recovery.chaos` — a deterministic engine-level
  fault injector (SIGINT after N trials, SIGKILL a warm worker at the
  Nth chunk, ENOSPC on store append, torn tails) driving the
  conformance suite that proves resume-after-every-failure-point yields
  the baseline bytes.

See ``docs/RECOVERY.md`` for the journal format and resume semantics.
"""

from repro.engine.recovery.chaos import (
    ChaosInterrupt,
    ENOSPCAfter,
    KillWorkerAtChunk,
    SigintAfter,
    tear_file_tail,
)
from repro.engine.recovery.checkpoint import (
    CHECKPOINT_SCHEMA,
    CHECKPOINT_VERSION,
    CheckpointError,
    CheckpointState,
    CheckpointWriter,
    load_checkpoint,
    record_digest,
    resolve_checkpoint,
    result_from_record,
)
from repro.engine.recovery.healing import (
    MAX_RESPAWN_BACKOFF_S,
    RESPAWN_BACKOFF_S,
    SPLIT_AFTER_DEATHS,
    WorkerPoolError,
    max_consecutive_respawns,
    quarantine_threshold,
    respawn_backoff,
)

__all__ = [
    "CHECKPOINT_SCHEMA",
    "CHECKPOINT_VERSION",
    "ChaosInterrupt",
    "CheckpointError",
    "CheckpointState",
    "CheckpointWriter",
    "ENOSPCAfter",
    "KillWorkerAtChunk",
    "MAX_RESPAWN_BACKOFF_S",
    "RESPAWN_BACKOFF_S",
    "SPLIT_AFTER_DEATHS",
    "SigintAfter",
    "WorkerPoolError",
    "load_checkpoint",
    "max_consecutive_respawns",
    "quarantine_threshold",
    "record_digest",
    "resolve_checkpoint",
    "respawn_backoff",
    "result_from_record",
    "tear_file_tail",
]
