"""The ``repro-run-checkpoint`` v1 journal: durable per-trial run state.

Layout (JSONL, every line flushed the moment it is written):

* line 1 — the header: ``{"type": "checkpoint", "schema":
  "repro-run-checkpoint", "version": 1, "plan": {...}, "plan_digest":
  "...", "executor": {...}, "n_trials": N, ...}``.  ``plan_digest`` is
  :func:`repro.engine.telemetry.plan_digest` over the full spec list, so
  a checkpoint can never be resumed against a different plan.
* every further line — one completed trial: ``{"type": "trial",
  "index": i, "digest": "...", "record": {...}}``.  ``record`` is the
  trial's full document record (timing included, so both canonical and
  ``include_timing`` documents can be reassembled); ``digest`` is
  :func:`record_digest` over it, catching on-disk corruption.

Recovery rules (what makes the journal crash-safe):

* a **torn final line** (crash mid-append) is detected, warned about and
  truncated away before appending resumes — the journal is always a
  valid prefix plus the new lines;
* a complete line that fails to parse or fails its digest stops the scan
  there (the valid prefix is kept, the suspect tail re-executes);
* trial identity fields are **not trusted from disk**: a resumed
  :class:`~repro.engine.results.TrialResult` is rebuilt from the
  journal's payload fields plus the *parent's* copy of the spec, exactly
  like the executor's wire transport, so the reassembled document is
  byte-identical to an uninterrupted run.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping

from repro.engine.results import TrialResult, jsonable
from repro.engine.telemetry import plan_digest
from repro.sim.errors import ConfigurationError
from repro.version import package_version

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.plan import ExperimentPlan, TrialSpec

#: Journal schema identifier and version; bump on any layout change.
CHECKPOINT_SCHEMA = "repro-run-checkpoint"
CHECKPOINT_VERSION = 1

#: Versions this engine can still resume from.
SUPPORTED_CHECKPOINT_VERSIONS = (1,)


class CheckpointError(ConfigurationError):
    """A checkpoint journal cannot be used: wrong schema, a plan-digest
    mismatch, or a missing file named by ``resume_from=``.  Subclasses
    :class:`~repro.sim.errors.ConfigurationError` so existing broad
    handlers keep working."""


def record_digest(record: Mapping[str, Any]) -> str:
    """Integrity digest of one trial record (canonical JSON, sha256/16)."""
    blob = json.dumps(record, sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def result_from_record(
    record: Mapping[str, Any], spec: "TrialSpec"
) -> TrialResult:
    """Rebuild a full :class:`TrialResult` from a journal record plus the
    parent's spec.  Identity fields (index / kind / seed / trial / point)
    come from the spec — never from disk — mirroring the executor's
    ``_unpack_result``, so rehydrated results group and serialise exactly
    like freshly executed ones."""
    return TrialResult(
        index=spec.index,
        kind=spec.kind,
        seed=spec.seed,
        trial=spec.trial,
        point=tuple(spec.point_dict().items()),
        ok=record["ok"],
        terminated=record["terminated"],
        result=record["result"],
        truth=record["truth"],
        error=record["error"],
        completeness=record["completeness"],
        latency=record["latency"],
        messages=record["messages"],
        core_size=record["core_size"],
        events_executed=record["events_executed"],
        wall_time=record.get("wall_time", 0.0),
        metrics=record.get("metrics", {}),
        status=record.get("status", ""),
        coverage=record.get("coverage"),
    )


@dataclass
class CheckpointState:
    """The loaded contents of a checkpoint journal.

    ``records`` maps plan index → trial record for every valid journal
    line; ``valid_bytes`` is the byte length of the valid prefix (a
    writer truncates to it before appending, discarding any torn tail).
    """

    path: str
    header: dict[str, Any]
    records: dict[int, dict[str, Any]] = field(default_factory=dict)
    valid_bytes: int = 0

    @property
    def plan_digest(self) -> str:
        return str(self.header.get("plan_digest", ""))

    @property
    def n_trials(self) -> int:
        return int(self.header.get("n_trials", 0))

    @property
    def completed(self) -> set[int]:
        return set(self.records)

    def verify_plan(self, plan: "ExperimentPlan") -> None:
        """Raise :class:`CheckpointError` unless this journal belongs to
        ``plan`` (same digest — same grid, seeds, order)."""
        digest = plan_digest(plan)
        if digest != self.plan_digest:
            raise CheckpointError(
                f"{self.path}: checkpoint belongs to a different plan "
                f"(journal digest {self.plan_digest!r}, plan digest "
                f"{digest!r}); refusing to resume"
            )

    def results_for(self, plan: "ExperimentPlan") -> dict[int, TrialResult]:
        """Rehydrate every journalled trial against ``plan``'s specs."""
        self.verify_plan(plan)
        by_index = {spec.index: spec for spec in plan.specs}
        out: dict[int, TrialResult] = {}
        for index, record in self.records.items():
            spec = by_index.get(index)
            if spec is None:  # pragma: no cover - digest match prevents this
                raise CheckpointError(
                    f"{self.path}: journalled trial index {index} is not in "
                    f"the plan"
                )
            out[index] = result_from_record(record, spec)
        return out


def load_checkpoint(
    path: str, plan: "ExperimentPlan | None" = None
) -> CheckpointState:
    """Load a checkpoint journal, tolerating a torn tail.

    Scans complete lines only (a trailing line without its newline —
    a crash mid-append — is dropped with a warning); the scan also stops,
    with a warning, at the first complete line that fails to parse or
    fails its integrity digest, keeping the valid prefix.  With ``plan``
    given, the journal's plan digest is verified up front.
    """
    if not os.path.exists(path):
        raise CheckpointError(f"no checkpoint journal at {path!r}")
    state: CheckpointState | None = None
    with open(path, "r", encoding="utf-8") as handle:
        while True:
            start = handle.tell()
            line = handle.readline()
            if not line:
                break
            if not line.endswith("\n"):
                warnings.warn(
                    f"{path}: torn final checkpoint line dropped "
                    "(crash mid-append); the trial will re-execute",
                    RuntimeWarning,
                    stacklevel=2,
                )
                break
            stripped = line.strip()
            if not stripped:
                continue
            try:
                entry = json.loads(stripped)
            except json.JSONDecodeError:
                if state is None:
                    raise CheckpointError(
                        f"{path}: not a {CHECKPOINT_SCHEMA} journal "
                        "(unparseable header line)"
                    )
                warnings.warn(
                    f"{path}: corrupt checkpoint line at byte {start} "
                    "dropped along with everything after it",
                    RuntimeWarning,
                    stacklevel=2,
                )
                break
            if state is None:
                if entry.get("schema") != CHECKPOINT_SCHEMA:
                    raise CheckpointError(
                        f"{path}: not a {CHECKPOINT_SCHEMA} journal "
                        f"(schema={entry.get('schema')!r})"
                    )
                if entry.get("version") not in SUPPORTED_CHECKPOINT_VERSIONS:
                    raise CheckpointError(
                        f"{path}: unsupported checkpoint version "
                        f"{entry.get('version')!r}; this engine resumes "
                        f"versions {SUPPORTED_CHECKPOINT_VERSIONS}"
                    )
                state = CheckpointState(
                    path=str(path), header=entry, valid_bytes=handle.tell()
                )
                continue
            if entry.get("type") != "trial":
                warnings.warn(
                    f"{path}: unexpected checkpoint entry type "
                    f"{entry.get('type')!r} at byte {start}; scan stopped",
                    RuntimeWarning,
                    stacklevel=2,
                )
                break
            record = entry.get("record")
            if (
                not isinstance(record, dict)
                or entry.get("digest") != record_digest(record)
            ):
                warnings.warn(
                    f"{path}: checkpoint entry for trial "
                    f"{entry.get('index')!r} failed its integrity digest; "
                    "it and everything after it will re-execute",
                    RuntimeWarning,
                    stacklevel=2,
                )
                break
            index = int(entry["index"])
            if index in state.records:
                warnings.warn(
                    f"{path}: duplicate checkpoint entry for trial {index} "
                    "ignored",
                    RuntimeWarning,
                    stacklevel=2,
                )
            else:
                state.records[index] = record
            state.valid_bytes = handle.tell()
    if state is None:
        raise CheckpointError(f"{path}: empty checkpoint journal")
    if plan is not None:
        state.verify_plan(plan)
    return state


class CheckpointWriter:
    """Appends completed trials to a checkpoint journal, flushed per line.

    Opening a path that already holds a valid journal for the same plan
    **auto-resumes**: the torn tail (if any) is truncated away, the
    completed set is preloaded (:attr:`preloaded`), and new appends land
    after the valid prefix.  A journal for a *different* plan raises
    :class:`CheckpointError` — a checkpoint is never silently clobbered.
    """

    def __init__(
        self,
        path: str,
        plan: "ExperimentPlan",
        executor: Mapping[str, Any] | None = None,
        run_id: str | None = None,
    ) -> None:
        self.path = str(path)
        self.plan = plan
        self.resumed = False
        self.preloaded: dict[int, TrialResult] = {}
        self._completed: set[int] = set()
        self._handle: Any = None
        existing = os.path.exists(self.path) and os.path.getsize(self.path) > 0
        if existing:
            state = load_checkpoint(self.path, plan=plan)
            self.preloaded = state.results_for(plan)
            self._completed = set(self.preloaded)
            self.resumed = True
            with open(self.path, "r+b") as tail:
                tail.truncate(state.valid_bytes)
            self._handle = open(self.path, "a", encoding="utf-8")
        else:
            parent = os.path.dirname(self.path)
            if parent:
                os.makedirs(parent, exist_ok=True)
            self._handle = open(self.path, "w", encoding="utf-8")
            header = {
                "type": "checkpoint",
                "schema": CHECKPOINT_SCHEMA,
                "version": CHECKPOINT_VERSION,
                "created": time.time(),
                "plan": jsonable(plan.meta() if hasattr(plan, "meta") else {}),
                "plan_digest": plan_digest(plan),
                "executor": dict(executor or {}),
                "n_trials": len(plan.specs),
                "repro_version": package_version(),
            }
            if run_id is not None:
                header["run_id"] = run_id
            self._write_line(header)

    def _write_line(self, entry: Mapping[str, Any]) -> None:
        # One write + flush per line: a crash between appends loses
        # nothing, a crash mid-append leaves a torn tail the loader
        # truncates away.
        self._handle.write(json.dumps(entry, sort_keys=True) + "\n")
        self._handle.flush()

    @property
    def completed(self) -> set[int]:
        return set(self._completed)

    def append(self, result: TrialResult) -> None:
        """Journal one completed trial (idempotent per plan index)."""
        if self._handle is None:
            raise CheckpointError(f"{self.path}: checkpoint writer is closed")
        if result.index in self._completed:
            return
        record = result.to_record(include_timing=True)
        self._write_line({
            "type": "trial",
            "index": result.index,
            "digest": record_digest(record),
            "record": record,
        })
        self._completed.add(result.index)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "CheckpointWriter":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def resolve_checkpoint(
    checkpoint: "CheckpointWriter | str | None",
    resume_from: "CheckpointState | str | None",
    plan: "ExperimentPlan",
    executor: Mapping[str, Any] | None = None,
    run_id: str | None = None,
) -> tuple["CheckpointWriter | None", dict[int, TrialResult], str | None]:
    """Normalise the ``checkpoint=`` / ``resume_from=`` run arguments.

    Returns ``(writer, preloaded, path)``: ``writer`` journals the run's
    new trials (``None`` when no checkpoint was requested), ``preloaded``
    maps plan index → already-completed result (from ``resume_from``, the
    auto-resumed ``checkpoint`` journal, or both), and ``path`` is the
    journal path for the run manifest.  Both sources are plan-digest
    verified; giving the *same* path as ``checkpoint=`` and running the
    command twice is the idempotent resume idiom.
    """
    preloaded: dict[int, TrialResult] = {}
    if resume_from is not None:
        if isinstance(resume_from, CheckpointState):
            state = resume_from
            state.verify_plan(plan)
        else:
            state = load_checkpoint(str(resume_from), plan=plan)
        preloaded.update(state.results_for(plan))
    writer: CheckpointWriter | None = None
    if checkpoint is not None:
        if isinstance(checkpoint, CheckpointWriter):
            writer = checkpoint
        else:
            writer = CheckpointWriter(
                str(checkpoint), plan, executor=executor, run_id=run_id
            )
        preloaded.update(writer.preloaded)
        # Trials resumed from elsewhere still belong in this journal so
        # it becomes self-contained for the *next* resume.
        for result in preloaded.values():
            writer.append(result)
    path = writer.path if writer is not None else (
        str(resume_from) if isinstance(resume_from, str) else None
    )
    return writer, preloaded, path
