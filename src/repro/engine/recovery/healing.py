"""Self-healing policy for the warm worker pool.

When a worker process dies (SIGKILL, OOM, a hard crash inside native
code), :class:`concurrent.futures.ProcessPoolExecutor` breaks the whole
pool: every in-flight future raises ``BrokenProcessPool`` and the pool
is unusable.  :class:`~repro.engine.executor.ParallelExecutor` recovers
by forking a fresh pool and re-dispatching the incomplete chunks; this
module holds the pure policy pieces — the backoff schedule, the
redispatch bounds, and the poison-trial quarantine threshold — so they
can be unit-tested without forking anything.

Poison-trial semantics: a worker death is attributed to the trial the
dead worker had most recently *started* (its heartbeat mark — see
``_run_chunk``'s heartbeat file).  Because a single co-incident death is
never proof (the chaos suite SIGKILLs perfectly innocent workers), a
suspect always gets ``trial_retries + 1`` clean re-runs: a trial is
quarantined only once its kill count reaches
:func:`quarantine_threshold` (``trial_retries + 2``).  When no heartbeat
survives the crash, attribution falls back to whole-task death counts:
a chunk that has died :data:`SPLIT_AFTER_DEATHS` times is split into
single-trial tasks so the poison isolates itself.
"""

from __future__ import annotations

from repro.sim.errors import ConfigurationError

#: First respawn delay; doubles per consecutive respawn without progress.
RESPAWN_BACKOFF_S = 0.05

#: Backoff ceiling — a flapping pool never waits longer than this.
MAX_RESPAWN_BACKOFF_S = 2.0

#: A multi-trial chunk that has died this many times is split into
#: single-trial tasks (heartbeat-less poison isolation).
SPLIT_AFTER_DEATHS = 2


class WorkerPoolError(ConfigurationError):
    """The warm pool kept dying with no forward progress — respawning was
    abandoned after :func:`max_consecutive_respawns` consecutive
    failures.  Subclasses :class:`~repro.sim.errors.ConfigurationError`
    so existing broad handlers keep working."""


def respawn_backoff(consecutive: int) -> float:
    """Delay before the ``consecutive``-th respawn in a row (1-based):
    exponential from :data:`RESPAWN_BACKOFF_S`, capped at
    :data:`MAX_RESPAWN_BACKOFF_S`."""
    if consecutive < 1:
        raise ConfigurationError(
            f"consecutive respawn count must be >= 1, got {consecutive}"
        )
    return min(MAX_RESPAWN_BACKOFF_S, RESPAWN_BACKOFF_S * 2 ** (consecutive - 1))


def max_consecutive_respawns(trial_retries: int) -> int:
    """How many respawns without a single completed chunk are tolerated
    before the run aborts with :class:`WorkerPoolError`.  High enough
    that a lone poison trial can burn through its quarantine budget
    (split + ``trial_retries + 1`` single-task kills) even when it is
    the only trial left."""
    return max(6, trial_retries + 4)


def quarantine_threshold(trial_retries: int) -> int:
    """The kill count at which a trial is quarantined:
    ``trial_retries + 2``.  The first death is never proof (the chaos
    suite SIGKILLs perfectly innocent workers), so every suspect gets
    ``trial_retries + 1`` clean re-runs before being declared poison."""
    if trial_retries < 0:
        raise ConfigurationError(
            f"trial_retries must be >= 0, got {trial_retries}"
        )
    return trial_retries + 2
