"""Deterministic engine-level fault injection (the harness chaos suite).

The fault plane (:mod:`repro.faults`) breaks the *simulated* system;
this module breaks the **harness itself** — the worker pool, the result
store, the operator's keyboard — at exact, reproducible points, so the
conformance suite in ``tests/engine/test_chaos_engine.py`` can prove
that resume-after-every-failure-point reassembles the baseline bytes.

Every injector is count-based (fire on the Nth trial / chunk / append),
never clock-based: a chaos test that passes once passes always.

* :class:`SigintAfter` — a progress hook raising
  :class:`ChaosInterrupt` (a ``KeyboardInterrupt``) after N trial
  completions: the operator hitting Ctrl-C mid-run.
* :class:`KillWorkerAtChunk` — a progress hook that SIGKILLs one warm
  worker when the Nth chunk completes: a hard worker death mid-dispatch
  (OOM killer, node reaper) that the self-healing pool must absorb.
* :class:`ENOSPCAfter` — wraps a result-consuming callable (a store or
  checkpoint append) to raise ``OSError(ENOSPC)`` on the Nth call: the
  disk filling up mid-stream.
* :func:`tear_file_tail` — chops bytes off a file's final line: the
  on-disk aftermath of a crash mid-append, exercising every reader's
  torn-tail recovery.
"""

from __future__ import annotations

import errno
import os
import signal
from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.sim.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.executor import ParallelExecutor
    from repro.engine.results import TrialResult


class ChaosInterrupt(KeyboardInterrupt):
    """The injected SIGINT — a ``KeyboardInterrupt`` subclass so the
    engine's interrupt handling is exercised for real, but
    distinguishable from a genuine Ctrl-C in test assertions."""


def _forward_chunks(progress: Any, dispatched: int, completed: int) -> None:
    update = getattr(progress, "chunk_update", None)
    if callable(update):
        update(dispatched, completed)


class SigintAfter:
    """Progress hook: raise :class:`ChaosInterrupt` after ``trials``
    completions (the result that triggers it is still delivered first,
    matching a real SIGINT landing between trials).  Chains to an inner
    progress callback when given."""

    def __init__(
        self, trials: int, progress: Optional[Callable[..., None]] = None
    ) -> None:
        if trials < 1:
            raise ConfigurationError(f"trials must be >= 1, got {trials}")
        self.trials = trials
        self.progress = progress
        self.seen = 0
        self.fired = False

    def __call__(self, done: int, total: int, result: Any) -> None:
        self.seen += 1
        if self.progress is not None:
            self.progress(done, total, result)
        if not self.fired and self.seen >= self.trials:
            self.fired = True
            raise ChaosInterrupt(
                f"chaos: injected SIGINT after {self.seen} trials"
            )

    def chunk_update(self, dispatched: int, completed: int) -> None:
        _forward_chunks(self.progress, dispatched, completed)


class KillWorkerAtChunk:
    """Progress hook: SIGKILL one live warm-pool worker when the Nth
    chunk completes.  The kill lands while later chunks are in flight,
    so the pool breaks mid-dispatch — exactly the failure the
    self-healing executor must absorb without perturbing the document."""

    def __init__(
        self,
        executor: "ParallelExecutor",
        chunk: int = 1,
        progress: Optional[Callable[..., None]] = None,
        sig: int = signal.SIGKILL,
    ) -> None:
        if chunk < 1:
            raise ConfigurationError(f"chunk must be >= 1, got {chunk}")
        self.executor = executor
        self.chunk = chunk
        self.progress = progress
        self.sig = sig
        self.fired = False
        self.victim: int | None = None

    def __call__(self, done: int, total: int, result: Any) -> None:
        if self.progress is not None:
            self.progress(done, total, result)

    def chunk_update(self, dispatched: int, completed: int) -> None:
        _forward_chunks(self.progress, dispatched, completed)
        if self.fired or completed < self.chunk:
            return
        pids = self.executor.worker_pids()
        if not pids:
            return
        self.fired = True
        self.victim = pids[0]
        os.kill(self.victim, self.sig)


class ENOSPCAfter:
    """Wraps a result-consuming callable: the Nth call raises
    ``OSError(ENOSPC)`` *before* delegating, so the failed append writes
    nothing — the disk-full crash a checkpointed run must survive."""

    def __init__(
        self, consume: Callable[["TrialResult"], None], calls: int
    ) -> None:
        if calls < 1:
            raise ConfigurationError(f"calls must be >= 1, got {calls}")
        self.consume = consume
        self.calls = calls
        self.seen = 0

    def __call__(self, result: "TrialResult") -> None:
        self.seen += 1
        if self.seen == self.calls:
            raise OSError(
                errno.ENOSPC,
                f"chaos: injected ENOSPC on append {self.seen}",
            )
        self.consume(result)


def tear_file_tail(path: str, drop_bytes: int = 7) -> int:
    """Simulate a crash mid-append: chop ``drop_bytes`` off the end of
    ``path`` (at least the trailing newline, so the last line is torn).
    Returns the new file size."""
    if drop_bytes < 1:
        raise ConfigurationError(f"drop_bytes must be >= 1, got {drop_bytes}")
    size = os.path.getsize(path)
    if size <= drop_bytes:
        raise ConfigurationError(
            f"{path}: {size} bytes is too small to tear {drop_bytes} bytes off"
        )
    with open(path, "r+b") as handle:
        handle.truncate(size - drop_bytes)
    return size - drop_bytes
