"""The ResultStore layer: trial results as a schema-versioned document.

The executor hands back a flat :class:`TrialResult` per trial — plain,
picklable, JSON-able data.  :class:`ResultStore` groups them by grid point,
computes per-point summaries, and serialises everything as a canonical JSON
document that downstream consumers (``repro.analysis.tables``,
``repro.analysis.compare``, ``benchmarks/emit_bench.py``) read without ever
touching simulator objects.

Canonical form: trials sorted by plan index, keys sorted, fixed indent, and
— by default — **no wall-clock timing**, so the same plan produces a
byte-identical document no matter which executor backend ran it or in what
order the trials finished.  Pass ``include_timing=True`` to add the
(non-deterministic) per-trial wall times and phase timings for perf work.

Schema history:

* **v1** — plan / points / summary / trials records.
* **v2** — adds an optional per-trial ``metrics`` block (the simulator's
  counter/gauge/histogram snapshot, minus its wall-clock ``timings``
  section, which moves under ``include_timing`` with ``wall_time``).
  v1 documents still load; the ``metrics`` block simply comes back empty.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.obs.metrics import strip_timings
from repro.sim.errors import ConfigurationError
from repro.version import package_version

#: Document schema identifier and version; bump the version on any change
#: to the document layout.
SCHEMA_NAME = "repro-engine-results"
SCHEMA_VERSION = 2

#: Versions this engine can still read.
SUPPORTED_VERSIONS = (1, 2)


class SchemaVersionError(ConfigurationError):
    """A result document declares a schema version this engine cannot read.

    Raised up front by :func:`validate_document` / :func:`load_document`
    (instead of failing deep in consumer code) and names both the offending
    version and the supported range.  Subclasses
    :class:`~repro.sim.errors.ConfigurationError`, so existing broad
    handlers keep working.
    """

    def __init__(self, version: Any, supported: tuple[int, ...]) -> None:
        self.version = version
        self.supported = tuple(supported)
        super().__init__(
            f"unsupported result document schema version {version!r}; this "
            f"engine reads {SCHEMA_NAME} versions "
            f"{self.supported[0]}..{self.supported[-1]} "
            f"({', '.join(str(v) for v in self.supported)})"
        )


def jsonable(value: Any) -> Any:
    """Coerce a trial-level value to something ``json.dumps`` accepts."""
    if isinstance(value, (frozenset, set)):
        return sorted(jsonable(v) for v in value)
    if isinstance(value, tuple):
        return [jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, list):
        return [jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    return str(value)


@dataclass(frozen=True)
class TrialResult:
    """The flat, process-boundary-safe summary of one executed trial.

    ``result``/``truth`` hold JSON-able values (set aggregates arrive as
    sorted lists).  ``completeness`` is the stable-core coverage for query
    trials, the audit coverage for dissemination trials, and ``nan`` for
    gossip trials (which have no core obligation).  ``wall_time`` is
    measured around the whole trial (config materialisation + simulation)
    and is excluded from canonical documents.  ``metrics`` is the
    simulator's observability snapshot; its deterministic sections
    (counters / gauges / histograms) go into the document, while the
    wall-clock ``timings`` section is quarantined with ``wall_time``.
    """

    index: int
    kind: str
    seed: int
    trial: int
    point: tuple[tuple[str, Any], ...]
    ok: bool
    terminated: bool
    result: Any
    truth: Any
    error: float
    completeness: float
    latency: float
    messages: int
    core_size: int
    events_executed: int
    wall_time: float
    metrics: Mapping[str, Any] = field(default_factory=dict)
    #: Non-empty only for exceptional dispositions (``"quarantined"`` when
    #: every watchdog attempt timed out); the empty default is omitted from
    #: records, keeping documents byte-identical when the watchdog is off.
    status: str = ""
    #: The query's coverage report (dict form), present only when a
    #: resilience layer with ``partial_results`` ran the trial.
    coverage: Mapping[str, Any] | None = None

    def point_dict(self) -> dict[str, Any]:
        return dict(self.point)

    def to_record(self, include_timing: bool = False) -> dict[str, Any]:
        """The per-trial JSON record (deterministic unless timing is on)."""
        record = {
            "index": self.index,
            "kind": self.kind,
            "seed": self.seed,
            "trial": self.trial,
            "ok": self.ok,
            "terminated": self.terminated,
            "result": jsonable(self.result),
            "truth": jsonable(self.truth),
            "error": self.error,
            "completeness": self.completeness,
            "latency": self.latency,
            "messages": self.messages,
            "core_size": self.core_size,
            "events_executed": self.events_executed,
            "metrics": jsonable(strip_timings(self.metrics)),
        }
        # Optional members, emitted only when set: absent watchdog and
        # absent resilience keep the record layout (and bytes) unchanged,
        # so no schema version bump is needed.
        if self.status:
            record["status"] = self.status
        if self.coverage is not None:
            record["coverage"] = jsonable(self.coverage)
        if include_timing:
            record["wall_time"] = self.wall_time
            timings = dict(self.metrics or {}).get("timings")
            if timings:
                record["metrics"]["timings"] = jsonable(timings)
        return record

    @classmethod
    def from_record(
        cls, record: Mapping[str, Any], point: Mapping[str, Any]
    ) -> "TrialResult":
        """Rebuild a result from a loaded document record."""
        return cls(
            index=record["index"],
            kind=record["kind"],
            seed=record["seed"],
            trial=record["trial"],
            point=tuple(sorted(point.items(), key=lambda kv: kv[0])),
            ok=record["ok"],
            terminated=record["terminated"],
            result=record["result"],
            truth=record["truth"],
            error=record["error"],
            completeness=record["completeness"],
            latency=record["latency"],
            messages=record["messages"],
            core_size=record["core_size"],
            events_executed=record["events_executed"],
            wall_time=record.get("wall_time", 0.0),
            metrics=record.get("metrics", {}),
            status=record.get("status", ""),
            coverage=record.get("coverage"),
        )


def _mean(values: list[float]) -> float:
    if not values:
        return float("nan")
    return sum(values) / len(values)


def summarize_point(results: list[TrialResult]) -> dict[str, Any]:
    """Per-point aggregates over the trial results."""
    n = len(results)
    numeric_results = [
        float(r.result) if isinstance(r.result, (int, float)) else 0.0
        for r in results
    ]
    return {
        "trials": n,
        "ok": sum(1 for r in results if r.ok) / n if n else 0.0,
        "completeness": _mean([r.completeness for r in results]),
        "fully_complete": (
            sum(1 for r in results if r.completeness == 1.0) / n if n else 0.0
        ),
        "error": _mean([r.error for r in results]),
        "latency": _mean([r.latency for r in results]),
        "messages": _mean([float(r.messages) for r in results]),
        "result_mean": _mean(numeric_results),
        "core_size": _mean([float(r.core_size) for r in results]),
        "events_executed": sum(r.events_executed for r in results),
    }


class ResultStore:
    """Aggregates :class:`TrialResult`s into the canonical JSON document."""

    def __init__(
        self,
        plan: Mapping[str, Any] | None = None,
        results: Iterable[TrialResult] = (),
    ) -> None:
        self.plan: dict[str, Any] = dict(plan or {})
        self._results: list[TrialResult] = list(results)

    @classmethod
    def from_run(cls, plan: Any, results: Iterable[TrialResult]) -> "ResultStore":
        """Build a store from an :class:`~repro.engine.plan.ExperimentPlan`
        (or any object with a ``meta()`` dict) and its executed results."""
        meta = plan.meta() if hasattr(plan, "meta") else dict(plan or {})
        return cls(plan=meta, results=results)

    # ------------------------------------------------------------------
    # Accumulation & access
    # ------------------------------------------------------------------

    def add(self, result: TrialResult) -> None:
        self._results.append(result)

    def extend(self, results: Iterable[TrialResult]) -> None:
        self._results.extend(results)

    @property
    def results(self) -> list[TrialResult]:
        """All results, in plan order (stable across executor backends)."""
        return sorted(self._results, key=lambda r: r.index)

    def __len__(self) -> int:
        return len(self._results)

    def by_point(self) -> dict[tuple[tuple[str, Any], ...], list[TrialResult]]:
        """Results grouped by grid point, groups and trials in plan order."""
        grouped: dict[tuple[tuple[str, Any], ...], list[TrialResult]] = {}
        for result in self.results:
            grouped.setdefault(result.point, []).append(result)
        return grouped

    def summary(self) -> dict[tuple[tuple[str, Any], ...], dict[str, Any]]:
        """Per-point summaries keyed by the point tuple, in plan order."""
        return {
            point: summarize_point(results)
            for point, results in self.by_point().items()
        }

    # ------------------------------------------------------------------
    # Document serialisation
    # ------------------------------------------------------------------

    def document(self, include_timing: bool = False) -> dict[str, Any]:
        """The full result document (deterministic by default)."""
        points = []
        for point, results in self.by_point().items():
            points.append({
                "point": jsonable(dict(point)),
                "summary": summarize_point(results),
                "trials": [r.to_record(include_timing) for r in results],
            })
        return {
            "schema": SCHEMA_NAME,
            "version": SCHEMA_VERSION,
            "repro_version": package_version(),
            "plan": jsonable(self.plan),
            "points": points,
        }

    def to_json(self, include_timing: bool = False) -> str:
        """Canonical JSON: sorted keys, indent 2, trailing newline."""
        return json.dumps(
            self.document(include_timing), indent=2, sort_keys=True
        ) + "\n"

    def write(self, path: str, include_timing: bool = False) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json(include_timing))

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------

    @classmethod
    def from_document(cls, document: Mapping[str, Any]) -> "ResultStore":
        """Validate and rehydrate a result document."""
        validate_document(document)
        results = [
            TrialResult.from_record(record, entry["point"])
            for entry in document["points"]
            for record in entry["trials"]
        ]
        return cls(plan=document.get("plan", {}), results=results)

    @classmethod
    def load(cls, path: str) -> "ResultStore":
        return cls.from_document(load_document(path))


class StreamingResultStore:
    """Append-only JSONL result store for sweeps too large to buffer.

    The in-memory :class:`ResultStore` holds every :class:`TrialResult`
    until the end of the run; at 10⁴⁺ trials that is the engine's peak
    memory.  This store writes each trial the moment it finishes and keeps
    nothing:

    * line 1 — a header with the schema-v2 envelope (``schema``,
      ``version``, ``repro_version``, ``plan``) plus ``format:
      "jsonl-stream"`` so readers can sniff the container;
    * every further line — one trial, ``{"point": {...}, "record":
      {...}}``, with the identical record layout the canonical document
      uses.

    :func:`load_document` reassembles the exact canonical v2 document from
    the stream (summaries recomputed per point), so downstream consumers
    cannot tell which container produced a run.  Usable as a context
    manager; :meth:`append` matches the executor's streaming consumer
    signature.
    """

    FORMAT = "jsonl-stream"

    def __init__(
        self,
        path: str,
        plan: Mapping[str, Any] | None = None,
        include_timing: bool = False,
    ) -> None:
        self.path = str(path)
        self.plan: dict[str, Any] = dict(plan or {})
        self.include_timing = include_timing
        self.count = 0
        self._handle: Any = None

    def open(self) -> "StreamingResultStore":
        """Create the file and write the header line (idempotent)."""
        if self._handle is None:
            self._handle = open(self.path, "w", encoding="utf-8")
            header = {
                "schema": SCHEMA_NAME,
                "version": SCHEMA_VERSION,
                "format": self.FORMAT,
                "repro_version": package_version(),
                "plan": jsonable(self.plan),
            }
            self._handle.write(json.dumps(header, sort_keys=True) + "\n")
        return self

    def append(self, result: TrialResult) -> None:
        """Write one trial line; opens the store on first use."""
        if self._handle is None:
            self.open()
        entry = {
            "point": jsonable(result.point_dict()),
            "record": result.to_record(self.include_timing),
        }
        # One write + flush per trial: a crash between appends loses
        # nothing, and a crash mid-append leaves only a torn final line,
        # which load_document tolerates (warn + recover).
        self._handle.write(json.dumps(entry, sort_keys=True) + "\n")
        self._handle.flush()
        self.count += 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "StreamingResultStore":
        return self.open()

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def _assemble_stream_document(
    header: Mapping[str, Any], lines: Iterable[str], path: str = "<stream>"
) -> dict[str, Any]:
    """Rebuild the canonical document from a jsonl-stream body.

    A torn **final** line — the aftermath of a crash mid-append — is
    dropped with a :class:`RuntimeWarning` instead of raising, mirroring
    :func:`repro.obs.spans.read_telemetry`; the trial it held simply
    isn't in the document (a checkpointed run re-executes it on resume).
    A bad line *followed by good ones* is genuine corruption and still
    raises.
    """
    if header.get("schema") != SCHEMA_NAME:
        raise ConfigurationError(
            f"not a {SCHEMA_NAME} stream (schema={header.get('schema')!r})"
        )
    if header.get("version") not in SUPPORTED_VERSIONS:
        raise SchemaVersionError(header.get("version"), SUPPORTED_VERSIONS)
    body = [line.strip() for line in lines]
    while body and not body[-1]:
        body.pop()
    results = []
    for position, line in enumerate(body):
        if not line:
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            if position == len(body) - 1:
                import warnings

                warnings.warn(
                    f"{path}: torn final stream line dropped "
                    "(crash mid-append?); the document omits that trial",
                    RuntimeWarning,
                    stacklevel=2,
                )
                break
            raise ConfigurationError(
                f"{path}: corrupt stream line {position + 2} "
                "(not the final line, so not a torn append)"
            )
        results.append(TrialResult.from_record(entry["record"], entry["point"]))
    store = ResultStore(plan=header.get("plan", {}), results=results)
    return store.document()


def load_document(path: str) -> dict[str, Any]:
    """Load and validate a result document, returning the raw JSON object.

    Reads both containers: the canonical JSON file written by
    :meth:`ResultStore.write` and the JSONL stream written by
    :class:`StreamingResultStore` (sniffed from the header line).  Either
    way the returned object has the same schema-v2 document shape.

    Use :meth:`ResultStore.load` to rehydrate :class:`TrialResult`s instead;
    this helper is for consumers that want the document verbatim (tables,
    comparisons, archival checks) with the schema guarantee up front.
    """
    with open(path, "r", encoding="utf-8") as handle:
        first_line = handle.readline()
        header: Any = None
        try:
            header = json.loads(first_line)
        except json.JSONDecodeError:
            header = None
        if (
            isinstance(header, Mapping)
            and header.get("format") == StreamingResultStore.FORMAT
        ):
            document = _assemble_stream_document(header, handle, path=path)
        else:
            handle.seek(0)
            document = json.load(handle)
    validate_document(document)
    return document


def validate_document(document: Mapping[str, Any]) -> None:
    """Raise :class:`ConfigurationError` unless ``document`` matches the
    schema this version of the engine writes."""
    if not isinstance(document, Mapping):
        raise ConfigurationError("result document must be a JSON object")
    if document.get("schema") != SCHEMA_NAME:
        raise ConfigurationError(
            f"not a {SCHEMA_NAME} document (schema={document.get('schema')!r})"
        )
    if document.get("version") not in SUPPORTED_VERSIONS:
        raise SchemaVersionError(document.get("version"), SUPPORTED_VERSIONS)
    points = document.get("points")
    if not isinstance(points, list):
        raise ConfigurationError("result document has no 'points' list")
    for entry in points:
        if "point" not in entry or "trials" not in entry:
            raise ConfigurationError(
                "each point entry needs 'point' and 'trials' members"
            )
