"""The layered experiment engine: plan → executor → results.

Three explicit layers replace the old "call ``run_query`` in a loop"
pattern:

* :mod:`repro.engine.plan` — :func:`build_plan` expands a parameter grid
  into an immutable :class:`ExperimentPlan` of picklable
  :class:`TrialSpec`s with deterministically fanned-out seeds;
* :mod:`repro.engine.executor` — :class:`SerialExecutor` and the
  ``ProcessPoolExecutor``-backed :class:`ParallelExecutor` run the specs
  (``--jobs N`` on the CLI) and return results in plan order;
* :mod:`repro.engine.results` — :class:`ResultStore` aggregates
  :class:`TrialResult`s into a schema-versioned, canonical JSON document
  consumed by ``repro.analysis`` and the benchmark emitters.

Execution is configured by the frozen, picklable
:class:`~repro.engine.spec.ExecutorSpec` (backend, workers, chunking,
watchdog) — the same declarative idiom as ``FaultPlan`` and
``ResilienceSpec``.  One-call form::

    from repro.engine import ExecutorSpec, build_plan, run_plan

    plan = build_plan("churn-sweep", grid={"churn_rate": [0.0, 2.0]},
                      base={"n": 32, "aggregate": "COUNT"}, trials=8)
    store = run_plan(plan, executor=ExecutorSpec.parallel(jobs=4))
    store.write("results.json")

The single-trial layer lives in :mod:`repro.engine.trials`;
``repro.bench.runner`` re-exports it for compatibility.
"""

from repro.engine.executor import (
    ParallelExecutor,
    ProgressFn,
    SerialExecutor,
    TrialExecutor,
    execute_trial,
    make_executor,
    run_plan,
    stream_plan,
)
from repro.engine.spec import (
    EXECUTOR_PRESETS,
    ExecutorSpec,
    executor_preset,
    resolve_executor,
)
from repro.engine.plan import (
    VALUE_FUNCTIONS,
    ChurnSpec,
    ExperimentPlan,
    TrialSpec,
    build_plan,
)
from repro.engine.results import (
    SCHEMA_NAME,
    SCHEMA_VERSION,
    SUPPORTED_VERSIONS,
    ResultStore,
    TrialResult,
    load_document,
    summarize_point,
    validate_document,
)

__all__ = [
    "ChurnSpec",
    "EXECUTOR_PRESETS",
    "ExecutorSpec",
    "ExperimentPlan",
    "ParallelExecutor",
    "ProgressFn",
    "ResultStore",
    "SCHEMA_NAME",
    "SCHEMA_VERSION",
    "SUPPORTED_VERSIONS",
    "SerialExecutor",
    "TrialExecutor",
    "TrialResult",
    "TrialSpec",
    "VALUE_FUNCTIONS",
    "build_plan",
    "execute_trial",
    "executor_preset",
    "load_document",
    "make_executor",
    "resolve_executor",
    "run_plan",
    "stream_plan",
    "summarize_point",
    "validate_document",
]
