"""The layered experiment engine: plan → executor → results.

Three explicit layers replace the old "call ``run_query`` in a loop"
pattern:

* :mod:`repro.engine.plan` — :func:`build_plan` expands a parameter grid
  into an immutable :class:`ExperimentPlan` of picklable
  :class:`TrialSpec`s with deterministically fanned-out seeds;
* :mod:`repro.engine.executor` — :class:`SerialExecutor` and the
  ``ProcessPoolExecutor``-backed :class:`ParallelExecutor` run the specs
  (``--jobs N`` on the CLI) and return results in plan order;
* :mod:`repro.engine.results` — :class:`ResultStore` aggregates
  :class:`TrialResult`s into a schema-versioned, canonical JSON document
  consumed by ``repro.analysis`` and the benchmark emitters.

Execution is configured by the frozen, picklable
:class:`~repro.engine.spec.ExecutorSpec` (backend, workers, chunking,
watchdog) — the same declarative idiom as ``FaultPlan`` and
``ResilienceSpec``.  One-call form::

    from repro.engine import ExecutorSpec, build_plan, run_plan

    plan = build_plan("churn-sweep", grid={"churn_rate": [0.0, 2.0]},
                      base={"n": 32, "aggregate": "COUNT"}, trials=8)
    store = run_plan(plan, executor=ExecutorSpec.parallel(jobs=4))
    store.write("results.json")

The single-trial layer lives in :mod:`repro.engine.trials`;
``repro.bench.runner`` re-exports it for compatibility.

:mod:`repro.engine.telemetry` makes the engine itself observable: pass
``telemetry="run.telemetry.jsonl"`` to :func:`run_plan` /
:func:`stream_plan` to record a :class:`RunManifest`, hierarchical spans
(run → dispatch → chunk → trial) and per-worker health into an
append-only stream that ``repro top`` tails live — without changing a
byte of the result document.
"""

from repro.engine.executor import (
    ParallelExecutor,
    ProgressFn,
    SerialExecutor,
    TrialExecutor,
    execute_trial,
    make_executor,
    run_plan,
    stream_plan,
)
from repro.engine.spec import (
    EXECUTOR_PRESETS,
    ExecutorSpec,
    executor_preset,
    resolve_executor,
)
from repro.engine.plan import (
    VALUE_FUNCTIONS,
    ChurnSpec,
    ExperimentPlan,
    TrialSpec,
    build_plan,
)
from repro.engine.results import (
    SCHEMA_NAME,
    SCHEMA_VERSION,
    SUPPORTED_VERSIONS,
    ResultStore,
    TrialResult,
    load_document,
    summarize_point,
    validate_document,
)
from repro.engine.telemetry import (
    DEFAULT_RUNS_DIR,
    TELEMETRY_SUFFIX,
    RunManifest,
    TelemetryRecorder,
    TelemetryTail,
    WorkerHealth,
    find_run,
    load_telemetry,
    plan_digest,
    profile_slowest,
    render_profiles,
    scan_runs,
)

__all__ = [
    "ChurnSpec",
    "DEFAULT_RUNS_DIR",
    "EXECUTOR_PRESETS",
    "ExecutorSpec",
    "ExperimentPlan",
    "ParallelExecutor",
    "ProgressFn",
    "ResultStore",
    "RunManifest",
    "SCHEMA_NAME",
    "SCHEMA_VERSION",
    "SUPPORTED_VERSIONS",
    "SerialExecutor",
    "TELEMETRY_SUFFIX",
    "TelemetryRecorder",
    "TelemetryTail",
    "TrialExecutor",
    "TrialResult",
    "TrialSpec",
    "VALUE_FUNCTIONS",
    "WorkerHealth",
    "build_plan",
    "execute_trial",
    "executor_preset",
    "find_run",
    "load_document",
    "load_telemetry",
    "make_executor",
    "plan_digest",
    "profile_slowest",
    "render_profiles",
    "resolve_executor",
    "run_plan",
    "scan_runs",
    "stream_plan",
    "summarize_point",
    "validate_document",
]
