"""Trial execution: one config in, one fully checked outcome out.

This is the lowest layer of the experiment engine.  A config object —
:class:`QueryConfig`, :class:`GossipConfig` or :class:`DisseminationConfig`
— describes a complete scenario (population, topology, protocol, churn,
delays) and the matching ``run_*`` function executes it on a fresh
:class:`~repro.sim.scheduler.Simulator` and returns an outcome carrying the
specification verdict, the ground truth and the cost metrics.

The historical entry points ``repro.bench.runner.run_query`` and
``repro.bench.runner.run_gossip`` remain as compatibility shims re-exporting
this module; new code should orchestrate trials through
:mod:`repro.engine.plan` and :mod:`repro.engine.executor` instead of calling
these functions in a loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.analysis.metrics import message_cost, relative_error
from repro.churn.models import ChurnModel
from repro.churn.spec import ChurnSpec, resolve_churn
from repro.core.aggregates import Aggregate, by_name
from repro.core.dissemination_spec import (
    BroadcastRecord,
    DisseminationSpec,
    DisseminationVerdict,
    extract_broadcasts,
)
from repro.core.runs import Run
from repro.core.spec import OneTimeQuerySpec, QueryRecord, Verdict, extract_queries
from repro.faults.injector import install_plan
from repro.faults.spec import FaultPlan
from repro.obs.check import CheckingSink
from repro.obs.sinks import MemorySink, TraceSink, make_sink
from repro.protocols.base import QueryResult
from repro.protocols.dissemination import AntiEntropyNode, FloodNode
from repro.protocols.ft_wave import FaultTolerantWaveNode
from repro.protocols.gossip import PushSumNode
from repro.protocols.one_time_query import WaveNode
from repro.protocols.request_collect import RequestCollectNode
from repro.resilience.degradation import CoverageReport
from repro.resilience.spec import ResilienceSpec
from repro.resilience.transport import install_resilience
from repro.sim import trace as tr
from repro.sim.errors import ConfigurationError
from repro.sim.latency import BernoulliLoss, DelayModel, UniformDelay
from repro.sim.network import Network
from repro.sim.node import Process
from repro.sim.scheduler import Simulator
from repro.topology import generators
from repro.topology.graph import Topology

#: Builds a churn model from a process factory (the runner owns the factory
#: so arrivals get fresh values).
ChurnBuilder = Callable[[Callable[[], Process]], ChurnModel]

#: Population size at which an in-memory trace sink becomes a memory
#: hazard: a 10⁴-entity trial records millions of TraceEvents, and the
#: MemorySink keeps every one.  Above this, trials warn (once per process)
#: and the CLI defaults sweeps to the ``"counts"`` sink instead.
LARGE_TRIAL_THRESHOLD = 10_000

_warned_memory_sink_scale = False


def _warn_memory_sink_at_scale(n: int) -> None:
    """One-time warning for in-memory tracing at 10⁴⁺ entities."""
    global _warned_memory_sink_scale
    if _warned_memory_sink_scale:
        return
    _warned_memory_sink_scale = True
    import warnings

    warnings.warn(
        f"in-memory trace sink with n={n} >= {LARGE_TRIAL_THRESHOLD}: every "
        "trace event is retained, which dominates memory at this scale. "
        "Use trace_sink='counts' (kind counters only) or 'null' for large "
        "runs; 'repro sweep' already defaults to 'counts' at this size.",
        ResourceWarning,
        stacklevel=3,
    )


def _make_simulator(config: Any, **kwargs: Any) -> Simulator:
    """Construct the trial simulator with the configured trace sink.

    ``config.trace_sink`` is a sink name (see
    :data:`repro.obs.sinks.SINK_NAMES`) or a prebuilt
    :class:`~repro.obs.sinks.TraceSink`; ``config.trace_path`` supplies the
    output file for the ``"jsonl"`` sink.  With ``config.check_invariants``
    the sink is wrapped in a :class:`~repro.obs.check.CheckingSink`, so the
    four trace invariants are verified online and any violations are
    counted under ``check.violations`` in the trial's metrics block.

    Large populations (``n >=`` :data:`LARGE_TRIAL_THRESHOLD`) with the
    default in-memory sink trigger a one-time :class:`ResourceWarning` —
    the run still proceeds, but peak memory will be dominated by retained
    trace events.
    """
    sink = make_sink(config.trace_sink, path=config.trace_path)
    if isinstance(sink, MemorySink):
        n = getattr(config, "n", 0)
        if isinstance(n, int) and n >= LARGE_TRIAL_THRESHOLD:
            _warn_memory_sink_at_scale(n)
    if getattr(config, "check_invariants", False):
        sink = CheckingSink(sink)
    return Simulator(seed=config.seed, trace_sink=sink, **kwargs)


@dataclass
class QueryConfig:
    """A complete one-time-query scenario.

    Attributes:
        n: initial population size.
        topology: a family name from :data:`repro.topology.generators.FAMILIES`
            or a prebuilt :class:`Topology` over nodes ``0..n-1``.
        protocol: ``"wave"`` (flooding echo), ``"ft_wave"`` (wave with a
            heartbeat detector; use with ``notify_leaves=False``) or
            ``"request_collect"`` (complete-knowledge baseline; forces a
            complete network).
        aggregate: aggregate name (``COUNT``/``SUM``/``AVG``/``MIN``/``MAX``/``SET``).
        ttl: wave hop budget; ``None`` selects echo mode.
        deadline: querier time budget for a partial return.
        query_at: simulation time at which the query is issued.
        horizon: run the simulation until this time.
        seed: root seed for all randomness.
        delay: message delay model (default uniform [0.5, 1.5]).
        loss_rate: Bernoulli message loss probability.
        churn: optional churn — a declarative (picklable)
            :class:`~repro.churn.spec.ChurnSpec`, or the legacy builder
            callable receiving the process factory.
        churn_stop: freeze churn at this time (finite-arrival phases).
        faults: optional fault plan — a declarative (picklable)
            :class:`~repro.faults.spec.FaultPlan` or a builtin preset name
            (see :data:`repro.faults.presets.FAULT_PRESETS`).  ``None`` and
            ``FaultPlan.none()`` install nothing and are byte-identical.
        resilience: optional recovery layer — a declarative (picklable)
            :class:`~repro.resilience.spec.ResilienceSpec` or a builtin
            preset name (see
            :data:`repro.resilience.presets.RESILIENCE_PRESETS`).  ``None``
            and a disabled spec install nothing and are byte-identical.
        trace_sink: transport-event sink — a name from
            :data:`repro.obs.sinks.SINK_NAMES` (``"memory"``/``"jsonl"``/
            ``"null"``/``"counts"``) or a prebuilt sink instance.
            Membership and protocol-milestone events are always retained
            in memory, so verdicts and documents are identical under every
            sink.
        trace_path: output file for the ``"jsonl"`` sink.
        check_invariants: verify the four trace invariants online (see
            :mod:`repro.obs.check`); violations are counted under
            ``check.violations`` in the trial's metrics block.
        value_of: maps an arrival index (0-based, initial population first)
            to the entity's local value.  Default: ``float(index)``.
        protect_querier: exempt the querier from random victim selection.
        notify_leaves: if ``False`` departures are silent (no perfect
            failure detection; pair with ``protocol="ft_wave"``).
        detector_timeout: heartbeat suspicion threshold for ``ft_wave``.
    """

    n: int = 32
    topology: str | Topology = "er"
    protocol: str = "wave"
    aggregate: str = "SUM"
    ttl: int | None = None
    deadline: float | None = None
    query_at: float = 5.0
    horizon: float = 500.0
    seed: int = 0
    delay: DelayModel | None = None
    loss_rate: float = 0.0
    churn: ChurnSpec | ChurnBuilder | None = None
    churn_stop: float | None = None
    faults: FaultPlan | str | None = None
    resilience: ResilienceSpec | str | None = None
    value_of: Callable[[int], Any] = field(default=float)
    protect_querier: bool = True
    notify_leaves: bool = True
    detector_timeout: float = 3.0
    trace_sink: str | TraceSink = "memory"
    trace_path: str | None = None
    check_invariants: bool = False

    def aggregate_obj(self) -> Aggregate:
        return by_name(self.aggregate)


@dataclass
class QueryOutcome:
    """Everything measured about one scenario execution."""

    config: QueryConfig
    verdict: Verdict
    record: QueryRecord
    local_result: QueryResult | None
    truth: Any
    error: float
    messages: int
    run: Run
    trace: tr.TraceLog
    querier: int
    reachable_at_issue: frozenset[int]
    events_executed: int = 0
    metrics: dict[str, Any] = field(default_factory=dict)
    #: Set when a resilience layer with ``partial_results`` ran: the
    #: explicit statement of what the (possibly partial) answer covers.
    coverage_report: CoverageReport | None = None

    @property
    def terminated(self) -> bool:
        return self.verdict.terminated

    @property
    def completeness(self) -> float:
        return self.verdict.completeness_ratio

    @property
    def latency(self) -> float:
        if self.record.return_time is None:
            return float("inf")
        return self.record.return_time - self.record.issue_time

    @property
    def ok(self) -> bool:
        return self.verdict.ok


def reachable_now(network: Network, start: int) -> frozenset[int]:
    """BFS over the *current* communication graph from ``start``."""
    if not network.is_present(start):
        return frozenset()
    seen = {start}
    frontier = [start]
    while frontier:
        node = frontier.pop()
        for nbr in network.neighbors(node):
            if nbr not in seen:
                seen.add(nbr)
                frontier.append(nbr)
    return frozenset(seen)


def build_population(
    sim: Simulator,
    config: QueryConfig,
    factory: Callable[[], Process],
) -> list[int]:
    """Spawn the initial population wired per the configured topology."""
    if isinstance(config.topology, Topology):
        topo = config.topology
        if sorted(topo.nodes()) != list(range(config.n)):
            raise ConfigurationError(
                "prebuilt topology must cover nodes 0..n-1 exactly"
            )
    else:
        topo = generators.make(config.topology, config.n, sim.rng_for("topology"))
    pids: list[int] = []
    for node in range(config.n):
        neighbors = [p for p in topo.neighbors(node) if p < node]
        if sim.network.complete:
            neighbors = []
        proc = sim.spawn(factory(), neighbors)
        pids.append(proc.pid)
    return pids


def run_query(config: QueryConfig) -> QueryOutcome:
    """Execute a scenario end to end and check it against the spec."""
    if config.protocol not in ("wave", "ft_wave", "request_collect"):
        raise ConfigurationError(
            f"unknown protocol {config.protocol!r}; use 'wave', 'ft_wave' "
            "or 'request_collect'"
        )
    complete = config.protocol == "request_collect"
    sim = _make_simulator(
        config,
        delay_model=config.delay or UniformDelay(),
        loss_model=BernoulliLoss(config.loss_rate) if config.loss_rate else None,
        complete=complete,
        notify_leaves=config.notify_leaves,
    )

    arrival_index = [0]

    def factory() -> Process:
        value = config.value_of(arrival_index[0])
        arrival_index[0] += 1
        if complete:
            return RequestCollectNode(value)
        if config.protocol == "ft_wave":
            return FaultTolerantWaveNode(
                value, period=1.0, timeout=config.detector_timeout
            )
        return WaveNode(value)

    pids = build_population(sim, config, factory)
    querier_pid = pids[0]

    churn_model: ChurnModel | None = None
    churn_builder = resolve_churn(config.churn)
    if churn_builder is not None:
        churn_model = churn_builder(factory)
        if config.protect_querier:
            churn_model.immortal.add(querier_pid)
        churn_model.install(sim, stop_at=config.churn_stop)

    install_plan(
        config.faults, sim, factory=factory,
        protected=(querier_pid,) if config.protect_querier else (),
    )
    transport = install_resilience(config.resilience, sim)

    issue_state: dict[str, Any] = {"reachable": frozenset(), "issued": False}

    def issue() -> None:
        if not sim.network.is_present(querier_pid):
            return  # the querier died before the query; outcome: no query
        issue_state["reachable"] = reachable_now(sim.network, querier_pid)
        issue_state["issued"] = True
        querier = sim.network.process(querier_pid)
        if complete:
            assert isinstance(querier, RequestCollectNode)
            querier.issue_query(config.aggregate_obj(), deadline=config.deadline)
        else:
            assert isinstance(querier, WaveNode)
            querier.issue_query(
                config.aggregate_obj(), ttl=config.ttl, deadline=config.deadline
            )

    sim.at(config.query_at, issue, label="experiment:issue-query")
    with sim.metrics.timer("simulate"):
        sim.run(until=config.horizon)

    trace = sim.trace
    trace.close()
    with sim.metrics.timer("check"):
        run = Run.from_trace(trace, horizon=max(sim.now, config.horizon))
        records = extract_queries(trace)
        if not records:
            # The querier never got to ask (it left first); report a vacuous
            # non-terminating record so callers can count the failure.
            record = QueryRecord(
                qid=-1,
                querier=querier_pid,
                aggregate=config.aggregate,
                issue_time=config.query_at,
                return_time=None,
            )
        else:
            record = records[0]

        spec = OneTimeQuerySpec(restrict_core_to=issue_state["reachable"] or None)
        verdict = spec.check_query(trace, record, run)

        truth, error = _ground_truth(
            config, run, trace, record, issue_state["reachable"]
        )

    coverage_report = None
    if (
        transport is not None
        and transport.spec.partial_results
        and issue_state["issued"]
    ):
        coverage_report = CoverageReport.from_query(
            trace, record, issue_state["reachable"]
        )

    querier_proc = (
        sim.network.process(querier_pid)
        if sim.network.is_present(querier_pid)
        else None
    )
    local_result = None
    if querier_proc is not None and getattr(querier_proc, "results", None):
        local_result = querier_proc.results[0]

    return QueryOutcome(
        config=config,
        verdict=verdict,
        record=record,
        local_result=local_result,
        truth=truth,
        error=error,
        messages=message_cost(trace),
        run=run,
        trace=trace,
        querier=querier_pid,
        reachable_at_issue=issue_state["reachable"],
        events_executed=sim.events_executed,
        metrics=sim.metrics_snapshot(include_timing=True),
        coverage_report=coverage_report,
    )


def _ground_truth(
    config: QueryConfig,
    run: Run,
    trace: tr.TraceLog,
    record: QueryRecord,
    reachable: frozenset[int],
) -> tuple[Any, float]:
    """The aggregate over the obligation set, and the relative error.

    The obligation set is the stable core of the query window intersected
    with the entities reachable from the querier at issue time — exactly
    what the specification's validity clause requires of any protocol.
    """
    values = {
        event["entity"]: event.get("value") for event in trace.events(tr.JOIN)
    }
    window_end = record.return_time if record.return_time is not None else run.horizon
    obligation = run.stable_core(record.issue_time, window_end)
    if reachable:
        obligation &= reachable
    if not obligation:
        return None, float("inf")
    aggregate = config.aggregate_obj()
    truth = aggregate.of(values[pid] for pid in sorted(obligation))
    if record.result is None:
        return truth, float("inf")
    if isinstance(truth, (int, float)) and isinstance(record.result, (int, float)):
        return truth, relative_error(float(record.result), float(truth))
    # Set-valued aggregates: Jaccard distance as the error measure.
    if isinstance(truth, frozenset) and isinstance(record.result, frozenset):
        union = truth | record.result
        if not union:
            return truth, 0.0
        return truth, 1.0 - len(truth & record.result) / len(union)
    return truth, 0.0 if truth == record.result else 1.0


# ----------------------------------------------------------------------
# Gossip scenarios
# ----------------------------------------------------------------------


@dataclass
class GossipConfig:
    """A push-sum estimation scenario.

    ``mode`` is ``"avg"`` (every node weight 1; estimate of the mean value)
    or ``"count"`` (one seeded weight; estimate of the population size).
    """

    n: int = 32
    topology: str | Topology = "er"
    mode: str = "avg"
    rounds: int = 40
    period: float = 1.0
    seed: int = 0
    delay: DelayModel | None = None
    churn: ChurnSpec | ChurnBuilder | None = None
    faults: FaultPlan | str | None = None
    resilience: ResilienceSpec | str | None = None
    value_of: Callable[[int], float] = field(default=float)
    protect_reader: bool = True
    trace_sink: str | TraceSink = "memory"
    trace_path: str | None = None
    check_invariants: bool = False


@dataclass
class GossipOutcome:
    """Result of a gossip scenario."""

    config: GossipConfig
    estimate: float
    truth: float
    error: float
    messages: int
    run: Run
    trace: tr.TraceLog
    read_time: float
    events_executed: int = 0
    metrics: dict[str, Any] = field(default_factory=dict)


def run_gossip(config: GossipConfig) -> GossipOutcome:
    """Execute a push-sum scenario and measure estimate accuracy."""
    if config.mode not in ("avg", "count"):
        raise ConfigurationError(f"unknown gossip mode {config.mode!r}")
    sim = _make_simulator(config, delay_model=config.delay or UniformDelay())

    arrival_index = [0]

    def factory() -> Process:
        index = arrival_index[0]
        arrival_index[0] += 1
        if config.mode == "avg":
            return PushSumNode(
                value=config.value_of(index), weight=1.0, period=config.period
            )
        # count mode: the seed node (index 0) carries the unit weight.
        return PushSumNode(
            value=1.0, weight=1.0 if index == 0 else 0.0, period=config.period
        )

    query_config = QueryConfig(n=config.n, topology=config.topology, seed=config.seed)
    pids = build_population(sim, query_config, factory)
    reader_pid = pids[0]

    churn_builder = resolve_churn(config.churn)
    if churn_builder is not None:
        model = churn_builder(factory)
        if config.protect_reader:
            model.immortal.add(reader_pid)
        model.install(sim)

    install_plan(
        config.faults, sim, factory=factory,
        protected=(reader_pid,) if config.protect_reader else (),
    )
    install_resilience(config.resilience, sim)

    read_time = config.rounds * config.period
    state: dict[str, float] = {"estimate": float("nan"), "truth": float("nan")}

    def read() -> None:
        if not sim.network.is_present(reader_pid):
            return
        node = sim.network.process(reader_pid)
        assert isinstance(node, PushSumNode)
        state["estimate"] = node.read_estimate()
        present = sim.network.present()
        if config.mode == "count":
            state["truth"] = float(len(present))
        else:
            values = [
                float(sim.network.process(pid).value) for pid in sorted(present)
            ]
            state["truth"] = sum(values) / len(values) if values else float("nan")

    sim.at(read_time, read, label="experiment:read-estimate")
    with sim.metrics.timer("simulate"):
        sim.run(until=read_time + 2 * config.period)

    sim.trace.close()
    with sim.metrics.timer("check"):
        run = Run.from_trace(sim.trace, horizon=sim.now)
    estimate = state["estimate"]
    return GossipOutcome(
        config=config,
        estimate=estimate,
        truth=state["truth"],
        error=relative_error(estimate, state["truth"]),
        messages=message_cost(sim.trace),
        run=run,
        trace=sim.trace,
        read_time=read_time,
        events_executed=sim.events_executed,
        metrics=sim.metrics_snapshot(include_timing=True),
    )


# ----------------------------------------------------------------------
# Dissemination scenarios
# ----------------------------------------------------------------------


@dataclass
class DisseminationConfig:
    """A complete dissemination scenario.

    Attributes:
        n: initial population size.
        topology: a generator family name or a prebuilt topology.
        protocol: ``"flood"`` (one-shot) or ``"anti_entropy"`` (repairing).
        broadcast_at: when the origin publishes its value.
        audit_at: when coverage is measured.
        ae_period: reconciliation period for anti-entropy.
        seed, delay, churn: as in :class:`QueryConfig`.
        protect_origin: exempt the origin from random victim selection.
    """

    n: int = 24
    topology: str | Topology = "er"
    protocol: str = "anti_entropy"
    broadcast_at: float = 10.0
    audit_at: float = 80.0
    ae_period: float = 2.0
    seed: int = 0
    delay: DelayModel | None = None
    churn: ChurnSpec | ChurnBuilder | None = None
    faults: FaultPlan | str | None = None
    resilience: ResilienceSpec | str | None = None
    protect_origin: bool = True
    value: object = "payload"
    trace_sink: str | TraceSink = "memory"
    trace_path: str | None = None
    check_invariants: bool = False


@dataclass
class DisseminationOutcome:
    """Everything measured about one dissemination scenario."""

    config: DisseminationConfig
    verdict: DisseminationVerdict
    record: BroadcastRecord
    messages: int
    run: Run
    trace: tr.TraceLog
    origin: int
    events_executed: int = 0
    metrics: dict[str, Any] = field(default_factory=dict)

    @property
    def coverage(self) -> float:
        return self.verdict.coverage

    @property
    def population_coverage(self) -> float:
        return self.verdict.population_coverage

    @property
    def ok(self) -> bool:
        return self.verdict.ok


def run_dissemination(config: DisseminationConfig) -> DisseminationOutcome:
    """Execute a dissemination scenario end to end and audit it."""
    if config.protocol not in ("flood", "anti_entropy"):
        raise ConfigurationError(
            f"unknown protocol {config.protocol!r}; use 'flood' or "
            "'anti_entropy'"
        )
    if config.audit_at <= config.broadcast_at:
        raise ConfigurationError(
            f"audit time {config.audit_at} must follow broadcast time "
            f"{config.broadcast_at}"
        )
    sim = _make_simulator(config, delay_model=config.delay or UniformDelay())

    def factory():
        if config.protocol == "flood":
            return FloodNode(1.0)
        return AntiEntropyNode(1.0, period=config.ae_period)

    if isinstance(config.topology, Topology):
        topo = config.topology
    else:
        topo = generators.make(config.topology, config.n, sim.rng_for("topology"))
    pids = []
    for node in sorted(topo.nodes()):
        neighbors = [p for p in topo.neighbors(node) if p < node]
        pids.append(sim.spawn(factory(), neighbors).pid)
    origin_pid = pids[0]

    churn_builder = resolve_churn(config.churn)
    if churn_builder is not None:
        model = churn_builder(factory)
        if config.protect_origin:
            model.immortal.add(origin_pid)
        model.install(sim)

    install_plan(
        config.faults, sim, factory=factory,
        protected=(origin_pid,) if config.protect_origin else (),
    )
    install_resilience(config.resilience, sim)

    def publish() -> None:
        if sim.network.is_present(origin_pid):
            sim.network.process(origin_pid).broadcast_value(config.value)

    sim.at(config.broadcast_at, publish, label="experiment:broadcast")
    with sim.metrics.timer("simulate"):
        sim.run(until=config.audit_at)

    sim.trace.close()
    records = extract_broadcasts(sim.trace)
    if not records:
        raise ConfigurationError(
            "the broadcast never happened (origin departed first?)"
        )
    record = records[0]
    with sim.metrics.timer("check"):
        run = Run.from_trace(sim.trace, horizon=config.audit_at)
        verdict = DisseminationSpec().check_broadcast(
            sim.trace, record, at=config.audit_at, run=run
        )
    return DisseminationOutcome(
        config=config,
        verdict=verdict,
        record=record,
        messages=message_cost(sim.trace),
        run=run,
        trace=sim.trace,
        origin=origin_pid,
        events_executed=sim.events_executed,
        metrics=sim.metrics_snapshot(include_timing=True),
    )
