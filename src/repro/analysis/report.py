"""One-command experiment report.

:func:`build_report` runs a compact battery over the definition space — the
solvability matrix, a churn sweep for the wave protocol, and the
wave-vs-gossip accuracy comparison — and renders a self-contained markdown
report.  The CLI exposes it as ``python -m repro report``.
"""

from __future__ import annotations

from repro.analysis.tables import render_matrix, render_table
from repro.engine.trials import GossipConfig, QueryConfig, run_gossip, run_query
from repro.bench.sweep import sweep
from repro.churn.models import ReplacementChurn
from repro.core.classes import standard_lattice
from repro.core.solvability import Solvable, solvability_matrix
from repro.sim.rng import iter_seeds

_SYMBOL = {Solvable.YES: "yes", Solvable.CONDITIONAL: "cond", Solvable.NO: "NO"}


def _matrix_section() -> str:
    matrix = solvability_matrix(standard_lattice())
    rows: list[str] = []
    cols: list[str] = []
    cells = {}
    for system, result in matrix.items():
        row, col = str(system.arrival), str(system.knowledge)
        if row not in rows:
            rows.append(row)
        if col not in cols:
            cols.append(col)
        cells[(row, col)] = _SYMBOL[result.answer]
    table = render_matrix(rows, cols, cells, corner="arrival \\ knowledge")
    return (
        "## Solvability of the one-time query\n\n"
        "```\n" + table + "\n```\n"
    )


def _churn_section(n: int, trials: int, seed: int) -> str:
    rates = [0.0, 0.5, 2.0, 8.0]

    def trial(rate: float, trial_seed: int):
        churn = (
            (lambda f: ReplacementChurn(f, rate=rate)) if rate > 0 else None
        )
        return run_query(QueryConfig(
            n=n, topology="er", aggregate="COUNT", seed=trial_seed,
            horizon=250.0, churn=churn,
        ))

    points = sweep(rates, trial, trials=trials, root_seed=seed)
    rows = [
        [
            point.parameter,
            point.metric(lambda o: o.completeness).mean,
            point.fraction(lambda o: o.completeness == 1.0),
            point.metric(lambda o: float(o.messages)).mean,
        ]
        for point in points
    ]
    table = render_table(
        ["churn_rate", "completeness", "fully_complete", "messages"], rows
    )
    return (
        f"## Wave completeness vs churn (n={n}, {trials} trials/point)\n\n"
        "```\n" + table + "\n```\n"
    )


def _gossip_section(n: int, trials: int, seed: int) -> str:
    rows = []
    for rate in (0.0, 2.0):
        churn = (
            (lambda f, r=rate: ReplacementChurn(f, rate=r)) if rate > 0 else None
        )
        wave_errors, gossip_errors = [], []
        for trial_seed in iter_seeds(seed, trials):
            wave = run_query(QueryConfig(
                n=n, topology="er", aggregate="AVG", seed=trial_seed,
                horizon=250.0, churn=churn,
            ))
            wave_errors.append(wave.error if wave.terminated else float("inf"))
            gossip = run_gossip(GossipConfig(
                n=n, topology="er", mode="avg", rounds=50, seed=trial_seed,
                churn=churn,
            ))
            gossip_errors.append(gossip.error)
        rows.append([
            rate,
            sum(wave_errors) / trials,
            sum(gossip_errors) / trials,
        ])
    table = render_table(
        ["churn_rate", "wave_rel_error", "gossip_rel_error"], rows
    )
    return (
        f"## Wave vs push-sum gossip, AVG aggregate (n={n})\n\n"
        "```\n" + table + "\n```\n"
    )


def build_report(n: int = 24, trials: int = 3, seed: int = 2007) -> str:
    """Run the battery and return the markdown report."""
    sections = [
        "# Dynamic distributed systems — experiment report\n",
        f"Configuration: n={n}, trials={trials}, root seed={seed}. "
        "All results are deterministic given the seed.\n",
        _matrix_section(),
        _churn_section(n, trials, seed),
        _gossip_section(n, trials, seed),
        "## Interpretation\n\n"
        "The matrix is the paper's landscape; the churn sweep realises its "
        "conditional entries (completeness decays as churn outruns the "
        "wave); the gossip comparison shows the exact-vs-graceful trade "
        "between protocol families.\n",
    ]
    return "\n".join(sections)
