"""ASCII table rendering for benchmark output.

The benchmark harness prints the rows/series each experiment reports in the
same shape a paper table would have; these helpers keep that output aligned
and consistent.
"""

from __future__ import annotations

from typing import Any, Sequence


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == float("inf"):
            return "inf"
        if value == float("-inf"):
            return "-inf"
        if value == int(value) and abs(value) < 1e15:
            return f"{value:.1f}"
        return f"{value:.4g}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table.

    >>> print(render_table(["a", "b"], [[1, 2.5]]))
    a | b
    --+----
    1 | 2.5
    """
    cells = [[_format_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip())
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return "\n".join(lines)


def render_matrix(
    row_labels: Sequence[str],
    col_labels: Sequence[str],
    values: dict[tuple[str, str], Any],
    corner: str = "",
    title: str | None = None,
) -> str:
    """Render a labelled 2-D matrix (rows x columns)."""
    headers = [corner, *col_labels]
    rows = [
        [row, *[values.get((row, col), "") for col in col_labels]]
        for row in row_labels
    ]
    return render_table(headers, rows, title=title)


#: Default summary columns pulled from an engine result document.
DEFAULT_RESULT_COLUMNS = (
    "trials", "completeness", "fully_complete", "ok", "messages", "latency",
)


def render_result_document(
    document: dict[str, Any],
    columns: Sequence[str] | None = None,
    title: str | None = None,
) -> str:
    """Render a ``repro.engine.results`` JSON document as a summary table.

    One row per grid point; the point coordinates become the leading
    columns and ``columns`` names the per-point summary fields to show
    (see :func:`repro.engine.results.summarize_point` for what exists).
    """
    points = document.get("points", [])
    summary_columns = list(columns if columns is not None else DEFAULT_RESULT_COLUMNS)
    point_keys: list[str] = []
    for entry in points:
        for key in entry.get("point", {}):
            if key not in point_keys:
                point_keys.append(key)
    headers = [*point_keys, *summary_columns]
    rows = []
    for entry in points:
        point = entry.get("point", {})
        summary = entry.get("summary", {})
        rows.append([
            *[point.get(key, "") for key in point_keys],
            *[summary.get(column, "") for column in summary_columns],
        ])
    if title is None:
        title = str(document.get("plan", {}).get("name", "")) or None
    return render_table(headers, rows, title=title)
