"""Small statistics toolkit for experiment results.

Trial outcomes are floats; experiments repeat trials over independent seeds
and report a :class:`Summary` (mean, spread, confidence interval).  Only the
standard library and optional :mod:`math` are used so the analysis layer
stays dependency-light.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Sequence

#: Bootstrap interval constructions understood by :func:`bootstrap_mean_ci`.
BOOTSTRAP_METHODS = ("percentile", "bca")


@dataclass(frozen=True)
class Summary:
    """Descriptive statistics of one metric over repeated trials."""

    count: int
    mean: float
    stddev: float
    minimum: float
    maximum: float
    ci_low: float
    ci_high: float

    def __str__(self) -> str:
        return (
            f"{self.mean:.4g} ± {(self.ci_high - self.ci_low) / 2:.2g} "
            f"[{self.minimum:.4g}, {self.maximum:.4g}] (n={self.count})"
        )


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; raises on empty input."""
    if not values:
        raise ValueError("mean of no values")
    return sum(values) / len(values)


def variance(values: Sequence[float]) -> float:
    """Unbiased sample variance (0.0 for a single value)."""
    if not values:
        raise ValueError("variance of no values")
    if len(values) == 1:
        return 0.0
    m = mean(values)
    return sum((v - m) ** 2 for v in values) / (len(values) - 1)


def stddev(values: Sequence[float]) -> float:
    """Sample standard deviation."""
    return math.sqrt(variance(values))


def sem(values: Sequence[float]) -> float:
    """Standard error of the mean."""
    if not values:
        raise ValueError("sem of no values")
    return stddev(values) / math.sqrt(len(values))


def quantile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated quantile, ``q`` in [0, 1]."""
    if not values:
        raise ValueError("quantile of no values")
    if not 0 <= q <= 1:
        raise ValueError(f"q must be in [0, 1], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    low = int(math.floor(position))
    high = int(math.ceil(position))
    if low == high or ordered[low] == ordered[high]:
        # The equal-values case also dodges denormal rounding noise in the
        # interpolation below.
        return ordered[low]
    fraction = position - low
    return ordered[low] * (1 - fraction) + ordered[high] * fraction


def summarize(values: Sequence[float], confidence: float = 0.95) -> Summary:
    """Summary statistics with a normal-approximation confidence interval.

    For the small trial counts used here the normal approximation slightly
    understates the interval; the benchmark tables only need the order of
    magnitude of the spread.
    """
    if not values:
        raise ValueError("summarize of no values")
    m = mean(values)
    s = stddev(values)
    # Two-sided normal critical value via inverse error function.
    z = _z_value(confidence)
    half = z * s / math.sqrt(len(values))
    return Summary(
        count=len(values),
        mean=m,
        stddev=s,
        minimum=min(values),
        maximum=max(values),
        ci_low=m - half,
        ci_high=m + half,
    )


def _z_value(confidence: float) -> float:
    if not 0 < confidence < 1:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    # Inverse CDF of the standard normal at (1 + confidence) / 2 via
    # bisection on erf — no scipy dependency needed.
    target = confidence

    def erf_sym(z: float) -> float:
        return math.erf(z / math.sqrt(2))

    low, high = 0.0, 10.0
    for _ in range(80):
        mid = (low + high) / 2
        if erf_sym(mid) < target:
            low = mid
        else:
            high = mid
    return (low + high) / 2


def bootstrap_ci(
    values: Sequence[float],
    rng: random.Random,
    confidence: float = 0.95,
    resamples: int = 2000,
) -> tuple[float, float]:
    """Percentile bootstrap confidence interval for the mean."""
    if not values:
        raise ValueError("bootstrap of no values")
    means = []
    n = len(values)
    for _ in range(resamples):
        sample = [values[rng.randrange(n)] for _ in range(n)]
        means.append(sum(sample) / n)
    alpha = (1 - confidence) / 2
    return quantile(means, alpha), quantile(means, 1 - alpha)


def _norm_cdf(z: float) -> float:
    """Standard normal CDF."""
    return 0.5 * (1.0 + math.erf(z / math.sqrt(2)))


def _norm_ppf(p: float) -> float:
    """Standard normal inverse CDF via bisection on :func:`math.erf`.

    Same scipy-free idiom as :func:`_z_value`; ``p`` is clamped away from
    the endpoints so degenerate bootstrap distributions (every resample on
    one side of the point estimate) stay finite.
    """
    p = min(max(p, 1e-9), 1.0 - 1e-9)
    low, high = -10.0, 10.0
    for _ in range(80):
        mid = (low + high) / 2
        if _norm_cdf(mid) < p:
            low = mid
        else:
            high = mid
    return (low + high) / 2


@dataclass(frozen=True)
class BootstrapCI:
    """A bootstrap confidence interval for the mean of one sample.

    Deterministic: the interval is a pure function of ``(values, seed,
    confidence, resamples, method)``, so re-running a comparison reproduces
    the same bounds bit for bit.
    """

    low: float
    high: float
    point: float
    confidence: float
    resamples: int
    method: str
    n: int

    @property
    def width(self) -> float:
        return self.high - self.low

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high

    def __str__(self) -> str:
        return (
            f"{self.point:.4g} [{self.low:.4g}, {self.high:.4g}] "
            f"({self.confidence:.0%} {self.method}, B={self.resamples}, "
            f"n={self.n})"
        )


def bootstrap_mean_ci(
    values: Sequence[float],
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
    method: str = "percentile",
) -> BootstrapCI:
    """Bootstrap confidence interval for the mean, seeded and typed.

    ``method`` selects the interval construction: ``"percentile"`` (the
    empirical quantiles of the resampled means) or ``"bca"`` (bias-corrected
    and accelerated — the bias correction comes from the fraction of
    resampled means below the point estimate, the acceleration from the
    jackknife skewness; better coverage for skewed metrics at small n).
    A constant sample collapses the interval to the point estimate.
    """
    if not values:
        raise ValueError("bootstrap of no values")
    if not 0 < confidence < 1:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if resamples < 1:
        raise ValueError(f"resamples must be >= 1, got {resamples}")
    if method not in BOOTSTRAP_METHODS:
        raise ValueError(
            f"unknown bootstrap method {method!r}; use "
            f"{' or '.join(BOOTSTRAP_METHODS)}"
        )
    values = [float(v) for v in values]
    n = len(values)
    point = sum(values) / n

    def make(low: float, high: float) -> BootstrapCI:
        return BootstrapCI(
            low=low, high=high, point=point, confidence=confidence,
            resamples=resamples, method=method, n=n,
        )

    if min(values) == max(values):
        return make(point, point)
    rng = random.Random(seed)
    means = []
    for _ in range(resamples):
        sample = [values[rng.randrange(n)] for _ in range(n)]
        means.append(sum(sample) / n)
    alpha = (1 - confidence) / 2
    if method == "percentile":
        return make(quantile(means, alpha), quantile(means, 1 - alpha))
    # BCa: bias correction z0 from the bootstrap distribution's position
    # relative to the point estimate, acceleration a from the jackknife.
    below = sum(1 for m in means if m < point)
    ties = sum(1 for m in means if m == point)
    z0 = _norm_ppf((below + 0.5 * ties) / resamples)
    if n > 1:
        jack = [(point * n - v) / (n - 1) for v in values]
        jbar = sum(jack) / n
        num = sum((jbar - j) ** 3 for j in jack)
        den = sum((jbar - j) ** 2 for j in jack) ** 1.5
        accel = num / (6 * den) if den > 0 else 0.0
    else:
        accel = 0.0
    out: list[float] = []
    for a in (alpha, 1 - alpha):
        z = _norm_ppf(a)
        denom = 1 - accel * (z0 + z)
        if denom <= 0:
            # Extreme acceleration: fall back to the raw quantile rather
            # than extrapolate past the bootstrap distribution's support.
            out.append(quantile(means, a))
            continue
        out.append(quantile(means, _norm_cdf(z0 + (z0 + z) / denom)))
    return make(min(out), max(out))


def paired_differences(
    baseline: Mapping[Any, float], candidate: Mapping[Any, float]
) -> list[float]:
    """Per-key deltas ``candidate[k] - baseline[k]`` for paired samples.

    The pairing is a bijection on the key set (for engine documents the
    keys are trial seeds — the same-seed fan-out in both arms): both
    mappings must carry exactly the same keys, and the returned order is
    canonical (sorted by key repr), so any permutation of either input
    yields the identical list.
    """
    base_keys, cand_keys = set(baseline), set(candidate)
    if base_keys != cand_keys:
        only_base = sorted(map(repr, base_keys - cand_keys))
        only_cand = sorted(map(repr, cand_keys - base_keys))
        raise ValueError(
            "paired comparison needs the same keys in both arms; "
            f"baseline-only: {only_base}, candidate-only: {only_cand}"
        )
    return [
        float(candidate[key]) - float(baseline[key])
        for key in sorted(baseline, key=repr)
    ]


@dataclass(frozen=True)
class PairedComparison:
    """A paired-seed comparison of one metric across two arms."""

    n_pairs: int
    baseline_mean: float
    candidate_mean: float
    delta_mean: float
    ci: BootstrapCI

    @property
    def significant(self) -> bool:
        """The confidence interval for the mean delta excludes zero."""
        return not self.ci.contains(0.0)

    def __str__(self) -> str:
        verdict = "significant" if self.significant else "inconclusive"
        return (
            f"delta {self.delta_mean:+.4g} "
            f"[{self.ci.low:+.4g}, {self.ci.high:+.4g}] over "
            f"{self.n_pairs} pairs ({verdict})"
        )


def paired_seed_compare(
    baseline: Mapping[Any, float],
    candidate: Mapping[Any, float],
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
    method: str = "percentile",
) -> PairedComparison:
    """Paired bootstrap comparison of two same-seed arms.

    Pairs the two mappings by key (trial seed), bootstraps the mean of the
    per-seed deltas, and reports the comparison with its confidence
    interval; :attr:`PairedComparison.significant` is the CI-overlap
    verdict ``repro bench diff --bootstrap`` prints.
    """
    deltas = paired_differences(baseline, candidate)
    if not deltas:
        raise ValueError("paired comparison of no pairs")
    keys = sorted(baseline, key=repr)
    base_values = [float(baseline[key]) for key in keys]
    cand_values = [float(candidate[key]) for key in keys]
    ci = bootstrap_mean_ci(
        deltas, confidence=confidence, resamples=resamples, seed=seed,
        method=method,
    )
    return PairedComparison(
        n_pairs=len(deltas),
        baseline_mean=sum(base_values) / len(base_values),
        candidate_mean=sum(cand_values) / len(cand_values),
        delta_mean=sum(deltas) / len(deltas),
        ci=ci,
    )


def proportion(flags: Iterable[bool]) -> float:
    """Fraction of ``True`` among the flags; 0.0 for empty input."""
    flags = list(flags)
    if not flags:
        return 0.0
    return sum(1 for f in flags if f) / len(flags)
