"""Small statistics toolkit for experiment results.

Trial outcomes are floats; experiments repeat trials over independent seeds
and report a :class:`Summary` (mean, spread, confidence interval).  Only the
standard library and optional :mod:`math` are used so the analysis layer
stays dependency-light.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass(frozen=True)
class Summary:
    """Descriptive statistics of one metric over repeated trials."""

    count: int
    mean: float
    stddev: float
    minimum: float
    maximum: float
    ci_low: float
    ci_high: float

    def __str__(self) -> str:
        return (
            f"{self.mean:.4g} ± {(self.ci_high - self.ci_low) / 2:.2g} "
            f"[{self.minimum:.4g}, {self.maximum:.4g}] (n={self.count})"
        )


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; raises on empty input."""
    if not values:
        raise ValueError("mean of no values")
    return sum(values) / len(values)


def variance(values: Sequence[float]) -> float:
    """Unbiased sample variance (0.0 for a single value)."""
    if not values:
        raise ValueError("variance of no values")
    if len(values) == 1:
        return 0.0
    m = mean(values)
    return sum((v - m) ** 2 for v in values) / (len(values) - 1)


def stddev(values: Sequence[float]) -> float:
    """Sample standard deviation."""
    return math.sqrt(variance(values))


def sem(values: Sequence[float]) -> float:
    """Standard error of the mean."""
    if not values:
        raise ValueError("sem of no values")
    return stddev(values) / math.sqrt(len(values))


def quantile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated quantile, ``q`` in [0, 1]."""
    if not values:
        raise ValueError("quantile of no values")
    if not 0 <= q <= 1:
        raise ValueError(f"q must be in [0, 1], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    low = int(math.floor(position))
    high = int(math.ceil(position))
    if low == high or ordered[low] == ordered[high]:
        # The equal-values case also dodges denormal rounding noise in the
        # interpolation below.
        return ordered[low]
    fraction = position - low
    return ordered[low] * (1 - fraction) + ordered[high] * fraction


def summarize(values: Sequence[float], confidence: float = 0.95) -> Summary:
    """Summary statistics with a normal-approximation confidence interval.

    For the small trial counts used here the normal approximation slightly
    understates the interval; the benchmark tables only need the order of
    magnitude of the spread.
    """
    if not values:
        raise ValueError("summarize of no values")
    m = mean(values)
    s = stddev(values)
    # Two-sided normal critical value via inverse error function.
    z = _z_value(confidence)
    half = z * s / math.sqrt(len(values))
    return Summary(
        count=len(values),
        mean=m,
        stddev=s,
        minimum=min(values),
        maximum=max(values),
        ci_low=m - half,
        ci_high=m + half,
    )


def _z_value(confidence: float) -> float:
    if not 0 < confidence < 1:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    # Inverse CDF of the standard normal at (1 + confidence) / 2 via
    # bisection on erf — no scipy dependency needed.
    target = confidence

    def erf_sym(z: float) -> float:
        return math.erf(z / math.sqrt(2))

    low, high = 0.0, 10.0
    for _ in range(80):
        mid = (low + high) / 2
        if erf_sym(mid) < target:
            low = mid
        else:
            high = mid
    return (low + high) / 2


def bootstrap_ci(
    values: Sequence[float],
    rng: random.Random,
    confidence: float = 0.95,
    resamples: int = 2000,
) -> tuple[float, float]:
    """Percentile bootstrap confidence interval for the mean."""
    if not values:
        raise ValueError("bootstrap of no values")
    means = []
    n = len(values)
    for _ in range(resamples):
        sample = [values[rng.randrange(n)] for _ in range(n)]
        means.append(sum(sample) / n)
    alpha = (1 - confidence) / 2
    return quantile(means, alpha), quantile(means, 1 - alpha)


def proportion(flags: Iterable[bool]) -> float:
    """Fraction of ``True`` among the flags; 0.0 for empty input."""
    flags = list(flags)
    if not flags:
        return 0.0
    return sum(1 for f in flags if f) / len(flags)
