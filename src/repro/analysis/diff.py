"""Bench regression gate: compare two result documents metric by metric.

Every engine result document is deterministic for a fixed plan and root
seed (wall clock is quarantined), so a committed baseline document is an
exact fixture: re-running the same plan must reproduce its per-point
summaries within the configured per-metric relative thresholds, and any
drift beyond them is a behavioral regression the gate should catch before
merge.  ``repro bench diff`` (and the CI workflow, against
``benchmarks/BASELINE.json``) runs exactly this comparison and exits
non-zero on regression when ``--fail-on-regression`` is set.

Two input shapes are understood:

* **schema-v2 result documents** (``repro-engine-results``) — points are
  matched on their grid coordinates and each summary metric is compared
  with a direction (higher-better for ``ok``/``completeness``/
  ``fully_complete``, lower-better for ``error``/``latency``/``messages``
  and the deterministic ``events_executed``);
* **BENCH payloads** (``benchmarks/emit_bench.py`` output) — flat numeric
  fields; wall-clock fields get a generous lower-is-better threshold,
  deterministic totals are held to exact agreement by default.
"""

from __future__ import annotations

import json
import math
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping

from repro.analysis.stats import bootstrap_mean_ci, paired_differences
from repro.analysis.tables import render_table
from repro.engine.results import SCHEMA_NAME, load_document, validate_document
from repro.sim.errors import ConfigurationError

#: Default per-metric relative thresholds for result-document summaries:
#: ``(allowed relative worsening, higher_is_better)``.  The documents are
#: deterministic, so the defaults are tight; loosen per metric with
#: ``--metric name=rel`` when a plan intentionally changes.
DOCUMENT_THRESHOLDS: dict[str, tuple[float, bool]] = {
    "ok": (0.0, True),
    "completeness": (0.0, True),
    "fully_complete": (0.0, True),
    "error": (0.0, False),
    "latency": (0.0, False),
    "messages": (0.0, False),
    "events_executed": (0.0, False),
}

#: Default thresholds for BENCH payload scalars.  Wall-clock numbers are
#: machine noise, so they get room; deterministic totals do not.
BENCH_THRESHOLDS: dict[str, tuple[float, bool]] = {
    "serial_wall_s": (0.50, False),
    "parallel_wall_s": (0.50, False),
    "speedup": (0.50, True),
    "events_executed_total": (0.0, False),
}

#: Prefix/suffix rules for BENCH payload metrics with no exact entry above.
#: ``emit_scale.py`` emits one ``events_per_sec_n<N>`` / ``peak_rss_kb_n<N>``
#: pair per population size and ``emit_bench.py`` emits a
#: ``trials_per_sec_<backend>`` pair, so the gate matches metric
#: *families* by shape: throughput is higher-better, memory and wall time
#: lower-better, all with the 50% machine-noise slack.  Telemetry and
#: checkpoint overheads are same-box wall-time *ratios* (feature on /
#: feature off), so the machine noise largely cancels and the budget is
#: the tight 5% the observability and crash-safety contracts promise.
_BENCH_PREFIX_RULES: tuple[tuple[str, tuple[float, bool]], ...] = (
    ("events_per_sec", (0.50, True)),
    ("trials_per_sec", (0.50, True)),
    ("peak_rss", (0.50, False)),
    ("telemetry_overhead", (0.05, False)),
    ("checkpoint_overhead", (0.05, False)),
)


def _bench_rule(name: str) -> tuple[float, bool] | None:
    """The (threshold, higher_is_better) rule for a BENCH metric name,
    or ``None`` when the metric is not gated (plain descriptive fields
    like ``n`` or ``trials``)."""
    if name in BENCH_THRESHOLDS:
        return BENCH_THRESHOLDS[name]
    for prefix, rule in _BENCH_PREFIX_RULES:
        if name.startswith(prefix):
            return rule
    if name.endswith("_wall_s"):
        return (0.50, False)
    return None


@dataclass(frozen=True)
class MetricDiff:
    """One baseline-vs-candidate comparison of a single metric.

    When the comparison ran with ``bootstrap`` resamples, ``ci_low`` /
    ``ci_high`` bound the mean per-seed *worsening* (positive = candidate
    worse, same sign convention as ``rel_change``) and the regression
    verdict additionally requires the interval to exclude zero — point
    noise within the seed pairing can no longer flip the gate.
    """

    label: str
    metric: str
    baseline: float
    candidate: float
    rel_change: float  # positive = worse, in units of |baseline|
    threshold: float
    regressed: bool
    ci_low: float | None = None
    ci_high: float | None = None
    ci_confidence: float | None = None
    n_pairs: int | None = None

    @property
    def significant(self) -> bool:
        """The worsening CI excludes zero (only when bootstrapped)."""
        return self.ci_low is not None and self.ci_low > 0.0

    def __str__(self) -> str:
        flag = "REGRESSED" if self.regressed else "ok"
        ci = ""
        if self.ci_low is not None and self.ci_high is not None:
            ci = (
                f" delta CI [{self.ci_low:+g}, {self.ci_high:+g}]"
                f"@{self.ci_confidence:.0%}"
            )
        return (
            f"{self.label} {self.metric}: {self.baseline:g} -> "
            f"{self.candidate:g} ({self.rel_change:+.2%} vs "
            f"threshold {self.threshold:.2%}){ci} {flag}"
        )


@dataclass
class BenchDiff:
    """The full comparison: every metric at every matched point."""

    entries: list[MetricDiff] = field(default_factory=list)
    missing: list[str] = field(default_factory=list)  # baseline-only labels
    extra: list[str] = field(default_factory=list)    # candidate-only labels

    @property
    def regressions(self) -> list[MetricDiff]:
        return [entry for entry in self.entries if entry.regressed]

    @property
    def ok(self) -> bool:
        """No regressions and no baseline point missing from the candidate
        (new candidate-only points are fine — grids may grow)."""
        return not self.regressions and not self.missing

    @property
    def exit_code(self) -> int:
        """The gate's process exit code under ``--fail-on-regression``.

        ``0`` clean, ``1`` regression, ``2`` comparison-shape problems —
        a baseline point or gated metric missing (schema drift), which
        dominates because a drifted comparison proves nothing about
        performance either way.
        """
        if self.missing:
            return 2
        if self.regressions:
            return 1
        return 0

    def render(self, only_regressions: bool = False) -> str:
        """A human-readable comparison table."""
        rows = []
        shown = self.regressions if only_regressions else self.entries
        with_ci = any(entry.ci_low is not None for entry in shown)
        for entry in shown:
            row = [
                entry.label,
                entry.metric,
                f"{entry.baseline:g}",
                f"{entry.candidate:g}",
                f"{entry.rel_change:+.2%}",
            ]
            if with_ci:
                row.append(
                    f"[{entry.ci_low:+g}, {entry.ci_high:+g}]"
                    if entry.ci_low is not None else "-"
                )
            row.append("REGRESSED" if entry.regressed else "ok")
            rows.append(row)
        header = ["point", "metric", "baseline", "candidate", "change"]
        if with_ci:
            header.append("delta CI")
        header.append("verdict")
        table = render_table(
            header,
            rows,
            title=(f"bench diff: {len(self.entries)} comparisons, "
                   f"{len(self.regressions)} regression(s)"),
        )
        notes = []
        if self.missing:
            notes.append(
                f"baseline points missing from candidate: {self.missing}"
            )
        if self.extra:
            notes.append(f"candidate-only points (ignored): {self.extra}")
        return "\n".join([table] + notes)


def _relative_change(
    baseline: float, candidate: float, higher_is_better: bool
) -> float:
    """Signed relative worsening: positive means the candidate is worse."""
    worsening = baseline - candidate if higher_is_better else candidate - baseline
    if math.isnan(baseline) and math.isnan(candidate):
        return 0.0
    if math.isinf(baseline) and math.isinf(candidate) and baseline == candidate:
        return 0.0
    if not math.isfinite(baseline) or not math.isfinite(candidate):
        # One side finite, the other not: direction decides severity.
        return math.copysign(math.inf, worsening) if worsening != 0 else 0.0
    if baseline == 0.0:
        return 0.0 if worsening == 0.0 else math.copysign(math.inf, worsening)
    return worsening / abs(baseline)


def _compare(
    label: str,
    metric: str,
    baseline: float,
    candidate: float,
    threshold: float,
    higher_is_better: bool,
) -> MetricDiff:
    rel = _relative_change(baseline, candidate, higher_is_better)
    return MetricDiff(
        label=label,
        metric=metric,
        baseline=baseline,
        candidate=candidate,
        rel_change=rel,
        threshold=threshold,
        regressed=rel > threshold,
    )


#: Per-trial value of each summary metric, for seed-paired bootstraps.
#: Mirrors :func:`repro.engine.results.summarize_point` (``ok`` and
#: ``fully_complete`` are per-trial indicator variables whose means are
#: the summary fractions).
_TRIAL_EXTRACTORS: dict[str, Callable[[Mapping[str, Any]], float]] = {
    "ok": lambda t: 1.0 if t.get("ok") else 0.0,
    "completeness": lambda t: float(t.get("completeness", 0.0)),
    "fully_complete": lambda t: 1.0 if t.get("completeness") == 1.0 else 0.0,
    "error": lambda t: float(t.get("error", 0.0)),
    "latency": lambda t: float(t.get("latency", 0.0)),
    "messages": lambda t: float(t.get("messages", 0)),
    "events_executed": lambda t: float(t.get("events_executed", 0)),
}


def _ci_seed(label: str, metric: str) -> int:
    """Deterministic bootstrap seed per (point, metric) comparison."""
    return zlib.crc32(f"{label}|{metric}".encode("utf-8"))


def _paired_worsening(
    base_trials: list[Mapping[str, Any]],
    cand_trials: list[Mapping[str, Any]],
    metric: str,
    higher_is_better: bool,
    label: str,
) -> list[float]:
    """Per-seed worsening deltas (positive = candidate worse).

    Both arms of an engine comparison run the same plan, so trial ``t``
    of a point carries the same seed in both documents; the pairing keys
    on ``(trial, seed)`` and refuses mismatched arms — a comparison whose
    seed fan-outs differ is not the paired experiment the CI describes.
    """
    extract = _TRIAL_EXTRACTORS[metric]

    def keyed(trials: list[Mapping[str, Any]]) -> dict[tuple, float]:
        return {
            (int(t.get("trial", i)), int(t.get("seed", 0))): extract(t)
            for i, t in enumerate(trials)
        }

    try:
        deltas = paired_differences(keyed(base_trials), keyed(cand_trials))
    except ValueError as error:
        raise ConfigurationError(
            f"{label} {metric}: arms are not seed-paired — {error}"
        ) from None
    if higher_is_better:
        return [-d for d in deltas]
    return deltas


def _point_label(point: Mapping[str, Any]) -> str:
    if not point:
        return "(base)"
    return ",".join(f"{key}={point[key]}" for key in sorted(point))


def _merge_thresholds(
    defaults: dict[str, tuple[float, bool]],
    overrides: Mapping[str, float] | None,
) -> dict[str, tuple[float, bool]]:
    merged = dict(defaults)
    for name, rel in (overrides or {}).items():
        if rel < 0:
            raise ConfigurationError(
                f"threshold for {name!r} must be >= 0, got {rel}"
            )
        _, higher = merged.get(name, (0.0, False))
        merged[name] = (float(rel), higher)
    return merged


def diff_documents(
    baseline: Mapping[str, Any],
    candidate: Mapping[str, Any],
    thresholds: Mapping[str, float] | None = None,
    bootstrap: int = 0,
    confidence: float = 0.95,
) -> BenchDiff:
    """Compare two schema-versioned result documents point by point.

    ``thresholds`` overrides the allowed relative worsening per metric
    (direction stays as in :data:`DOCUMENT_THRESHOLDS`).  Baseline points
    absent from the candidate count against :attr:`BenchDiff.ok`;
    candidate-only points are reported but tolerated.

    With ``bootstrap`` > 0, every comparison also pairs the two arms'
    trials by seed, bootstraps the mean per-seed worsening with that many
    resamples (deterministically — the bootstrap seed is derived from the
    point label and metric name), and attaches the ``confidence`` interval
    to the entry.  The regression verdict then requires both the relative
    threshold *and* the interval to exclude zero, so a single noisy seed
    cannot fail the gate on its own.
    """
    validate_document(baseline)
    validate_document(candidate)
    merged = _merge_thresholds(DOCUMENT_THRESHOLDS, thresholds)
    if bootstrap < 0:
        raise ConfigurationError(
            f"bootstrap resamples must be >= 0, got {bootstrap}"
        )

    def summaries(
        doc: Mapping[str, Any],
    ) -> dict[tuple, tuple[str, Mapping[str, Any], list[Mapping[str, Any]]]]:
        out: dict[tuple, tuple[str, Mapping[str, Any], list[Mapping[str, Any]]]] = {}
        for entry in doc["points"]:
            point = entry["point"]
            key = tuple(sorted((str(k), repr(v)) for k, v in point.items()))
            out[key] = (
                _point_label(point),
                entry.get("summary", {}),
                entry.get("trials", []),
            )
        return out

    base_points = summaries(baseline)
    cand_points = summaries(candidate)
    diff = BenchDiff()
    diff.missing = [
        label for key, (label, _, _) in base_points.items()
        if key not in cand_points
    ]
    diff.extra = [
        label for key, (label, _, _) in cand_points.items()
        if key not in base_points
    ]
    for key, (label, base_summary, base_trials) in base_points.items():
        if key not in cand_points:
            continue
        _, cand_summary, cand_trials = cand_points[key]
        for metric, (threshold, higher) in merged.items():
            if metric not in base_summary or metric not in cand_summary:
                continue
            entry = _compare(
                label, metric,
                float(base_summary[metric]), float(cand_summary[metric]),
                threshold, higher,
            )
            if bootstrap and metric in _TRIAL_EXTRACTORS \
                    and base_trials and cand_trials:
                deltas = _paired_worsening(
                    base_trials, cand_trials, metric, higher, label,
                )
                ci = bootstrap_mean_ci(
                    deltas, confidence=confidence, resamples=bootstrap,
                    seed=_ci_seed(label, metric),
                )
                entry = MetricDiff(
                    label=entry.label,
                    metric=entry.metric,
                    baseline=entry.baseline,
                    candidate=entry.candidate,
                    rel_change=entry.rel_change,
                    threshold=entry.threshold,
                    regressed=entry.regressed and ci.low > 0.0,
                    ci_low=ci.low,
                    ci_high=ci.high,
                    ci_confidence=confidence,
                    n_pairs=ci.n,
                )
            diff.entries.append(entry)
    return diff


def diff_bench_payloads(
    baseline: Mapping[str, Any],
    candidate: Mapping[str, Any],
    thresholds: Mapping[str, float] | None = None,
) -> BenchDiff:
    """Compare two ``emit_bench.py`` payloads on their numeric scalars.

    Wall-clock fields use generous lower-is-better thresholds; the
    deterministic ``events_executed_total`` and every ``metrics_totals``
    counter are held to exact agreement unless overridden.  Metric
    *families* — ``events_per_sec_*`` (higher-better), ``peak_rss*`` and
    ``*_wall_s`` (lower-better) — are gated by shape, so scale-curve
    payloads with one entry per population size need no per-size
    configuration.  Metrics absent from either payload are skipped.
    """
    overrides = dict(thresholds or {})
    for name, rel in overrides.items():
        if rel < 0:
            raise ConfigurationError(
                f"threshold for {name!r} must be >= 0, got {rel}"
            )
    label = str(baseline.get("benchmark", "bench"))
    diff = BenchDiff()

    def numeric_names(payload: Mapping[str, Any]) -> set[str]:
        return {
            name for name, value in payload.items()
            if isinstance(value, (int, float)) and not isinstance(value, bool)
        }

    for metric in sorted(numeric_names(baseline) | numeric_names(candidate)):
        rule = _bench_rule(metric)
        if metric in overrides:
            # An override adjusts the slack; the direction still comes
            # from the rule (default lower-is-better for unknown names).
            rule = (overrides[metric], rule[1] if rule else False)
        if rule is None:
            continue
        if metric not in baseline:
            # A gated metric the candidate emits but the committed
            # baseline lacks is schema drift, not a perf verdict: the
            # gate cannot have been protecting it.  Surface it as
            # missing (exit code 2) instead of silently skipping.
            diff.missing.append(f"baseline:{metric}")
            continue
        if metric not in candidate:
            # Baseline-only gated metrics stay tolerated: smoke payloads
            # legitimately emit a subset of the committed curve (e.g. the
            # scale gate's per-size families).
            continue
        threshold, higher = rule
        diff.entries.append(_compare(
            label, metric,
            float(baseline[metric]), float(candidate[metric]),
            threshold, higher,
        ))
    base_totals = baseline.get("metrics_totals", {}) or {}
    cand_totals = candidate.get("metrics_totals", {}) or {}
    for name in sorted(base_totals):
        if name not in cand_totals:
            diff.missing.append(f"metrics_totals.{name}")
            continue
        threshold = overrides.get(f"metrics_totals.{name}", 0.0)
        higher = False
        diff.entries.append(_compare(
            label, f"metrics_totals.{name}",
            float(base_totals[name]), float(cand_totals[name]),
            threshold, higher,
        ))
    return diff


def load_comparable(path: str | Path) -> Mapping[str, Any]:
    """Load a JSON file the gate knows how to compare.

    Schema-versioned engine documents are validated (raising the typed
    :class:`~repro.engine.results.SchemaVersionError` on unknown
    versions); anything with a ``benchmark`` field is treated as an
    ``emit_bench.py`` payload.
    """
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        first_line = handle.readline()
        try:
            header = json.loads(first_line)
        except json.JSONDecodeError:
            header = None
        if isinstance(header, Mapping) and header.get("format") == "jsonl-stream":
            # A StreamingResultStore stream; load_document reassembles
            # the canonical document from it.
            return load_document(str(path))
        handle.seek(0)
        document = json.load(handle)
    if isinstance(document, Mapping) and document.get("schema") == SCHEMA_NAME:
        return load_document(str(path))
    if isinstance(document, Mapping) and "benchmark" in document:
        return document
    raise ConfigurationError(
        f"{path} is neither a {SCHEMA_NAME} document nor an emit_bench "
        "payload; nothing to compare"
    )


def diff_files(
    baseline_path: str | Path,
    candidate_path: str | Path,
    thresholds: Mapping[str, float] | None = None,
    bootstrap: int = 0,
    confidence: float = 0.95,
) -> BenchDiff:
    """Load two files (result documents or BENCH payloads) and diff them.

    ``bootstrap``/``confidence`` apply to result documents only (BENCH
    payloads are flat scalars with no per-trial samples to pair).
    """
    baseline = load_comparable(baseline_path)
    candidate = load_comparable(candidate_path)
    base_is_doc = baseline.get("schema") == SCHEMA_NAME
    cand_is_doc = candidate.get("schema") == SCHEMA_NAME
    if base_is_doc != cand_is_doc:
        raise ConfigurationError(
            "cannot compare a result document against a BENCH payload; "
            "pass two files of the same shape"
        )
    if base_is_doc:
        return diff_documents(
            baseline, candidate, thresholds,
            bootstrap=bootstrap, confidence=confidence,
        )
    return diff_bench_payloads(baseline, candidate, thresholds)
