"""Metrics computed over traces, runs and verdicts.

These are the columns of every experiment table: message cost, latency,
completeness, numeric accuracy, and population dynamics.
"""

from __future__ import annotations

import math

from repro.core.runs import Run
from repro.core.spec import Verdict
from repro.sim import trace as tr
from repro.sim.trace import TraceLog


def message_cost(log: TraceLog, kind: str | None = None) -> int:
    """Number of message sends (optionally of one protocol kind)."""
    if kind is None:
        return log.count(tr.SEND)
    return sum(1 for e in log.events(tr.SEND) if e["msg_kind"] == kind)


def message_cost_by_kind(log: TraceLog) -> dict[str, int]:
    """Histogram of message sends by protocol kind (descending count)."""
    counts: dict[str, int] = {}
    for event in log.events(tr.SEND):
        kind = event["msg_kind"]
        counts[kind] = counts.get(kind, 0) + 1
    return dict(sorted(counts.items(), key=lambda item: (-item[1], item[0])))


def delivery_ratio(log: TraceLog) -> float:
    """Delivered / sent (1.0 when nothing was sent)."""
    sent = log.count(tr.SEND)
    if sent == 0:
        return 1.0
    return log.count(tr.DELIVER) / sent


def drop_reasons(log: TraceLog) -> dict[str, int]:
    """Histogram of why messages were dropped."""
    reasons: dict[str, int] = {}
    for event in log.events(tr.DROP):
        reason = event.get("reason", "unknown")
        reasons[reason] = reasons.get(reason, 0) + 1
    return reasons


def relative_error(measured: float, truth: float) -> float:
    """|measured - truth| / |truth| (absolute error when truth == 0)."""
    if measured is None or (isinstance(measured, float) and math.isnan(measured)):
        return float("inf")
    if truth == 0:
        return abs(measured)
    return abs(measured - truth) / abs(truth)


def completeness(verdict: Verdict) -> float:
    """Stable-core coverage of a query verdict (1.0 for an empty core)."""
    return verdict.completeness_ratio


def population_series(run: Run, step: float = 1.0) -> list[tuple[float, int]]:
    """Sampled population size over the run's horizon."""
    if step <= 0:
        raise ValueError(f"step must be > 0, got {step}")
    series = []
    t = 0.0
    horizon = run.horizon
    while t <= horizon:
        series.append((t, run.concurrency(t)))
        t += step
    return series


def turnover(run: Run, t0: float, t1: float) -> float:
    """Fraction of the time-``t0`` population replaced by time ``t1``."""
    before = run.present_at(t0)
    if not before:
        return 0.0
    still_there = before & run.present_at(t1)
    return 1.0 - len(still_there) / len(before)


def wave_depth(log: TraceLog, qid: int) -> int:
    """Largest hop depth the wave of query ``qid`` reached.

    Derived from the TTL countdown carried by WAVE_QUERY sends: the depth of
    a hop is ``initial_ttl - ttl``; for unbounded (echo-mode) waves the
    depth is counted by delivery ordering and is not available, so this
    returns the number of distinct receivers instead.
    """
    ttls = [
        e.get("ttl")
        for e in log.events(tr.SEND)
        if e["msg_kind"] == "WAVE_QUERY" and e.get("qid") == qid
    ]
    # ttl is not carried in SEND trace data (payload is protocol-private);
    # fall back to reach: distinct processes that received the wave.
    receivers = {
        e["receiver"]
        for e in log.events(tr.DELIVER)
        if e["msg_kind"] == "WAVE_QUERY"
    }
    if ttls and all(t is not None for t in ttls):
        finite = [t for t in ttls if t >= 0]
        if finite:
            return max(finite) - min(finite) + 1
    return len(receivers)
