"""Analysis layer: metrics, statistics and table rendering."""

from repro.analysis.ascii_plot import bar_chart, sparkline, timeline
from repro.analysis.compare import PairedComparison, paired_compare, sign_test_p_value
from repro.analysis.metrics import (
    completeness,
    delivery_ratio,
    drop_reasons,
    message_cost,
    message_cost_by_kind,
    population_series,
    relative_error,
    turnover,
    wave_depth,
)
from repro.analysis.stats import (
    Summary,
    bootstrap_ci,
    mean,
    proportion,
    quantile,
    sem,
    stddev,
    summarize,
    variance,
)
from repro.analysis.tables import render_matrix, render_table

# NOTE: repro.analysis.report sits above the bench layer (it runs
# experiments) and is intentionally NOT re-exported here to avoid a
# circular import; use ``from repro.analysis.report import build_report``.

__all__ = [
    "PairedComparison",
    "Summary",
    "paired_compare",
    "sign_test_p_value",
    "bar_chart",
    "sparkline",
    "timeline",
    "bootstrap_ci",
    "completeness",
    "delivery_ratio",
    "drop_reasons",
    "mean",
    "message_cost",
    "message_cost_by_kind",
    "population_series",
    "proportion",
    "quantile",
    "relative_error",
    "render_matrix",
    "render_table",
    "sem",
    "stddev",
    "summarize",
    "turnover",
    "variance",
    "wave_depth",
]
