"""Terminal plotting: sparklines and horizontal bar charts.

Benchmark tables carry the numbers; these helpers make trends visible in
plain terminal output without any plotting dependency.
"""

from __future__ import annotations

import math
from typing import Sequence

#: Eight-level block characters, lowest to highest.
_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """Render a sequence as a one-line sparkline.

    >>> sparkline([0, 1, 2, 3])
    '▁▃▅█'
    """
    finite = [v for v in values if not math.isnan(v) and not math.isinf(v)]
    if not finite:
        return "·" * len(list(values))
    low, high = min(finite), max(finite)
    span = high - low
    chars = []
    for value in values:
        if math.isnan(value) or math.isinf(value):
            chars.append("·")
            continue
        if span == 0:
            chars.append(_SPARK_LEVELS[0])
            continue
        index = int((value - low) / span * (len(_SPARK_LEVELS) - 1))
        chars.append(_SPARK_LEVELS[index])
    return "".join(chars)


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    unit: str = "",
) -> str:
    """Render labelled horizontal bars scaled to the maximum value.

    >>> print(bar_chart(["a", "b"], [1.0, 2.0], width=4))
    a ██   1.0
    b ████ 2.0
    """
    if len(labels) != len(values):
        raise ValueError(
            f"{len(labels)} labels but {len(values)} values"
        )
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    finite = [v for v in values if not math.isnan(v) and not math.isinf(v)]
    peak = max((abs(v) for v in finite), default=0.0)
    label_width = max((len(label) for label in labels), default=0)
    lines = []
    for label, value in zip(labels, values):
        if math.isnan(value) or math.isinf(value):
            bar = "?"
        elif peak == 0:
            bar = ""
        else:
            bar = "█" * max(1, round(abs(value) / peak * width)) if value else ""
        shown = f"{value:.4g}{unit}"
        lines.append(f"{label.ljust(label_width)} {bar.ljust(width)} {shown}")
    return "\n".join(lines)


def timeline(
    times: Sequence[float],
    values: Sequence[float],
    label: str = "",
    width: int = 60,
) -> str:
    """A labelled sparkline with a time-axis footer.

    Values are resampled (nearest neighbour) onto ``width`` columns.
    """
    if len(times) != len(values):
        raise ValueError(f"{len(times)} times but {len(values)} values")
    if not times:
        return f"{label} (no data)"
    if len(times) == 1:
        return f"{label} {sparkline(values)}  t={times[0]:.4g}"
    columns = min(width, len(values)) if width >= 1 else len(values)
    t0, t1 = times[0], times[-1]
    resampled = []
    for i in range(columns):
        target = t0 + (t1 - t0) * i / max(1, columns - 1)
        nearest = min(range(len(times)), key=lambda j: abs(times[j] - target))
        resampled.append(values[nearest])
    header = f"{label} {sparkline(resampled)}"
    footer = (
        f"{' ' * len(label)} t∈[{t0:.4g}, {t1:.4g}] "
        f"min={min(values):.4g} max={max(values):.4g}"
    )
    return header + "\n" + footer
