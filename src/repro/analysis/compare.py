"""Paired protocol comparison.

The sweep harness runs competing protocols on **common seeds** (same
topology draw, same churn schedule), so their outcomes pair naturally.
These helpers turn paired outcomes into a defensible verdict: per-pair
differences, win counts, and an exact two-sided sign test — the
distribution-free test appropriate for small trial counts and the skewed
metrics simulations produce.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence, TypeVar

T = TypeVar("T")


def sign_test_p_value(wins: int, losses: int) -> float:
    """Exact two-sided sign test p-value (ties excluded by the caller).

    Under the null (no difference) each non-tied pair is a fair coin;
    the p-value is the probability of a split at least this extreme.
    """
    if wins < 0 or losses < 0:
        raise ValueError("win/loss counts must be >= 0")
    n = wins + losses
    if n == 0:
        return 1.0
    k = min(wins, losses)
    tail = sum(math.comb(n, i) for i in range(0, k + 1)) / 2 ** n
    return min(1.0, 2.0 * tail)


@dataclass(frozen=True)
class PairedComparison:
    """The result of comparing metric values over common seeds."""

    name_a: str
    name_b: str
    diffs: tuple[float, ...]  # metric(a) - metric(b), per pair
    wins_a: int
    wins_b: int
    ties: int
    mean_diff: float
    p_value: float

    @property
    def n(self) -> int:
        return len(self.diffs)

    @property
    def significant(self) -> bool:
        """Conventional alpha = 0.05 cut on the sign test."""
        return self.p_value < 0.05

    def winner(self) -> str | None:
        """The name with more wins, or ``None`` on a tie."""
        if self.wins_a > self.wins_b:
            return self.name_a
        if self.wins_b > self.wins_a:
            return self.name_b
        return None

    def __str__(self) -> str:
        return (
            f"{self.name_a} vs {self.name_b}: "
            f"{self.wins_a}-{self.wins_b}-{self.ties} "
            f"(mean diff {self.mean_diff:+.4g}, p={self.p_value:.3g})"
        )


def paired_compare(
    outcomes_a: Sequence[T],
    outcomes_b: Sequence[T],
    metric: Callable[[T], float],
    name_a: str = "A",
    name_b: str = "B",
    higher_is_better: bool = True,
) -> PairedComparison:
    """Compare two outcome sequences pairwise on ``metric``.

    The sequences must come from the same seed list in the same order.
    A "win" for A on a pair means A's metric is strictly better (higher by
    default; set ``higher_is_better=False`` for costs/latencies).
    """
    if len(outcomes_a) != len(outcomes_b):
        raise ValueError(
            f"paired comparison needs equal-length sequences, got "
            f"{len(outcomes_a)} and {len(outcomes_b)}"
        )
    if not outcomes_a:
        raise ValueError("paired comparison needs at least one pair")
    diffs = []
    wins_a = wins_b = ties = 0
    for a, b in zip(outcomes_a, outcomes_b):
        va, vb = metric(a), metric(b)
        diff = va - vb
        diffs.append(diff)
        better_a = diff > 0 if higher_is_better else diff < 0
        better_b = diff < 0 if higher_is_better else diff > 0
        if better_a:
            wins_a += 1
        elif better_b:
            wins_b += 1
        else:
            ties += 1
    finite = [d for d in diffs if not math.isnan(d) and not math.isinf(d)]
    mean_diff = sum(finite) / len(finite) if finite else float("nan")
    return PairedComparison(
        name_a=name_a,
        name_b=name_b,
        diffs=tuple(diffs),
        wins_a=wins_a,
        wins_b=wins_b,
        ties=ties,
        mean_diff=mean_diff,
        p_value=sign_test_p_value(wins_a, wins_b),
    )


def _trial_metrics(document: dict, metric: str) -> dict[tuple, float]:
    """Per-trial metric values keyed by (point, seed, trial)."""
    values: dict[tuple, float] = {}
    for entry in document.get("points", []):
        point_key = tuple(sorted(entry.get("point", {}).items()))
        for record in entry.get("trials", []):
            key = (point_key, record.get("seed"), record.get("trial"))
            values[key] = float(record[metric])
    return values


def compare_documents(
    document_a: dict,
    document_b: dict,
    metric: str = "completeness",
    name_a: str = "A",
    name_b: str = "B",
    higher_is_better: bool = True,
) -> PairedComparison:
    """Paired comparison of two engine result documents on one metric.

    The documents come from :class:`repro.engine.results.ResultStore`; the
    engine's seed discipline (common seeds across plans with the same root
    seed) makes trials pair naturally.  Trials are matched on
    ``(grid point, seed, trial index)`` and unmatched trials are dropped;
    comparing documents with no common trials is an error.
    """
    metrics_a = _trial_metrics(document_a, metric)
    metrics_b = _trial_metrics(document_b, metric)
    common = [key for key in metrics_a if key in metrics_b]
    if not common:
        raise ValueError(
            "result documents share no (point, seed, trial) pairs; "
            "were they produced from plans with the same grid and root seed?"
        )
    return paired_compare(
        [metrics_a[key] for key in common],
        [metrics_b[key] for key in common],
        metric=lambda value: value,
        name_a=name_a,
        name_b=name_b,
        higher_is_better=higher_is_better,
    )
