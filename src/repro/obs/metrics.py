"""The metrics registry: counters, gauges and fixed-bucket histograms.

Every simulator owns a :class:`Metrics` registry
(:attr:`repro.sim.scheduler.Simulator.metrics`).  The substrate writes into
it as it runs — the network counts sends/deliveries/drops and observes
delivery delays, churn models count membership turnover, the heartbeat
detector counts suspicions, protocols count queries — and the experiment
engine embeds one :meth:`Metrics.snapshot` per trial into the schema-v2
result document.

Determinism contract: everything except the ``timings`` section is derived
from the simulation alone, so for a fixed seed the snapshot is identical no
matter where or how fast the trial ran.  Wall-clock phase timers are
quarantined under ``timings`` and excluded from canonical documents (the
same rule as :class:`~repro.engine.results.TrialResult.wall_time`).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Iterator, Sequence

from repro.sim.errors import ConfigurationError

#: Default histogram bucket upper bounds (roughly log-spaced; values above
#: the last edge land in the overflow bucket).
DEFAULT_BUCKETS: tuple[float, ...] = (0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0)


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (amount={amount})"
            )
        self.value += amount


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Fixed-bucket histogram with a running count and sum.

    ``buckets`` are upper bounds of the value ranges, in increasing order;
    an observation greater than the last bound is counted in the overflow
    bucket.  The summary is fully determined by the observations, so it is
    safe to embed in canonical result documents.
    """

    __slots__ = ("name", "buckets", "counts", "count", "sum")

    def __init__(self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        self.name = name
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ConfigurationError(f"histogram {name!r} needs >= 1 bucket")
        if any(b1 >= b2 for b1, b2 in zip(bounds, bounds[1:])):
            raise ConfigurationError(
                f"histogram buckets must strictly increase, got {bounds}"
            )
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # + overflow
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def summary(self) -> dict[str, Any]:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
        }


class Metrics:
    """A named registry of counters, gauges, histograms and phase timers.

    Instruments get-or-create by name, so call sites stay one-liners::

        sim.metrics.inc("net.sent")
        sim.metrics.observe("net.delivery_delay", delay)

    :meth:`snapshot` renders everything as a plain, JSON-able, key-sorted
    dict.  Wall-clock phase timers (:meth:`timer`) are kept in a separate
    ``timings`` section that the snapshot omits by default.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._timings: dict[str, float] = {}

    # ------------------------------------------------------------------
    # Instrument accessors
    # ------------------------------------------------------------------

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name, buckets)
        return instrument

    # ------------------------------------------------------------------
    # One-line write paths
    # ------------------------------------------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name`` (created on first use)."""
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` (created on first use)."""
        self.gauge(name).set(value)

    def observe(
        self, name: str, value: float, buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> None:
        """Observe ``value`` in histogram ``name`` (created on first use)."""
        self.histogram(name, buckets).observe(value)

    @contextmanager
    def timer(self, phase: str) -> Iterator[None]:
        """Accumulate wall time of the ``with`` body under ``timings``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self._timings[phase] = (
                self._timings.get(phase, 0.0) + time.perf_counter() - start
            )

    def add_timing(self, phase: str, seconds: float) -> None:
        """Accumulate an externally measured wall time under ``timings``."""
        self._timings[phase] = self._timings.get(phase, 0.0) + seconds

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def value(self, name: str) -> float:
        """Current value of a counter or gauge (0 if never written)."""
        if name in self._counters:
            return self._counters[name].value
        if name in self._gauges:
            return self._gauges[name].value
        return 0

    def timings(self) -> dict[str, float]:
        """Accumulated wall time per phase, in seconds."""
        return dict(self._timings)

    def snapshot(self, include_timing: bool = False) -> dict[str, Any]:
        """Everything measured, as a plain key-sorted JSON-able dict.

        The ``timings`` section (non-deterministic wall clock) only appears
        when ``include_timing`` is true; everything else is a pure function
        of the simulation and therefore deterministic for a fixed seed.
        """
        snapshot: dict[str, Any] = {
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "gauges": {name: g.value for name, g in sorted(self._gauges.items())},
            "histograms": {
                name: h.summary() for name, h in sorted(self._histograms.items())
            },
        }
        if include_timing:
            snapshot["timings"] = {
                name: seconds for name, seconds in sorted(self._timings.items())
            }
        return snapshot


def strip_timings(snapshot: dict[str, Any]) -> dict[str, Any]:
    """A copy of ``snapshot`` without its non-deterministic ``timings``."""
    return {key: value for key, value in snapshot.items() if key != "timings"}
