"""Streaming trace invariant checkers.

The simulator's trace is the single source of truth connecting execution to
the paper's definitions, so classes of bugs — in churn models, protocols or
the substrate itself — show up as *trace invariant* violations long before
they corrupt a verdict.  This module checks those invariants **online**, as
events are recorded, via a :class:`CheckingSink` that composes with any
existing sink (memory, JSONL, counting, null):

* :class:`DeliveryLivenessChecker` — no message is delivered to an entity
  that already departed (the network must drop it instead);
* :class:`SendLivenessChecker` — no message is sent, and no timer fires,
  at an entity that is not currently a member;
* :class:`TimeMonotonicityChecker` — trace time never goes backwards
  (timer firings and deliveries respect the virtual clock);
* :class:`QueryQuiescenceChecker` — each query id is issued once, returns
  at most once, and only after it was issued.

Violations accumulate on each checker and — when the sink is attached to a
simulator — are counted in the metrics registry under
``check.violations`` / ``check.violations.<invariant>``, so they surface
in schema-v2 result documents without any extra plumbing::

    sink = CheckingSink(JsonlStreamSink("trial.jsonl"))
    sim = Simulator(seed=7, trace_sink=sink)
    ...
    assert not sink.violations

Offline, :func:`check_trace` replays a stored trace (a
:class:`~repro.sim.trace.TraceLog` or a JSONL file) through the default
checkers — that is what ``repro trace check`` runs.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

from repro.obs.metrics import Metrics
from repro.obs.sinks import MemorySink, TraceSink
from repro.sim import trace as tr

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.trace import TraceEvent


@dataclass(frozen=True)
class Violation:
    """One observed breach of a trace invariant."""

    time: float
    invariant: str
    message: str

    def __str__(self) -> str:
        return f"[t={self.time:.3f}] {self.invariant}: {self.message}"


class InvariantChecker(abc.ABC):
    """Observes a trace stream and records invariant violations.

    Checkers are single-pass and constant-state in the transport-event
    count, so they compose with streaming sinks at no meaningful cost.
    """

    #: Invariant identifier (metrics key suffix, report label).
    name = "abstract"

    def __init__(self) -> None:
        self.violations: list[Violation] = []

    def _violate(self, time: float, message: str) -> None:
        self.violations.append(Violation(time, self.name, message))

    @abc.abstractmethod
    def observe(self, event: "TraceEvent") -> None:
        """Inspect one event, in record order."""

    @property
    def ok(self) -> bool:
        return not self.violations

    def __repr__(self) -> str:
        return f"{type(self).__name__}(violations={len(self.violations)})"


class _MembershipTracker(InvariantChecker):
    """Shared join/leave bookkeeping for the liveness checkers."""

    def __init__(self) -> None:
        super().__init__()
        self._present: set[int] = set()

    def observe(self, event: "TraceEvent") -> None:
        if event.kind == tr.JOIN:
            self._present.add(event["entity"])
        elif event.kind == tr.LEAVE:
            self._present.discard(event["entity"])
        else:
            self._check(event)

    def _check(self, event: "TraceEvent") -> None:
        """Override: inspect a non-membership event."""


class DeliveryLivenessChecker(_MembershipTracker):
    """No delivery to a departed (or never-joined) entity.

    The network contract is that messages to absent receivers become
    ``drop`` events with reason ``receiver_absent``; a ``deliver`` whose
    receiver is not currently present means that contract broke.
    """

    name = "no_delivery_to_departed"

    def _check(self, event: "TraceEvent") -> None:
        if event.kind != tr.DELIVER:
            return
        receiver = event["receiver"]
        if receiver not in self._present:
            self._violate(
                event.time,
                f"message {event.get('msg_id')} ({event.get('msg_kind')}) "
                f"delivered to absent entity {receiver}",
            )


class SendLivenessChecker(_MembershipTracker):
    """No send from — and no timer firing at — a non-member entity.

    A process that left the system must be silent: its timers are
    suppressed and it has no network access.  Activity attributed to a
    departed entity means a zombie process survived its own departure.
    """

    name = "no_send_from_departed"

    def _check(self, event: "TraceEvent") -> None:
        if event.kind == tr.SEND:
            sender = event["sender"]
            if sender not in self._present:
                self._violate(
                    event.time,
                    f"message {event.get('msg_id')} ({event.get('msg_kind')}) "
                    f"sent by absent entity {sender}",
                )
        elif event.kind == tr.TIMER:
            entity = event["entity"]
            if entity not in self._present:
                self._violate(
                    event.time,
                    f"timer {event.get('name')!r} fired at absent "
                    f"entity {entity}",
                )


class TimeMonotonicityChecker(InvariantChecker):
    """Trace time is non-decreasing in record order.

    Subsumes timer monotonicity: a timer (or any other event) stamped
    before an already-recorded instant means the scheduler's clock went
    backwards.
    """

    name = "time_monotonic"

    def __init__(self) -> None:
        super().__init__()
        self._last_time = float("-inf")
        self._last_kind = ""

    def observe(self, event: "TraceEvent") -> None:
        if event.time < self._last_time:
            self._violate(
                event.time,
                f"{event.kind} at t={event.time} recorded after "
                f"{self._last_kind} at t={self._last_time}",
            )
        self._last_time = event.time
        self._last_kind = event.kind


class QueryQuiescenceChecker(InvariantChecker):
    """Every query id is issued exactly once and returns at most once.

    A double return (or a return with no issue) means a protocol kept
    answering after it reached its verdict — the query never became
    quiescent.
    """

    name = "query_quiescence"

    def __init__(self) -> None:
        super().__init__()
        self._issued: set[int] = set()
        self._returned: set[int] = set()

    def observe(self, event: "TraceEvent") -> None:
        if event.kind == "query_issued":
            qid = event["qid"]
            if qid in self._issued:
                self._violate(event.time, f"query {qid} issued twice")
            self._issued.add(qid)
        elif event.kind == "query_returned":
            qid = event["qid"]
            if qid not in self._issued:
                self._violate(
                    event.time, f"query {qid} returned but was never issued"
                )
            if qid in self._returned:
                self._violate(
                    event.time,
                    f"query {qid} returned twice (no quiescence after the "
                    "first verdict)",
                )
            self._returned.add(qid)


def default_checkers() -> list[InvariantChecker]:
    """Fresh instances of the four standard trace invariant checkers."""
    return [
        DeliveryLivenessChecker(),
        SendLivenessChecker(),
        TimeMonotonicityChecker(),
        QueryQuiescenceChecker(),
    ]


class CheckingSink(TraceSink):
    """A sink decorator that runs invariant checkers on the event stream.

    Wraps any inner sink (default: :class:`~repro.obs.sinks.MemorySink`)
    and forwards retention, emission and closing to it unchanged, so the
    wrapped trial produces the identical trace/documents with checking on.
    When the owning simulator attaches its metrics registry
    (:meth:`attach_metrics`, called by ``Simulator.__init__``), every
    violation also increments ``check.violations`` and
    ``check.violations.<invariant>``.
    """

    name = "checking"

    def __init__(
        self,
        inner: TraceSink | None = None,
        checkers: Iterable[InvariantChecker] | None = None,
        metrics: Metrics | None = None,
    ) -> None:
        self.inner = inner if inner is not None else MemorySink()
        self.checkers = (
            list(checkers) if checkers is not None else default_checkers()
        )
        self.metrics = metrics

    def attach_metrics(self, metrics: Metrics) -> None:
        # An explicitly configured registry wins over the simulator's.
        if self.metrics is None:
            self.metrics = metrics

    def retains(self, kind: str) -> bool:
        return self.inner.retains(kind)

    def emit(self, event: "TraceEvent") -> None:
        for checker in self.checkers:
            before = len(checker.violations)
            checker.observe(event)
            fresh = len(checker.violations) - before
            if fresh and self.metrics is not None:
                self.metrics.inc("check.violations", fresh)
                self.metrics.inc(f"check.violations.{checker.name}", fresh)
        self.inner.emit(event)

    def close(self) -> None:
        self.inner.close()

    @property
    def violations(self) -> list[Violation]:
        """All violations across the checkers, in time order (stable)."""
        merged = [v for checker in self.checkers for v in checker.violations]
        return sorted(merged, key=lambda v: v.time)

    @property
    def ok(self) -> bool:
        return all(checker.ok for checker in self.checkers)

    def __repr__(self) -> str:
        return (
            f"CheckingSink(inner={self.inner!r}, "
            f"checkers={[c.name for c in self.checkers]}, "
            f"violations={len(self.violations)})"
        )


def check_trace(
    source: "TraceLog | Iterable[TraceEvent] | str | Path",
    checkers: Iterable[InvariantChecker] | None = None,
) -> list[Violation]:
    """Replay a stored trace through the checkers; return all violations.

    ``source`` is a :class:`~repro.sim.trace.TraceLog`, any event iterable,
    or a path to a JSONL trace file.  Fresh default checkers are used
    unless an explicit list is given.
    """
    from repro.sim.trace import TraceLog

    if isinstance(source, (str, Path)):
        source = TraceLog.load_jsonl(source)
    active = list(checkers) if checkers is not None else default_checkers()
    for event in source:
        for checker in active:
            checker.observe(event)
    merged = [v for checker in active for v in checker.violations]
    return sorted(merged, key=lambda v: v.time)


if TYPE_CHECKING:  # pragma: no cover - typing aid for check_trace
    from repro.sim.trace import TraceLog
