"""Pluggable trace sinks: where high-volume trace events go.

Historically :class:`~repro.sim.trace.TraceLog` kept *every* event in a
grow-only list — fine for one trial, hostile to big sweeps where a single
run can emit hundreds of thousands of transport events.  A sink decides
what happens to each recorded event:

* :class:`MemorySink` — keep everything in memory (the default; exactly
  the historical behavior).
* :class:`JsonlStreamSink` — stream every event to a JSON-Lines file as it
  is recorded; constant memory in the transport-event count, and the file
  is loadable with :meth:`repro.sim.trace.TraceLog.load_jsonl`.
* :class:`CountingSink` — keep nothing but per-kind (and per-message-kind)
  counts.
* :class:`NullSink` — discard outright (perf mode).

**The spec checker keeps working under every sink.**  The membership and
protocol-milestone events (joins/leaves, ``query_issued``/
``query_returned``, ``bcast_issued``/``bcast_delivered``, …) that
:mod:`repro.core` consumes are always retained in memory; the sink policy
governs only the high-volume transport and timer firehose
(:data:`TRANSPORT_KINDS`).  That is what makes a ``--trace-sink null``
sweep produce the same result document as a memory-sink sweep, only
cheaper.
"""

from __future__ import annotations

import abc
import json
from pathlib import Path
from typing import IO, TYPE_CHECKING, Any

from repro.obs.codec import encode_event
from repro.sim.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (trace -> sinks)
    from repro.sim.trace import TraceEvent

#: The high-volume substrate kinds a space-saving sink may drop without
#: breaking the specification checker.  Everything else (membership,
#: protocol milestones, detector output, topology changes) is low-volume
#: and always retained by the TraceLog.
TRANSPORT_KINDS = frozenset(
    {"send", "deliver", "drop", "timer", "msg_lost", "retransmit"}
)


class TraceSink(abc.ABC):
    """Receives every trace event; decides retention for transport kinds."""

    #: Human-readable sink name (the ``--trace-sink`` vocabulary).
    name = "abstract"

    def retains(self, kind: str) -> bool:
        """Should the TraceLog keep events of ``kind`` in memory?

        Default policy: retain everything except the transport firehose.
        :class:`MemorySink` overrides this to retain all kinds.
        """
        return kind not in TRANSPORT_KINDS

    def emit(self, event: "TraceEvent") -> None:
        """Called once per recorded event, in record order."""

    def close(self) -> None:
        """Flush and release any resources (idempotent)."""

    def attach_metrics(self, metrics: Any) -> None:
        """Offer the owning simulator's metrics registry to the sink.

        Called once by :class:`~repro.sim.scheduler.Simulator` right after
        construction.  The default is a no-op; instrumented sinks (e.g.
        :class:`repro.obs.check.CheckingSink`) override it to count what
        they observe.
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class MemorySink(TraceSink):
    """Retain every event in the TraceLog's list (historical behavior)."""

    name = "memory"

    def retains(self, kind: str) -> bool:
        return True


class NullSink(TraceSink):
    """Drop transport events outright — the cheapest possible sink."""

    name = "null"


class CountingSink(TraceSink):
    """Keep only count summaries of the dropped transport events.

    The TraceLog already counts events per kind; this sink additionally
    breaks the transport kinds down by protocol message kind, so a perf
    run still answers "how many WAVE_QUERY sends?" without storing any
    event objects.
    """

    name = "counts"

    def __init__(self) -> None:
        self._by_msg_kind: dict[str, dict[str, int]] = {}

    def emit(self, event: "TraceEvent") -> None:
        if event.kind not in TRANSPORT_KINDS:
            return
        msg_kind = event.get("msg_kind")
        if msg_kind is None:
            return
        breakdown = self._by_msg_kind.setdefault(event.kind, {})
        breakdown[msg_kind] = breakdown.get(msg_kind, 0) + 1

    def summary(self) -> dict[str, dict[str, int]]:
        """``{event kind: {message kind: count}}`` for transport events."""
        return {
            kind: dict(sorted(counts.items()))
            for kind, counts in sorted(self._by_msg_kind.items())
        }


class JsonlStreamSink(TraceSink):
    """Stream every event to a JSON-Lines file as it is recorded.

    Memory stays constant in the transport-event count; the produced file
    uses the same tuple/frozenset-marking codec as
    :meth:`~repro.sim.trace.TraceLog.save_jsonl`, so
    :meth:`~repro.sim.trace.TraceLog.load_jsonl` round-trips it exactly.
    The file handle opens lazily on the first event and must be
    :meth:`close`\\ d (the trial runners do) before the file is complete.
    """

    name = "jsonl"

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._handle: IO[str] | None = None
        self.events_written = 0

    def emit(self, event: "TraceEvent") -> None:
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("w", encoding="utf-8")
        record = encode_event(event.time, event.kind, event.data)
        self._handle.write(json.dumps(record) + "\n")
        self.events_written += 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __repr__(self) -> str:
        return f"JsonlStreamSink(path={str(self.path)!r})"


#: ``--trace-sink`` vocabulary shared by the CLI and the trial configs.
SINK_NAMES = ("memory", "jsonl", "null", "counts")


def make_sink(
    sink: "str | TraceSink | None", path: str | Path | None = None
) -> TraceSink:
    """Materialise a sink from a name (or pass an instance through).

    ``path`` is required for ``"jsonl"`` and ignored otherwise.  ``None``
    selects the default :class:`MemorySink`.
    """
    if sink is None:
        return MemorySink()
    if isinstance(sink, TraceSink):
        return sink
    if sink == "memory":
        return MemorySink()
    if sink == "null":
        return NullSink()
    if sink == "counts":
        return CountingSink()
    if sink == "jsonl":
        if path is None:
            raise ConfigurationError(
                "trace sink 'jsonl' needs a trace path (set trace_path "
                "on the config, or --trace-dir on the CLI)"
            )
        return JsonlStreamSink(path)
    raise ConfigurationError(
        f"unknown trace sink {sink!r}; use one of {', '.join(SINK_NAMES)}"
    )
