"""Happens-before analysis: the causal structure behind a trace.

The paper's solvability arguments are *causal* arguments: a one-time query
can only be answered correctly if the answer causally depends on the state
of every live entity — and under churn the adversary can keep some live
entity outside the querier's causal past forever.  This module makes that
argument inspectable per trial: it rebuilds the happens-before partial
order (Lamport's relation, specialised to this simulator's event
vocabulary) from any trace stream and answers causal-past / causal-future /
influence queries about it.

The DAG is built from two edge families:

* **program order** — for each entity, its events in record order (joins,
  sends, deliveries, timer firings, protocol milestones, its departure).
  A ``join`` event is also threaded into the program order of the
  neighbors it attaches to, because those processes observe the arrival
  (the ``on_neighbor_join`` callback); ``edge_up``/``edge_down`` events
  thread into both endpoints for the same reason.
* **message order** — every ``deliver`` (and ``drop`` / ``msg_lost``) is
  preceded by its ``send``, matched on the trace's per-simulation
  ``msg_id``, so a message lost in transit still appears in its sender's
  causal structure — distinguishable from one that was never sent.

Both families only ever point from earlier record positions to later ones,
so the result is a DAG and longest-path depths are a single forward pass.

Build one from a live :class:`~repro.sim.trace.TraceLog` (memory sink) or
from a streamed JSONL file — the two yield the identical DAG for the same
trial, which is covered by tests::

    dag = HappensBeforeDAG.from_trace(outcome.trace)
    dag = HappensBeforeDAG.from_jsonl("trial.jsonl")
    report = dag.influence()          # the first returned query
    report.outside_causal_past       # live entities the verdict never saw
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.sim import trace as tr
from repro.sim.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (trace -> obs)
    from repro.sim.trace import TraceEvent, TraceLog

#: Event kinds whose ``data`` carries endpoints rather than an ``entity``.
_EDGE_KINDS = ("edge_up", "edge_down")


def owners_of(event: TraceEvent) -> tuple[int, ...]:
    """The entities whose *state* the event reflects.

    ``send`` belongs to the sender, ``deliver`` to the receiver, ``drop``
    to nobody (the message died in the network), topology events to both
    endpoints, and everything recorded through
    :meth:`repro.sim.node.Process.record` to its ``entity``.
    """
    if event.kind == tr.SEND:
        return (event["sender"],)
    if event.kind == tr.DELIVER:
        return (event["receiver"],)
    if event.kind == tr.DROP:
        return ()
    if event.kind in _EDGE_KINDS:
        return (event["a"], event["b"])
    entity = event.get("entity")
    if entity is None:
        return ()
    return (int(entity),)


def threads_of(event: TraceEvent) -> tuple[int, ...]:
    """The program-order lanes the event participates in.

    Superset of :func:`owners_of`: a ``join`` also threads into the lanes
    of the neighbors it attached to, because they observe the arrival.
    """
    owners = owners_of(event)
    if event.kind == tr.JOIN:
        neighbors = event.get("neighbors") or ()
        return owners + tuple(int(n) for n in neighbors)
    return owners


@dataclass(frozen=True)
class InfluenceReport:
    """Causal accounting of one query verdict.

    Attributes:
        qid: the query id the report is about.
        querier: the entity that issued (and returned) the query.
        issue_time / verdict_time: when the query was issued / returned.
        verdict_index: DAG index of the ``query_returned`` event.
        causal_depth: length of the longest happens-before chain ending at
            the verdict — how many sequential causal steps the answer took.
        past_events: number of events in the verdict's causal past
            (including the verdict itself).
        influencing_entities: entities with at least one event in the
            verdict's causal past — exactly the entities whose state could
            have influenced the answer.
        live_at_verdict: entities present in the system at verdict time.
        outside_causal_past: live entities the verdict does *not* causally
            depend on.  Non-empty means no protocol run along this causal
            structure could have counted them — the paper's unsolvability
            witness, per trial.
    """

    qid: int
    querier: int
    issue_time: float
    verdict_time: float
    verdict_index: int
    causal_depth: int
    past_events: int
    influencing_entities: frozenset[int]
    live_at_verdict: frozenset[int]
    outside_causal_past: frozenset[int]

    @property
    def covers_all_live(self) -> bool:
        """Did the answer causally depend on every live entity?"""
        return not self.outside_causal_past

    def __str__(self) -> str:
        coverage = "covers all live entities" if self.covers_all_live else (
            f"misses {len(self.outside_causal_past)} live entities "
            f"{sorted(self.outside_causal_past)}"
        )
        return (
            f"query {self.qid} by {self.querier}: verdict at "
            f"t={self.verdict_time:.2f}, causal depth {self.causal_depth}, "
            f"past of {self.past_events} events over "
            f"{len(self.influencing_entities)} entities; {coverage}"
        )


class HappensBeforeDAG:
    """The happens-before partial order over one trace's events.

    Indices are positions in the event sequence handed to the constructor
    (record order).  Every edge points from a lower index to a higher one.
    """

    def __init__(self, events: Iterable[TraceEvent]) -> None:
        self.events: list[TraceEvent] = list(events)
        n = len(self.events)
        self._succ: list[list[int]] = [[] for _ in range(n)]
        self._pred: list[list[int]] = [[] for _ in range(n)]
        self.program_edges = 0
        self.message_edges = 0
        self._build()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_trace(cls, log: TraceLog | Iterable[TraceEvent]) -> "HappensBeforeDAG":
        """Build from a trace log (or any event iterable) in record order.

        With a space-saving sink the log only retains the low-volume kinds,
        so the DAG will lack transport edges; analyse memory-sink logs or
        streamed JSONL files when message causality matters.
        """
        return cls(log)

    @classmethod
    def from_jsonl(cls, path: str | Path) -> "HappensBeforeDAG":
        """Build from a JSONL trace file (saved or streamed)."""
        return cls(tr.TraceLog.load_jsonl(path))

    def _add_edge(self, src: int, dst: int) -> None:
        if src == dst:
            return
        self._succ[src].append(dst)
        self._pred[dst].append(src)

    def _build(self) -> None:
        last_in_lane: dict[int, int] = {}
        send_index: dict[int, int] = {}
        for i, event in enumerate(self.events):
            for lane in threads_of(event):
                prev = last_in_lane.get(lane)
                if prev is not None and prev != i:
                    self._add_edge(prev, i)
                    self.program_edges += 1
                last_in_lane[lane] = i
            if event.kind == tr.SEND:
                msg_id = event.get("msg_id")
                if msg_id is not None:
                    send_index[msg_id] = i
            elif event.kind in (tr.DELIVER, tr.DROP, tr.MSG_LOST):
                src = send_index.get(event.get("msg_id"))
                if src is not None:
                    self._add_edge(src, i)
                    self.message_edges += 1

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    @property
    def edge_count(self) -> int:
        return self.program_edges + self.message_edges

    def successors(self, index: int) -> tuple[int, ...]:
        """Immediate happens-before successors of event ``index``."""
        return tuple(self._succ[index])

    def predecessors(self, index: int) -> tuple[int, ...]:
        """Immediate happens-before predecessors of event ``index``."""
        return tuple(self._pred[index])

    def edge_set(self) -> frozenset[tuple[int, int]]:
        """All edges as ``(src, dst)`` index pairs (for DAG comparison)."""
        return frozenset(
            (src, dst) for src, succ in enumerate(self._succ) for dst in succ
        )

    def causal_past(self, index: int) -> frozenset[int]:
        """Indices of events that happen-before ``index``, inclusive."""
        return self._closure(index, self._pred)

    def causal_future(self, index: int) -> frozenset[int]:
        """Indices of events that ``index`` happens-before, inclusive."""
        return self._closure(index, self._succ)

    def _closure(self, index: int, adjacency: list[list[int]]) -> frozenset[int]:
        if not 0 <= index < len(self.events):
            raise ConfigurationError(
                f"event index {index} out of range 0..{len(self.events) - 1}"
            )
        seen = {index}
        frontier = [index]
        while frontier:
            node = frontier.pop()
            for other in adjacency[node]:
                if other not in seen:
                    seen.add(other)
                    frontier.append(other)
        return frozenset(seen)

    def concurrent(self, a: int, b: int) -> bool:
        """Are events ``a`` and ``b`` causally unordered?"""
        if a == b:
            return False
        return b not in self.causal_future(a) and b not in self.causal_past(a)

    def depth(self, index: int) -> int:
        """Longest happens-before chain ending at ``index`` (edge count)."""
        past = self.causal_past(index)
        depths: dict[int, int] = {}
        for i in sorted(past):
            preds = [depths[p] for p in self._pred[i] if p in depths]
            depths[i] = max(preds, default=-1) + 1
        return depths[index]

    def entities_in(self, indices: Iterable[int]) -> frozenset[int]:
        """Entities owning at least one of the given events."""
        owners: set[int] = set()
        for i in indices:
            owners.update(owners_of(self.events[i]))
        return frozenset(owners)

    # ------------------------------------------------------------------
    # Membership view (for influence accounting)
    # ------------------------------------------------------------------

    def live_at(self, time: float) -> frozenset[int]:
        """Entities present at instant ``time`` (half-open ``[join, leave)``
        intervals, matching :class:`repro.core.runs.Interval`)."""
        joined: dict[int, float] = {}
        left: dict[int, float] = {}
        for event in self.events:
            if event.kind == tr.JOIN:
                joined[event["entity"]] = event.time
            elif event.kind == tr.LEAVE:
                left[event["entity"]] = event.time
        return frozenset(
            pid
            for pid, t_join in joined.items()
            if t_join <= time and not (pid in left and left[pid] <= time)
        )

    # ------------------------------------------------------------------
    # Query influence
    # ------------------------------------------------------------------

    def query_indices(self) -> dict[int, tuple[int | None, int | None]]:
        """``{qid: (issue_index, return_index)}`` for every query seen."""
        queries: dict[int, tuple[int | None, int | None]] = {}
        for i, event in enumerate(self.events):
            if event.kind == "query_issued":
                issue, ret = queries.get(event["qid"], (None, None))
                queries[event["qid"]] = (i if issue is None else issue, ret)
            elif event.kind == "query_returned":
                issue, ret = queries.get(event["qid"], (None, None))
                queries[event["qid"]] = (issue, i if ret is None else ret)
        return queries

    def verdict_index(self, qid: int | None = None) -> int:
        """Index of the ``query_returned`` event for ``qid`` (or the first
        returned query when ``qid`` is ``None``)."""
        queries = self.query_indices()
        candidates = sorted(
            q for q, (_, ret) in queries.items() if ret is not None
        )
        if qid is None:
            if not candidates:
                raise ConfigurationError("trace contains no returned query")
            qid = candidates[0]
        entry = queries.get(qid)
        if entry is None or entry[1] is None:
            raise ConfigurationError(
                f"query {qid} never returned in this trace"
                + (f"; returned qids: {candidates}" if candidates else "")
            )
        return entry[1]

    def influence(self, qid: int | None = None) -> InfluenceReport:
        """Causal accounting of one query's verdict; see
        :class:`InfluenceReport`."""
        verdict_index = self.verdict_index(qid)
        verdict = self.events[verdict_index]
        issue_index, _ = self.query_indices()[verdict["qid"]]
        issue_time = (
            self.events[issue_index].time
            if issue_index is not None
            else verdict.time
        )
        past = self.causal_past(verdict_index)
        influencing = self.entities_in(past)
        live = self.live_at(verdict.time)
        return InfluenceReport(
            qid=verdict["qid"],
            querier=verdict["entity"],
            issue_time=issue_time,
            verdict_time=verdict.time,
            verdict_index=verdict_index,
            causal_depth=self.depth(verdict_index),
            past_events=len(past),
            influencing_entities=influencing,
            live_at_verdict=live,
            outside_causal_past=live - influencing,
        )

    def __repr__(self) -> str:
        return (
            f"HappensBeforeDAG(events={len(self.events)}, "
            f"program_edges={self.program_edges}, "
            f"message_edges={self.message_edges})"
        )
