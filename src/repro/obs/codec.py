"""JSON codec for trace-event payloads.

Trace event data may contain tuples and frozensets (contributor tuples,
reachability sets).  Plain JSON has neither, so both are encoded with type
markers and decoded back exactly.  The codec is shared by
:meth:`repro.sim.trace.TraceLog.save_jsonl` and the streaming
:class:`repro.obs.sinks.JsonlStreamSink`, so a streamed trace file and a
saved one round-trip identically.
"""

from __future__ import annotations

from typing import Any


def encode_value(value: Any) -> Any:
    """JSON-encode event data, marking tuples and frozensets."""
    if isinstance(value, tuple):
        return {"__tuple__": [encode_value(v) for v in value]}
    if isinstance(value, frozenset):
        return {"__frozenset__": sorted((encode_value(v) for v in value), key=repr)}
    if isinstance(value, (list, dict, str, int, float, bool)) or value is None:
        return value
    return {"__repr__": repr(value)}


def decode_value(value: Any) -> Any:
    """Inverse of :func:`encode_value` (best effort for ``__repr__`` markers)."""
    if isinstance(value, dict):
        if "__tuple__" in value:
            return tuple(decode_value(v) for v in value["__tuple__"])
        if "__frozenset__" in value:
            return frozenset(decode_value(v) for v in value["__frozenset__"])
        if "__repr__" in value:
            return value["__repr__"]
        return {key: decode_value(v) for key, v in value.items()}
    return value


def encode_event(time: float, kind: str, data: dict[str, Any]) -> dict[str, Any]:
    """The canonical one-line JSON record for a trace event."""
    return {
        "t": time,
        "k": kind,
        "d": {key: encode_value(value) for key, value in data.items()},
    }
