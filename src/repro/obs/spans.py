"""Hierarchical wall-clock spans and the ``repro-run-telemetry`` wire format.

PRs 2-3 made the *simulated* system observable (metrics, trace sinks, the
causal DAG); this module turns the same lens on the harness itself.  A
:class:`Span` is one timed region of real work — a whole run, a dispatch
phase, a worker-side chunk, a single trial — with a parent pointer, so a
run's spans form a tree::

    run
    ├── warm_pool                 (pool fork + pre-import)
    ├── calibration               (adaptive-chunk sizing trial)
    └── dispatch
        ├── chunk  (worker 4711)
        │   ├── trial (index 1)
        │   └── trial (index 2)
        └── chunk  (worker 4712)
            └── ...

Spans are recorded through a :class:`SpanTracer`, which assigns ids and
hands each *finished* span to a sink callback — spans are append-only and
written at their end time, so a sink can be a live JSONL stream that a
concurrent reader tails (``repro top``).

Wire format (``repro-run-telemetry`` v1): one JSON object per line.  The
first line is a ``manifest`` record (written by
:class:`repro.engine.telemetry.TelemetryRecorder`); every span becomes a
``span`` record; the final line is a ``summary`` record.  All times are
Unix epoch seconds (``time.time()``) so records from different processes
on one host share a clock base.

Determinism contract: spans observe wall-clock shape only.  Nothing in
this module is reachable from trial execution, so telemetry enabled vs
disabled produces byte-identical result documents (pinned by
``tests/engine/test_telemetry.py``).
"""

from __future__ import annotations

import json
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping

from repro.sim.errors import ConfigurationError

#: Schema identifier stamped on every telemetry stream's manifest line.
TELEMETRY_SCHEMA = "repro-run-telemetry"
TELEMETRY_VERSION = 1

#: The record types a v1 telemetry stream may contain.
RECORD_TYPES = ("manifest", "span", "summary")

#: Well-known span names the engine emits (consumers may see others).
SPAN_KINDS = (
    "run",
    "warm_pool",
    "calibration",
    "dispatch",
    "chunk",
    "trial",
    "profile",
    "worker_respawned",
    "chunk_redispatched",
)


@dataclass(frozen=True)
class Span:
    """One finished, wall-clock-timed region of harness work.

    Attributes:
        name: the span kind (see :data:`SPAN_KINDS`).
        span_id: unique within one telemetry stream (``"s1"``, ``"s2"``…).
        parent_id: the enclosing span's id, or ``None`` for the root.
        t0: start, Unix epoch seconds.
        t1: end, Unix epoch seconds (``t1 >= t0``).
        attrs: JSON-able annotations — trial index, worker pid, queue
            wait, quarantine status, retry counts, …
    """

    name: str
    span_id: str
    parent_id: str | None
    t0: float
    t1: float
    attrs: Mapping[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.t1 - self.t0

    def to_record(self) -> dict[str, Any]:
        """The ``span`` line of the telemetry wire format."""
        record: dict[str, Any] = {
            "type": "span",
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "t0": self.t0,
            "t1": self.t1,
        }
        if self.attrs:
            record["attrs"] = dict(self.attrs)
        return record

    @classmethod
    def from_record(cls, record: Mapping[str, Any]) -> "Span":
        if record.get("type") != "span":
            raise ConfigurationError(
                f"not a span record (type={record.get('type')!r})"
            )
        return cls(
            name=record["name"],
            span_id=record["span_id"],
            parent_id=record.get("parent_id"),
            t0=record["t0"],
            t1=record["t1"],
            attrs=dict(record.get("attrs", {})),
        )


class OpenSpan:
    """A span that has started but not finished (mutable handle).

    Handed out by :meth:`SpanTracer.begin`; :meth:`SpanTracer.finish`
    seals it into an immutable :class:`Span` and pushes it to the sink.
    """

    __slots__ = ("name", "span_id", "parent_id", "t0", "attrs")

    def __init__(
        self,
        name: str,
        span_id: str,
        parent_id: str | None,
        t0: float,
        attrs: dict[str, Any],
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.t0 = t0
        self.attrs = attrs


class SpanTracer:
    """Assigns span ids and routes finished spans to a sink callback.

    The tracer is clock-agnostic: callers pass explicit ``t0``/``t1``
    epoch timestamps when they have better ones (worker-side chunk times
    shipped back over the wire), or use :meth:`begin`/:meth:`finish` /
    the :meth:`span` context manager for parent-side regions.  A lock
    guards the id counter and sink hand-off, so completion-order callbacks
    (``as_completed`` loops) need no coordination of their own.
    """

    def __init__(
        self,
        sink: Callable[[Span], None],
        clock: Callable[[], float] | None = None,
    ) -> None:
        import time

        self._sink = sink
        self._clock = clock if clock is not None else time.time
        self._lock = threading.Lock()
        self._next_id = 0

    def _new_id(self) -> str:
        with self._lock:
            self._next_id += 1
            return f"s{self._next_id}"

    def now(self) -> float:
        return self._clock()

    def begin(
        self,
        name: str,
        parent: "OpenSpan | Span | str | None" = None,
        t0: float | None = None,
        **attrs: Any,
    ) -> OpenSpan:
        """Open a span; it is not written until :meth:`finish`."""
        return OpenSpan(
            name=name,
            span_id=self._new_id(),
            parent_id=span_id_of(parent),
            t0=self.now() if t0 is None else t0,
            attrs=dict(attrs),
        )

    def finish(
        self, open_span: OpenSpan, t1: float | None = None, **attrs: Any
    ) -> Span:
        """Seal an open span and push it to the sink."""
        merged = dict(open_span.attrs)
        merged.update(attrs)
        span = Span(
            name=open_span.name,
            span_id=open_span.span_id,
            parent_id=open_span.parent_id,
            t0=open_span.t0,
            t1=self.now() if t1 is None else t1,
            attrs=merged,
        )
        with self._lock:
            self._sink(span)
        return span

    def emit(
        self,
        name: str,
        t0: float,
        t1: float,
        parent: "OpenSpan | Span | str | None" = None,
        **attrs: Any,
    ) -> Span:
        """Record an already-timed span in one call (worker-clocked
        regions whose endpoints crossed the process boundary)."""
        span = Span(
            name=name,
            span_id=self._new_id(),
            parent_id=span_id_of(parent),
            t0=t0,
            t1=t1,
            attrs=dict(attrs),
        )
        with self._lock:
            self._sink(span)
        return span

    @contextmanager
    def span(
        self,
        name: str,
        parent: "OpenSpan | Span | str | None" = None,
        **attrs: Any,
    ) -> Iterator[OpenSpan]:
        """Context manager form: the region's wall time is the span."""
        open_span = self.begin(name, parent=parent, **attrs)
        try:
            yield open_span
        finally:
            self.finish(open_span)


def span_id_of(parent: OpenSpan | Span | str | None) -> str | None:
    """Normalise the ``parent`` argument forms to an id (or ``None``)."""
    if parent is None or isinstance(parent, str):
        return parent
    return parent.span_id


def span_tree(
    spans: Iterator[Span] | list[Span],
) -> dict[str | None, list[Span]]:
    """Group spans by ``parent_id`` — the children table of the span tree.

    Roots are under the ``None`` key; within each group, spans keep their
    record order (which is completion order in a live stream).
    """
    children: dict[str | None, list[Span]] = {}
    for span in spans:
        children.setdefault(span.parent_id, []).append(span)
    return children


def read_telemetry(path: str) -> Iterator[dict[str, Any]]:
    """Iterate the records of a telemetry stream, validating the manifest.

    Yields each line's JSON object in file order.  The first line must be
    a v1 ``manifest`` record; a partial trailing line (a writer mid-flush)
    is silently ignored, so readers can tail a live file.
    """
    with open(path, "r", encoding="utf-8") as handle:
        first = True
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if first:
                    raise ConfigurationError(
                        f"{path}: not a telemetry stream (bad first line)"
                    )
                return  # torn trailing line of a live stream
            if first:
                validate_manifest(record, path=path)
                first = False
            yield record


def validate_manifest(record: Mapping[str, Any], path: str = "") -> None:
    """Raise unless ``record`` is a readable v1 manifest line."""
    where = f"{path}: " if path else ""
    if record.get("type") != "manifest":
        raise ConfigurationError(
            f"{where}telemetry streams must start with a manifest record "
            f"(got type={record.get('type')!r})"
        )
    if record.get("schema") != TELEMETRY_SCHEMA:
        raise ConfigurationError(
            f"{where}not a {TELEMETRY_SCHEMA} stream "
            f"(schema={record.get('schema')!r})"
        )
    if record.get("version") != TELEMETRY_VERSION:
        raise ConfigurationError(
            f"{where}unsupported telemetry version {record.get('version')!r};"
            f" this release reads version {TELEMETRY_VERSION}"
        )
