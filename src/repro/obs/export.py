"""Trace exporters: Chrome Trace Format and ASCII timelines.

Two human-facing views of the same event stream:

* :func:`to_chrome_trace` / :func:`write_chrome_trace` — the Trace Event
  Format consumed by Perfetto (https://ui.perfetto.dev) and Chrome's
  ``about:tracing``.  Each simulated entity becomes one named track; every
  trace event becomes a short slice on its owner's track, and each
  ``send`` → ``deliver`` pair becomes a flow arrow, so message causality is
  visible at a glance.  Simulation time (abstract units) is scaled into
  microseconds by ``time_scale`` (default: 1 time unit = 1 ms).
* :func:`ascii_timeline` — a per-node lane chart for the terminal, one
  character per time bucket, highest-significance event wins the cell.

Both consume any event iterable — a live memory-sink
:class:`~repro.sim.trace.TraceLog` or a loaded JSONL stream — and are wired
into the CLI as ``repro trace export``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable

from repro.obs.causal import owners_of
from repro.obs.codec import encode_value
from repro.sim import trace as tr
from repro.sim.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (trace -> obs)
    from repro.sim.trace import TraceEvent

#: Track id used for events that belong to no entity (network drops).
NETWORK_LANE = -1

#: Lane symbols in decreasing display priority: when several events share
#: an ASCII time bucket, the earliest entry in this table wins the cell.
#: Kind names are literals (not ``tr.JOIN`` etc.) so this module can load
#: while ``repro.sim.trace`` is still initializing.
SYMBOLS: tuple[tuple[str, str], ...] = (
    ("query_returned", "R"),
    ("query_issued", "Q"),
    ("bcast_delivered", "b"),
    ("bcast_issued", "B"),
    ("join", "J"),
    ("leave", "L"),
    ("fault_injected", "F"),
    ("fault_cleared", "f"),
    ("msg_lost", "!"),
    ("drop", "x"),
    ("deliver", "d"),
    ("send", "s"),
    ("timer", "t"),
)

_SYMBOL_FOR = dict(SYMBOLS)
_PRIORITY = {kind: i for i, (kind, _) in enumerate(SYMBOLS)}
#: Symbol for event kinds not in the table (protocol-specific milestones).
OTHER_SYMBOL = "o"
_OTHER_PRIORITY = len(SYMBOLS)


def _slice_name(event: TraceEvent) -> str:
    msg_kind = event.get("msg_kind")
    if msg_kind is not None:
        return f"{event.kind}:{msg_kind}"
    timer_name = event.get("name") if event.kind == tr.TIMER else None
    if timer_name is not None:
        return f"timer:{timer_name}"
    return event.kind


def _args(event: TraceEvent) -> dict[str, Any]:
    return {key: encode_value(value) for key, value in event.data.items()}


def to_chrome_trace(
    events: Iterable[TraceEvent],
    time_scale: float = 1000.0,
    slice_duration: float = 1.0,
) -> dict[str, Any]:
    """Render events as a Chrome Trace Format (Perfetto-viewable) object.

    Args:
        events: the trace stream, in record order.
        time_scale: microseconds per simulation time unit (default 1000,
            i.e. one simulation time unit displays as one millisecond).
        slice_duration: displayed slice length in microseconds (purely
            cosmetic; instant events are hard to see at 0 width).
    """
    trace_events: list[dict[str, Any]] = []
    lanes: set[int] = set()
    for event in events:
        owners = owners_of(event) or (NETWORK_LANE,)
        ts = event.time * time_scale
        for lane in owners:
            lanes.add(lane)
            trace_events.append({
                "name": _slice_name(event),
                "cat": event.kind,
                "ph": "X",
                "ts": ts,
                "dur": slice_duration,
                "pid": 0,
                "tid": lane,
                "args": _args(event),
            })
        msg_id = event.get("msg_id")
        if msg_id is None:
            continue
        if event.kind == tr.SEND:
            trace_events.append({
                "name": f"msg:{event.get('msg_kind')}",
                "cat": "message",
                "ph": "s",
                "id": msg_id,
                "ts": ts,
                "pid": 0,
                "tid": event["sender"],
            })
        elif event.kind == tr.DELIVER:
            trace_events.append({
                "name": f"msg:{event.get('msg_kind')}",
                "cat": "message",
                "ph": "f",
                "bp": "e",
                "id": msg_id,
                "ts": ts,
                "pid": 0,
                "tid": event["receiver"],
            })
    metadata: list[dict[str, Any]] = [{
        "name": "process_name",
        "ph": "M",
        "pid": 0,
        "args": {"name": "repro simulation"},
    }]
    for lane in sorted(lanes):
        label = "network" if lane == NETWORK_LANE else f"node {lane}"
        metadata.append({
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": lane,
            "args": {"name": label},
        })
        metadata.append({
            "name": "thread_sort_index",
            "ph": "M",
            "pid": 0,
            "tid": lane,
            "args": {"sort_index": lane},
        })
    return {
        "traceEvents": metadata + trace_events,
        "displayTimeUnit": "ms",
    }


def write_chrome_trace(
    events: Iterable[TraceEvent],
    path: str | Path,
    time_scale: float = 1000.0,
) -> int:
    """Write :func:`to_chrome_trace` output as JSON; returns the event
    count written (metadata records excluded)."""
    document = to_chrome_trace(events, time_scale=time_scale)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=None, separators=(",", ":"))
        handle.write("\n")
    return sum(1 for e in document["traceEvents"] if e.get("ph") != "M")


#: Chrome-trace process id for engine telemetry tracks (the simulation's
#: tracks live on pid 0, see :func:`to_chrome_trace`).
ENGINE_PID = 1

#: Track id for parent-process engine spans (run / dispatch / warm_pool).
COORDINATOR_LANE = 0


def merge_engine_trace(
    manifest: Any,
    spans: Iterable[Any],
    sim_events: "Iterable[TraceEvent] | None" = None,
    sim_seed: int | None = None,
    time_scale: float = 1000.0,
) -> dict[str, Any]:
    """Merge engine telemetry spans into a Chrome Trace Format object.

    Engine spans (run → dispatch → chunk → trial, wall-clock epoch
    seconds) become slices on process ``repro engine`` (pid
    :data:`ENGINE_PID`), one track per worker pid plus a ``coordinator``
    track for parent-side spans.  When ``sim_events`` is given (one
    trial's saved trace), its simulation-time tracks are laid alongside on
    pid 0, shifted so the trial starts under its engine ``trial`` span —
    the span whose ``seed`` attr equals ``sim_seed`` when given, else the
    first trial span — and a flow arrow connects the engine span down to
    the simulation's first event.
    """
    spans = list(spans)
    if not spans:
        raise ConfigurationError("telemetry stream holds no spans to export")
    base = getattr(manifest, "started", None)
    if base is None:
        base = min(span.t0 for span in spans)

    def lane_of(span: Any) -> int:
        worker = span.attrs.get("worker")
        if worker is not None and span.name in ("chunk", "trial"):
            return int(worker)
        return COORDINATOR_LANE

    trace_events: list[dict[str, Any]] = []
    lanes: set[int] = set()
    anchor: Any = None
    for span in spans:
        lane = lane_of(span)
        lanes.add(lane)
        args = {key: encode_value(value) for key, value in span.attrs.items()}
        args["span_id"] = span.span_id
        label = span.name
        if span.name == "trial" and "index" in span.attrs:
            label = f"trial {span.attrs['index']}"
        elif span.name == "chunk" and "trials" in span.attrs:
            label = f"chunk x{span.attrs['trials']}"
        trace_events.append({
            "name": label,
            "cat": f"engine:{span.name}",
            "ph": "X",
            "ts": (span.t0 - base) * 1e6,
            "dur": max(span.duration * 1e6, 1.0),
            "pid": ENGINE_PID,
            "tid": lane,
            "args": args,
        })
        if span.name == "trial":
            if anchor is None or (
                sim_seed is not None and span.attrs.get("seed") == sim_seed
                and anchor.attrs.get("seed") != sim_seed
            ):
                anchor = span

    metadata: list[dict[str, Any]] = [{
        "name": "process_name",
        "ph": "M",
        "pid": ENGINE_PID,
        "args": {"name": "repro engine"},
    }]
    for lane in sorted(lanes):
        label = "coordinator" if lane == COORDINATOR_LANE else f"worker {lane}"
        metadata.append({
            "name": "thread_name",
            "ph": "M",
            "pid": ENGINE_PID,
            "tid": lane,
            "args": {"name": label},
        })

    if sim_events is not None:
        sim_doc = to_chrome_trace(sim_events, time_scale=time_scale)
        offset = 0.0
        if anchor is not None:
            offset = (anchor.t0 - base) * 1e6
        first_sim: dict[str, Any] | None = None
        for event in sim_doc["traceEvents"]:
            if event.get("ph") == "M":
                metadata.append(event)
                continue
            event = dict(event)
            event["ts"] = event["ts"] + offset
            trace_events.append(event)
            if first_sim is None and event["ph"] == "X":
                first_sim = event
        if anchor is not None and first_sim is not None:
            # Flow arrow: the engine trial span caused this sim trace.
            flow_id = f"engine-trial-{anchor.attrs.get('index', '?')}"
            trace_events.append({
                "name": "trial trace",
                "cat": "engine-flow",
                "ph": "s",
                "id": flow_id,
                "ts": (anchor.t0 - base) * 1e6,
                "pid": ENGINE_PID,
                "tid": lane_of(anchor),
            })
            trace_events.append({
                "name": "trial trace",
                "cat": "engine-flow",
                "ph": "f",
                "bp": "e",
                "id": flow_id,
                "ts": first_sim["ts"],
                "pid": first_sim["pid"],
                "tid": first_sim["tid"],
            })

    return {
        "traceEvents": metadata + trace_events,
        "displayTimeUnit": "ms",
    }


def write_engine_trace(
    telemetry_path: str | Path,
    path: str | Path,
    sim_events: "Iterable[TraceEvent] | None" = None,
    sim_seed: int | None = None,
    time_scale: float = 1000.0,
) -> int:
    """Load a telemetry stream, merge (optionally with one trial's sim
    trace) via :func:`merge_engine_trace`, write the JSON; returns the
    event count written (metadata records excluded)."""
    from repro.engine.telemetry import load_telemetry

    manifest, spans, _ = load_telemetry(str(telemetry_path))
    document = merge_engine_trace(
        manifest, spans, sim_events=sim_events, sim_seed=sim_seed,
        time_scale=time_scale,
    )
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=None, separators=(",", ":"))
        handle.write("\n")
    return sum(1 for e in document["traceEvents"] if e.get("ph") != "M")


def ascii_timeline(
    events: Iterable[TraceEvent],
    width: int = 72,
    max_lanes: int = 40,
) -> str:
    """Per-node event lanes for the terminal.

    One row per entity (events with no owner land on the ``net`` lane),
    one column per time bucket; when a bucket holds several events the
    highest-priority symbol wins (see :data:`SYMBOLS`).
    """
    if width < 8:
        raise ConfigurationError(f"timeline width must be >= 8, got {width}")
    stream = list(events)
    if not stream:
        return "(empty trace)"
    t0 = min(e.time for e in stream)
    t1 = max(e.time for e in stream)
    span = max(t1 - t0, 1e-12)
    cells: dict[int, list[tuple[int, str]]] = {}
    for event in stream:
        col = min(width - 1, int((event.time - t0) / span * (width - 1)))
        priority = _PRIORITY.get(event.kind, _OTHER_PRIORITY)
        symbol = _SYMBOL_FOR.get(event.kind, OTHER_SYMBOL)
        for lane in owners_of(event) or (NETWORK_LANE,):
            row = cells.setdefault(lane, [(-1, "") for _ in range(width)])
            current = row[col]
            if not current[1] or priority < current[0]:
                row[col] = (priority, symbol)
    lanes = sorted(cells)
    clipped = 0
    if len(lanes) > max_lanes:
        clipped = len(lanes) - max_lanes
        lanes = lanes[:max_lanes]
    lines = [
        f"trace timeline: t={t0:.2f}..{t1:.2f}, {len(stream)} events, "
        f"{len(cells)} lanes"
    ]
    for lane in lanes:
        label = " net" if lane == NETWORK_LANE else f"{lane:>4}"
        body = "".join(symbol or "." for _, symbol in cells[lane])
        lines.append(f"{label} |{body}|")
    if clipped:
        lines.append(f"... {clipped} more lanes (raise max_lanes to see them)")
    legend = "  ".join(f"{symbol}={kind}" for kind, symbol in SYMBOLS)
    lines.append(f"legend: {legend}  {OTHER_SYMBOL}=other  .=idle")
    return "\n".join(lines)
