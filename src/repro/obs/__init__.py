"""Observability: metrics, trace sinks and profiling support.

``repro.obs`` is the layer that makes a run *inspectable*:

* :mod:`repro.obs.metrics` — a per-simulator registry of counters, gauges
  and fixed-bucket histograms, written by the scheduler, the network,
  churn models, the failure detector and the protocol base class, and
  embedded per trial in schema-v2 result documents;
* :mod:`repro.obs.sinks` — pluggable destinations for the trace-event
  stream (in-memory, JSONL streaming, counting, null), selected per trial
  with ``trace_sink=...`` or ``--trace-sink``;
* :mod:`repro.obs.codec` — the tuple/frozenset-preserving JSON codec
  shared by trace persistence and the streaming sink.

Import the blessed names from :mod:`repro.api`.
"""

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    Metrics,
    strip_timings,
)
from repro.obs.sinks import (
    SINK_NAMES,
    TRANSPORT_KINDS,
    CountingSink,
    JsonlStreamSink,
    MemorySink,
    NullSink,
    TraceSink,
    make_sink,
)

__all__ = [
    "Counter",
    "CountingSink",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "JsonlStreamSink",
    "MemorySink",
    "Metrics",
    "NullSink",
    "SINK_NAMES",
    "TRANSPORT_KINDS",
    "TraceSink",
    "make_sink",
    "strip_timings",
]
