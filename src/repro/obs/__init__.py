"""Observability: metrics, trace sinks and profiling support.

``repro.obs`` is the layer that makes a run *inspectable*:

* :mod:`repro.obs.metrics` — a per-simulator registry of counters, gauges
  and fixed-bucket histograms, written by the scheduler, the network,
  churn models, the failure detector and the protocol base class, and
  embedded per trial in schema-v2 result documents;
* :mod:`repro.obs.sinks` — pluggable destinations for the trace-event
  stream (in-memory, JSONL streaming, counting, null), selected per trial
  with ``trace_sink=...`` or ``--trace-sink``;
* :mod:`repro.obs.codec` — the tuple/frozenset-preserving JSON codec
  shared by trace persistence and the streaming sink;
* :mod:`repro.obs.causal` — the happens-before DAG over a trace and the
  per-query causal influence report;
* :mod:`repro.obs.check` — streaming trace invariant checkers and the
  :class:`~repro.obs.check.CheckingSink` decorator;
* :mod:`repro.obs.export` — Chrome Trace Format (Perfetto) and ASCII
  timeline exporters, including the engine-span merge behind
  ``repro trace export --engine``;
* :mod:`repro.obs.spans` — hierarchical wall-clock spans of the harness
  itself and the ``repro-run-telemetry`` v1 wire format (the substrate of
  :mod:`repro.engine.telemetry`).

Import the blessed names from :mod:`repro.api`.
"""

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    Metrics,
    strip_timings,
)
from repro.obs.sinks import (
    SINK_NAMES,
    TRANSPORT_KINDS,
    CountingSink,
    JsonlStreamSink,
    MemorySink,
    NullSink,
    TraceSink,
    make_sink,
)
from repro.obs.causal import (
    HappensBeforeDAG,
    InfluenceReport,
    owners_of,
    threads_of,
)
from repro.obs.check import (
    CheckingSink,
    DeliveryLivenessChecker,
    InvariantChecker,
    QueryQuiescenceChecker,
    SendLivenessChecker,
    TimeMonotonicityChecker,
    Violation,
    check_trace,
    default_checkers,
)
from repro.obs.export import (
    ascii_timeline,
    merge_engine_trace,
    to_chrome_trace,
    write_chrome_trace,
    write_engine_trace,
)
from repro.obs.spans import (
    SPAN_KINDS,
    TELEMETRY_SCHEMA,
    TELEMETRY_VERSION,
    Span,
    SpanTracer,
    read_telemetry,
    span_tree,
    validate_manifest,
)

__all__ = [
    "CheckingSink",
    "Counter",
    "CountingSink",
    "DEFAULT_BUCKETS",
    "DeliveryLivenessChecker",
    "Gauge",
    "HappensBeforeDAG",
    "Histogram",
    "InfluenceReport",
    "InvariantChecker",
    "JsonlStreamSink",
    "MemorySink",
    "Metrics",
    "NullSink",
    "QueryQuiescenceChecker",
    "SINK_NAMES",
    "SPAN_KINDS",
    "SendLivenessChecker",
    "Span",
    "SpanTracer",
    "TELEMETRY_SCHEMA",
    "TELEMETRY_VERSION",
    "TRANSPORT_KINDS",
    "TimeMonotonicityChecker",
    "TraceSink",
    "Violation",
    "ascii_timeline",
    "check_trace",
    "default_checkers",
    "make_sink",
    "merge_engine_trace",
    "owners_of",
    "read_telemetry",
    "span_tree",
    "strip_timings",
    "threads_of",
    "to_chrome_trace",
    "validate_manifest",
    "write_chrome_trace",
    "write_engine_trace",
]
