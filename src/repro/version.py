"""Package version lookup, shared by ``repro --version`` and the result
documents' provenance stamp.

The installed distribution metadata is authoritative; when the package is
run straight from a source tree without installation, the fallback keeps
the stamp meaningful instead of crashing provenance-aware consumers.
"""

from __future__ import annotations

#: Used when the ``repro`` distribution is not installed (e.g. running
#: from a source checkout via ``PYTHONPATH=src``).  Keep in sync with
#: ``pyproject.toml``.
FALLBACK_VERSION = "1.0.0"


def package_version() -> str:
    """The installed ``repro`` version, or the source-tree fallback."""
    try:
        from importlib.metadata import PackageNotFoundError, version
    except ImportError:  # pragma: no cover - importlib.metadata is 3.8+
        return FALLBACK_VERSION
    try:
        return version("repro")
    except PackageNotFoundError:
        return FALLBACK_VERSION
