"""Fault-tolerant wave: the one-time query without a perfect detector.

The plain :class:`~repro.protocols.one_time_query.WaveNode` relies on
neighbor-leave notifications — a perfect failure detector — to stop waiting
for departed children.  When departures are *silent*
(``Simulator(notify_leaves=False)``), an echo-mode wave deadlocks the first
time a pending child crashes.

:class:`FaultTolerantWaveNode` composes the wave with the heartbeat
detector: a suspected child is treated exactly like a departed one (its
echo is given up on).  The price of losing the perfect detector is visible
in two ways:

* **latency** — the query stalls for roughly the detection timeout whenever
  a child crashes mid-wave (E19 measures the inflation);
* **accuracy risk** — a *falsely* suspected child's subtree is abandoned
  even though it may still deliver; with unbounded delays this re-opens the
  completeness hole that timeouts always do (the E6b phenomenon one layer
  down).

This is the paper's knowledge dimension applied to *time*: the perfect
detector is a piece of global knowledge, and heartbeats are the purchase
price of doing without it.
"""

from __future__ import annotations

from typing import Any

from repro.failure.detector import HeartbeatNode
from repro.protocols.one_time_query import WaveNode
from repro.sim.messages import Message


class FaultTolerantWaveNode(WaveNode, HeartbeatNode):
    """A wave node that unblocks on heartbeat suspicion instead of (or in
    addition to) leave notifications.

    Args:
        value: the local value.
        period: heartbeat period.
        timeout: silence threshold for suspicion (must exceed the period).
    """

    def __init__(self, value: Any = None, period: float = 1.0,
                 timeout: float = 3.0) -> None:
        # The MRO runs WaveNode.__init__ -> HeartbeatNode.__init__ with the
        # detector's defaults; fix the timing parameters afterwards (the
        # validation in HeartbeatNode.__init__ already ran on defaults, so
        # re-validate here).
        super().__init__(value)
        if period <= 0 or timeout <= period:
            from repro.sim.errors import ConfigurationError

            raise ConfigurationError(
                f"need 0 < period < timeout, got period={period}, "
                f"timeout={timeout}"
            )
        self.period = period
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Cooperative event dispatch (both parents are event consumers)
    # ------------------------------------------------------------------

    def on_start(self) -> None:
        HeartbeatNode.on_start(self)

    def on_message(self, message: Message) -> None:
        WaveNode.on_message(self, message)
        HeartbeatNode.on_message(self, message)

    def on_timer(self, name: str, payload: Any) -> None:
        WaveNode.on_timer(self, name, payload)
        HeartbeatNode.on_timer(self, name, payload)

    def on_neighbor_join(self, pid: int) -> None:
        HeartbeatNode.on_neighbor_join(self, pid)

    def on_neighbor_leave(self, pid: int) -> None:
        # With notifications enabled both layers react; silent mode never
        # calls this.
        WaveNode.on_neighbor_leave(self, pid)
        HeartbeatNode.on_neighbor_leave(self, pid)

    # ------------------------------------------------------------------
    # Detector output drives the wave
    # ------------------------------------------------------------------

    def on_suspect(self, pid: int) -> None:
        """A suspected child is treated as departed: stop waiting for it."""
        for state in list(self._states.values()):
            if state.closed:
                continue
            if pid in state.pending:
                state.pending.discard(pid)
                self._check_complete(state)
