"""Expanding-ring search: buying back knowledge with feedback.

A querier in ``G_local`` has no usable TTL — but it can *probe*: launch a
wave with TTL 1, then 2, 4, 8, ..., and stop when two consecutive probes
return the same contributor set.  In a static system this terminates with
the complete answer without ever knowing the diameter: the doubling TTL
eventually covers the graph and the stability rule detects it.

The protocol is the constructive counterpoint to the E7 ablation: it trades
messages (each probe refloods) and latency (several rounds) for the missing
global parameter, and its stability rule is still a *heuristic* under
churn — the growth adversary keeps the frontier moving so the probe
sequence either never stabilises or stabilises too early, which is exactly
the E6 impossibility reappearing one level up.
"""

from __future__ import annotations

from typing import Any

from repro.core.aggregates import Aggregate, SET
from repro.protocols.one_time_query import WaveNode
from repro.sim.errors import ProtocolError


class ExpandingRingNode(WaveNode):
    """A wave node whose querier side probes with doubling TTLs."""

    def __init__(self, value: Any = None) -> None:
        super().__init__(value)
        self.probe_rounds = 0

    def issue_adaptive_query(
        self,
        aggregate: Aggregate = SET,
        initial_ttl: int = 1,
        stability_rounds: int = 2,
        max_ttl: int = 1 << 20,
    ) -> int:
        """Launch an adaptive (expanding-ring) query; returns the query id.

        Args:
            aggregate: the aggregate to compute.
            initial_ttl: first probe radius.
            stability_rounds: consecutive probes with identical contributor
                sets required to stop.
            max_ttl: safety cap on the probe radius (a protocol with no cap
                cannot guarantee termination against unbounded growth).
        """
        if initial_ttl < 1:
            raise ProtocolError(f"initial ttl must be >= 1, got {initial_ttl}")
        if stability_rounds < 2:
            raise ProtocolError(
                f"stability needs >= 2 rounds, got {stability_rounds}"
            )
        qid = self.announce_query(aggregate)
        issued_at = self.now
        history: list[frozenset[int]] = []

        def probe(ttl: int) -> None:
            self.probe_rounds += 1
            self.record("probe", qid=qid, ttl=ttl)
            self.start_wave(
                self.sim.new_qid(), ttl=ttl,
                on_complete=lambda contributions: arrived(ttl, contributions),
            )

        def arrived(ttl: int, contributions: dict[int, Any]) -> None:
            history.append(frozenset(contributions))
            stable = (
                len(history) >= stability_rounds
                and all(
                    h == history[-1] for h in history[-stability_rounds:]
                )
            )
            if stable or ttl >= max_ttl:
                self.resolve_query(qid, aggregate, contributions, issued_at)
                return
            probe(min(max_ttl, ttl * 2))

        probe(initial_ttl)
        return qid
