"""Extrema propagation: a duplicate-insensitive census.

The third protocol family for aggregation in dynamic systems.  Each process
draws a private vector of ``k`` exponential(1) variates at birth; neighbors
periodically exchange vectors and keep the coordinate-wise minimum.  Since
``min`` is idempotent, re-delivery and re-counting are harmless — no
contributor tracking, no mass conservation.  After the minima stabilise,

    n̂ = (k - 1) / sum(min-vector)

is an unbiased estimate of the number of processes whose draws ever mixed
in (Baquero-style extrema propagation).

Against the other families the trade is different again: the wave is exact
but brittle; push-sum degrades gracefully but *loses* mass when members
leave (undercounts); extrema propagation is approximate and *never forgets*
— a departed process's minima keep circulating, so under churn it estimates
"everyone seen so far" rather than "everyone here now" (it overcounts).
The E11 bench measures all three biases side by side.
"""

from __future__ import annotations

import math
from typing import Any

from repro.protocols.base import AggregatingProcess
from repro.sim.errors import ConfigurationError
from repro.sim.messages import Message

EXCHANGE = "EX_VECTOR"

#: Trace event written when a census estimate is read off a node.
CENSUS_ESTIMATE = "census_estimate"


def estimate_from_vector(vector: list[float]) -> float:
    """The extrema-propagation estimator ``(k - 1) / sum(vector)``."""
    k = len(vector)
    if k < 2:
        raise ConfigurationError(f"need k >= 2 coordinates, got {k}")
    total = sum(vector)
    if total <= 0:
        return float("inf")
    return (k - 1) / total


class ExtremaNode(AggregatingProcess):
    """A process running extrema-propagation census rounds.

    Args:
        value: local value (unused by the census, kept for API symmetry).
        k: sketch width — more coordinates, tighter estimates; the relative
            standard error is roughly ``1 / sqrt(k - 2)``.
        period: time between push rounds.
    """

    def __init__(self, value: Any = None, k: int = 64, period: float = 1.0) -> None:
        super().__init__(value)
        if k < 2:
            raise ConfigurationError(f"sketch width must be >= 2, got {k}")
        if period <= 0:
            raise ConfigurationError(f"period must be > 0, got {period}")
        self.k = k
        self.period = period
        self._vector: list[float] = []
        self.rounds_run = 0
        self.updates_absorbed = 0

    # ------------------------------------------------------------------
    # Estimate
    # ------------------------------------------------------------------

    @property
    def vector(self) -> list[float]:
        return list(self._vector)

    @property
    def estimate(self) -> float:
        """Current census estimate from the local min-vector."""
        return estimate_from_vector(self._vector)

    def read_estimate(self) -> float:
        """Read and trace the current estimate."""
        value = self.estimate
        self.record(CENSUS_ESTIMATE, estimate=value, rounds=self.rounds_run)
        return value

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------

    def on_start(self) -> None:
        self._vector = [self.rng.expovariate(1.0) for _ in range(self.k)]
        self.set_timer(self.rng.uniform(0, self.period), "ex-round", None)

    def on_timer(self, name: str, payload: Any) -> None:
        if name != "ex-round":
            return
        self.rounds_run += 1
        self.broadcast(EXCHANGE, vector=list(self._vector))
        self.set_timer(self.period, "ex-round", None)

    def on_message(self, message: Message) -> None:
        if message.kind != EXCHANGE:
            return
        incoming = message.payload["vector"]
        changed = False
        for i, candidate in enumerate(incoming):
            if candidate < self._vector[i]:
                self._vector[i] = candidate
                changed = True
        if changed:
            self.updates_absorbed += 1

    def on_neighbor_join(self, pid: int) -> None:
        # Greet newcomers immediately so they converge within one hop-time
        # instead of waiting for the next scheduled round.
        if self._vector:
            self.send(pid, EXCHANGE, vector=list(self._vector))


def expected_relative_error(k: int) -> float:
    """First-order relative standard error of the estimator, ``1/sqrt(k-2)``."""
    if k <= 2:
        return math.inf
    return 1.0 / math.sqrt(k - 2)
