"""Continuous tree aggregation with epoch-based repair.

The one-time query answers once; a monitoring sink usually wants the
aggregate *continuously*.  This protocol maintains a BFS spanning tree
rooted at the sink and convergecasts partial sums along it:

* the sink periodically floods a ``BUILD(epoch, level)`` wave; each process
  adopts the lowest-level sender of the newest epoch as its parent
  (rebuild-by-epoch is the repair mechanism — a broken tree heals on the
  next wave, so the repair latency is the rebuild period);
* every report period each process sends ``REPORT(epoch, sum, count)`` for
  its whole subtree to its parent, computed from its own value plus the
  freshest reports of its current children;
* the sink's running estimate is its own value plus its children's subtree
  reports — readable at any instant, with staleness bounded by the tree
  depth times the report period.

Under churn the estimate is *approximately current*: departures are purged
from caches via neighbor-leave notifications, newcomers are absorbed on the
next build wave.  The E12 bench measures estimate error versus churn rate
and rebuild period — the knob a deployment actually tunes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.protocols.base import AggregatingProcess
from repro.sim.errors import ConfigurationError
from repro.sim.messages import Message

BUILD = "TREE_BUILD"
REPORT = "TREE_REPORT"

#: Trace event written when the sink's estimate is read.
TREE_ESTIMATE = "tree_estimate"


@dataclass
class _ChildReport:
    epoch: int
    subtree_sum: float
    subtree_count: int


class TreeAggregationNode(AggregatingProcess):
    """A process participating in continuous tree aggregation.

    Exactly one process per system should be constructed with
    ``is_sink=True``; it drives the build waves and holds the estimate.

    Args:
        value: the numeric local value being aggregated.
        is_sink: whether this process is the aggregation root.
        rebuild_period: time between build waves (sink only).
        report_period: time between subtree reports (every process).
    """

    def __init__(
        self,
        value: float = 0.0,
        is_sink: bool = False,
        rebuild_period: float = 10.0,
        report_period: float = 1.0,
    ) -> None:
        super().__init__(value)
        if rebuild_period <= 0 or report_period <= 0:
            raise ConfigurationError("periods must be > 0")
        self.is_sink = is_sink
        self.rebuild_period = rebuild_period
        self.report_period = report_period
        self.epoch = -1
        self.parent: int | None = None
        self.level = 0 if is_sink else -1
        self._children: dict[int, _ChildReport] = {}
        self.builds_started = 0
        self.reports_sent = 0

    # ------------------------------------------------------------------
    # Estimate (sink side)
    # ------------------------------------------------------------------

    def subtree_totals(self) -> tuple[float, int]:
        """(sum, count) over this node's subtree per its freshest caches.

        Reports from the current epoch or the immediately preceding one are
        counted: the one-epoch grace window keeps the estimate steady while
        a new tree's report pipeline fills.  The cost is up to one epoch of
        staleness after a reparenting — including transient *over*-counting
        when a subtree's old parent still caches its previous-epoch report
        while the new parent already holds the fresh one.
        """
        total = float(self.value)
        count = 1
        for report in self._children.values():
            if report.epoch >= self.epoch - 1:
                total += report.subtree_sum
                count += report.subtree_count
        return total, count

    @property
    def estimate_sum(self) -> float:
        return self.subtree_totals()[0]

    @property
    def estimate_count(self) -> int:
        return self.subtree_totals()[1]

    @property
    def estimate_avg(self) -> float:
        total, count = self.subtree_totals()
        return total / count

    def read_estimate(self) -> tuple[float, int]:
        """Read and trace the sink's current (sum, count) estimate."""
        total, count = self.subtree_totals()
        self.record(TREE_ESTIMATE, total=total, count=count, epoch=self.epoch)
        return total, count

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------

    def on_start(self) -> None:
        if self.is_sink:
            self._start_build()
        self.set_timer(
            self.rng.uniform(0, self.report_period), "tree-report", None
        )

    def _start_build(self) -> None:
        self.epoch += 1
        self.builds_started += 1
        self.level = 0
        self.parent = None
        self._purge_stale()
        self.broadcast(BUILD, epoch=self.epoch, level=0)
        self.set_timer(self.rebuild_period, "tree-build", None)

    def _purge_stale(self) -> None:
        """Drop cache entries too old to ever be counted again."""
        cutoff = self.epoch - 1
        for child in [c for c, r in self._children.items() if r.epoch < cutoff]:
            del self._children[child]

    def on_timer(self, name: str, payload: Any) -> None:
        if name == "tree-build" and self.is_sink:
            self._start_build()
        elif name == "tree-report":
            self._send_report()
            self.set_timer(self.report_period, "tree-report", None)

    def _send_report(self) -> None:
        if self.is_sink or self.parent is None:
            return
        if self.parent not in self.neighbors():
            self.parent = None  # orphaned until the next build wave
            return
        total, count = self.subtree_totals()
        self.send(
            self.parent, REPORT,
            epoch=self.epoch, subtree_sum=total, subtree_count=count,
        )
        self.reports_sent += 1

    def on_message(self, message: Message) -> None:
        if message.kind == BUILD:
            self._handle_build(message)
        elif message.kind == REPORT:
            self._handle_report(message)

    def _handle_build(self, message: Message) -> None:
        if self.is_sink:
            return
        epoch = message.payload["epoch"]
        level = message.payload["level"]
        if epoch <= self.epoch:
            # First arrival wins within an epoch: re-parenting mid-epoch
            # would leave the old parent's cached report in place and
            # double-count this subtree at the sink.
            return
        self.epoch = epoch
        self._purge_stale()
        self.parent = message.sender
        self.level = level + 1
        self.broadcast(BUILD, exclude=message.sender, epoch=epoch, level=self.level)

    def _handle_report(self, message: Message) -> None:
        epoch = message.payload["epoch"]
        cached = self._children.get(message.sender)
        if cached is not None and cached.epoch > epoch:
            return  # never replace fresher information with staler
        self._children[message.sender] = _ChildReport(
            epoch=epoch,
            subtree_sum=message.payload["subtree_sum"],
            subtree_count=message.payload["subtree_count"],
        )

    def on_neighbor_leave(self, pid: int) -> None:
        self._children.pop(pid, None)
        if self.parent == pid:
            self.parent = None  # wait for the next build wave
