"""Request/collect: the baseline protocol for complete knowledge.

In ``G_complete`` every process can address every member directly.  The
querier sends a request to each current member and collects responses; a
member that departs before responding is struck from the expected set via
the neighbor-leave notification (in the complete graph, every membership
change is visible to everyone).  An optional deadline returns a partial
result if responses stall — the knob that turns the protocol from the
static-system setting (no deadline needed) into a best-effort one under
churn (E10's conditional entries).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.aggregates import Aggregate, SET
from repro.protocols.base import AggregatingProcess
from repro.sim.messages import Message

REQUEST = "RC_REQUEST"
RESPONSE = "RC_RESPONSE"


@dataclass
class _PendingQuery:
    qid: int
    aggregate: Aggregate
    issued_at: float
    expected: set[int]
    contributions: dict[int, Any]
    deadline_timer: int | None = None
    done: bool = False
    extra: dict[str, Any] = field(default_factory=dict)


class RequestCollectNode(AggregatingProcess):
    """A member that answers requests and can itself issue queries."""

    def __init__(self, value: Any = None) -> None:
        super().__init__(value)
        self._pending: dict[int, _PendingQuery] = {}

    # ------------------------------------------------------------------
    # Querier side
    # ------------------------------------------------------------------

    def issue_query(
        self, aggregate: Aggregate = SET, deadline: float | None = None
    ) -> int:
        """Ask every current member for its value; returns the query id.

        Args:
            aggregate: which aggregate to compute.
            deadline: optional time budget after which a partial result is
                returned; ``None`` waits for every (still-present) member.
        """
        qid = self.announce_query(aggregate)
        targets = self.neighbors()
        query = _PendingQuery(
            qid=qid,
            aggregate=aggregate,
            issued_at=self.now,
            expected=set(targets),
            contributions={self.pid: self.value},
        )
        self._pending[qid] = query
        for target in sorted(targets):
            self.send(target, REQUEST, qid=qid)
        if deadline is not None:
            query.deadline_timer = self.set_timer(deadline, "rc-deadline", qid)
        self._maybe_finish(query)
        return qid

    def _maybe_finish(self, query: _PendingQuery) -> None:
        if query.done or query.expected:
            return
        self._finish(query)

    def _finish(self, query: _PendingQuery) -> None:
        query.done = True
        if query.deadline_timer is not None:
            self.cancel_timer(query.deadline_timer)
        self.resolve_query(
            query.qid, query.aggregate, query.contributions, query.issued_at
        )
        del self._pending[query.qid]

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------

    def on_message(self, message: Message) -> None:
        if message.kind == REQUEST:
            # Respond only if the requester is still reachable.
            if message.sender in self.neighbors():
                self.send(
                    message.sender,
                    RESPONSE,
                    qid=message.payload["qid"],
                    value=self.value,
                )
        elif message.kind == RESPONSE:
            query = self._pending.get(message.payload["qid"])
            if query is None or query.done:
                return
            query.contributions.setdefault(message.sender, message.payload["value"])
            query.expected.discard(message.sender)
            self._maybe_finish(query)

    def on_timer(self, name: str, payload: Any) -> None:
        if name == "rc-deadline":
            query = self._pending.get(payload)
            if query is not None and not query.done:
                self._finish(query)

    def on_neighbor_leave(self, pid: int) -> None:
        # A departed member is, by definition, not in the stable core of any
        # window extending past its departure; stop waiting for it.
        for query in list(self._pending.values()):
            if pid in query.expected:
                query.expected.discard(pid)
                self._maybe_finish(query)
