"""Dissemination protocols: one-shot flood vs continuous anti-entropy.

Two ways to get a value to everyone, mirroring the query protocols'
trade-off between sharp one-shot semantics and eventual semantics:

* :class:`FloodNode` — a single flooding wave.  Every process forwards each
  broadcast once.  Deterministic and cheap, but a one-shot: a process that
  joins after the wave passed, or that was behind a broken link during it,
  never learns the value.
* :class:`AntiEntropyNode` — flooding *plus* periodic digest reconciliation
  with a random neighbor: "here is the set of broadcast ids I hold" →
  "send me the ones I am missing".  Coverage keeps improving after the
  wave, so under churn the protocol achieves dissemination in the eventual
  sense — the positive face of the paper's finite-arrival/local-knowledge
  entry (E16 measures the contrast).
"""

from __future__ import annotations

from typing import Any

from repro.core.dissemination_spec import BCAST_DELIVERED, BCAST_ISSUED
from repro.protocols.base import AggregatingProcess
from repro.sim.errors import ConfigurationError
from repro.sim.messages import Message

FLOOD = "DIS_FLOOD"
DIGEST = "DIS_DIGEST"
MISSING = "DIS_MISSING"


class FloodNode(AggregatingProcess):
    """One-shot flooding dissemination."""

    def __init__(self, value: Any = None) -> None:
        super().__init__(value)
        self._held: dict[int, Any] = {}

    # ------------------------------------------------------------------
    # API
    # ------------------------------------------------------------------

    def holds(self, bid: int) -> bool:
        """Whether this process has the value of broadcast ``bid``."""
        return bid in self._held

    def held_value(self, bid: int) -> Any:
        return self._held[bid]

    def broadcast_value(self, value: Any) -> int:
        """Originate a broadcast; returns the broadcast id."""
        bid = self.sim.new_qid()
        self.record(BCAST_ISSUED, bid=bid, value=value)
        self._learn(bid, value, forward_exclude=None)
        return bid

    # ------------------------------------------------------------------
    # Machinery
    # ------------------------------------------------------------------

    def _learn(self, bid: int, value: Any, forward_exclude: int | None) -> None:
        if bid in self._held:
            return
        self._held[bid] = value
        self.record(BCAST_DELIVERED, bid=bid)
        self.broadcast(FLOOD, exclude=forward_exclude, bid=bid, value=value)

    def on_message(self, message: Message) -> None:
        if message.kind == FLOOD:
            self._learn(
                message.payload["bid"], message.payload["value"],
                forward_exclude=message.sender,
            )


class AntiEntropyNode(FloodNode):
    """Flooding plus periodic digest reconciliation.

    Args:
        value: local value (API symmetry).
        period: time between digest exchanges with a random neighbor.
    """

    def __init__(self, value: Any = None, period: float = 2.0) -> None:
        super().__init__(value)
        if period <= 0:
            raise ConfigurationError(f"period must be > 0, got {period}")
        self.period = period
        self.reconciliations = 0

    def on_start(self) -> None:
        self.set_timer(self.rng.uniform(0, self.period), "ae-round", None)

    def on_timer(self, name: str, payload: Any) -> None:
        if name != "ae-round":
            return
        neighbors = sorted(self.neighbors())
        if neighbors:
            target = self.rng.choice(neighbors)
            self.send(target, DIGEST, held=sorted(self._held))
        self.set_timer(self.period, "ae-round", None)

    def on_message(self, message: Message) -> None:
        if message.kind == DIGEST:
            self._handle_digest(message)
        elif message.kind == MISSING:
            self._handle_missing(message)
        else:
            super().on_message(message)

    def _handle_digest(self, message: Message) -> None:
        """Push what the peer lacks; ask for what we lack."""
        peer_held = set(message.payload["held"])
        if message.sender not in self.neighbors():
            return
        they_lack = sorted(set(self._held) - peer_held)
        if they_lack:
            self.send(
                message.sender, MISSING,
                items=[(bid, self._held[bid]) for bid in they_lack],
            )
            self.reconciliations += 1
        we_lack = peer_held - set(self._held)
        if we_lack:
            # Ask by advertising our digest back (the peer will push).
            self.send(message.sender, DIGEST, held=sorted(self._held))

    def _handle_missing(self, message: Message) -> None:
        for bid, value in message.payload["items"]:
            if bid not in self._held:
                self._held[bid] = value
                self.record(BCAST_DELIVERED, bid=bid)
