"""The one-time query wave protocol.

The paper's canonical problem solved by the canonical technique: a
query wave floods outward from the querier, an echo convergecast folds the
values back along the spanning tree the wave carves out.  One protocol, two
termination disciplines — the two halves of the geography dimension:

* **TTL mode** (``ttl`` given): the wave stops after ``ttl`` hops.  This is
  the open-loop discipline that *consumes* global knowledge: with
  ``G_known_diameter`` set ``ttl = D``; with ``G_known_size`` set
  ``ttl = N - 1``.  An undersized TTL silently truncates the wave — the E7
  diagonalisation.
* **Echo mode** (``ttl=None``): the wave floods without bound and relies
  purely on the closed-loop echo for termination.  No global parameter is
  needed, but the discipline leans on reliable channels and neighbor-leave
  notifications; under churn a relay's departure can orphan a whole visited
  subtree (the contributions are lost, completeness suffers — E4/E5/E6).

An optional querier ``deadline`` adds the quiescence-style fallback: return
whatever has been folded in when the budget expires.

Duplicate suppression follows the classical propagation-of-information-with-
feedback scheme: the first copy of the query adopts the sender as parent;
every later copy is answered immediately with a DECLINE so the sender never
waits on a non-child.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.aggregates import Aggregate, SET
from repro.protocols.base import AggregatingProcess, merge_contributions
from repro.sim.messages import Message

WAVE_QUERY = "WAVE_QUERY"
WAVE_ECHO = "WAVE_ECHO"
WAVE_DECLINE = "WAVE_DECLINE"

#: Payload encoding of "no TTL bound" (echo mode).
UNBOUNDED = -1


@dataclass
class _WaveState:
    """Per-wave state held by each visited node."""

    qid: int
    parent: int | None
    pending: set[int]
    contributions: dict[int, Any]
    closed: bool = False
    # Origin-only: called with the folded contributions when the wave
    # completes (or the deadline fires).
    on_complete: Any = None
    deadline_timer: int | None = None
    extra: dict[str, Any] = field(default_factory=dict)

    @property
    def is_origin(self) -> bool:
        return self.on_complete is not None


class WaveNode(AggregatingProcess):
    """A process speaking the wave protocol (relay and/or querier)."""

    def __init__(self, value: Any = None) -> None:
        super().__init__(value)
        self._states: dict[int, _WaveState] = {}
        #: Count of subtrees lost because the parent departed before the
        #: echo could be reported (diagnostic, also traced).
        self.orphaned_subtrees = 0

    # ------------------------------------------------------------------
    # Querier side
    # ------------------------------------------------------------------

    def issue_query(
        self,
        aggregate: Aggregate = SET,
        ttl: int | None = None,
        deadline: float | None = None,
    ) -> int:
        """Launch a wave; returns the query id.

        Args:
            aggregate: the aggregate to compute.
            ttl: hop budget (open-loop mode), or ``None`` for echo mode.
            deadline: optional time budget for a partial return.
        """
        qid = self.announce_query(aggregate)
        issued_at = self.now

        def resolve(contributions: dict[int, Any]) -> None:
            self.resolve_query(qid, aggregate, contributions, issued_at)

        self.start_wave(qid, ttl=ttl, deadline=deadline, on_complete=resolve)
        return qid

    def start_wave(
        self,
        qid: int,
        ttl: int | None = None,
        deadline: float | None = None,
        on_complete: Any = None,
    ) -> None:
        """Launch a raw wave (no query announcement) with a completion
        callback.

        This is the building block composite protocols reuse — e.g. the
        expanding-ring querier launches one wave per probe round and only
        announces the logical query once.
        """
        state = _WaveState(
            qid=qid,
            parent=None,
            pending=set(),
            contributions={self.pid: self.value},
            on_complete=on_complete or (lambda contributions: None),
        )
        self._states[qid] = state
        wire_ttl = UNBOUNDED if ttl is None else ttl
        if wire_ttl != 0:
            child_ttl = UNBOUNDED if wire_ttl == UNBOUNDED else wire_ttl - 1
            for neighbor in sorted(self.neighbors()):
                self.send(neighbor, WAVE_QUERY, qid=qid, ttl=child_ttl, hops=1)
                state.pending.add(neighbor)
        if deadline is not None:
            state.deadline_timer = self.set_timer(deadline, "wave-deadline", qid)
        self._check_complete(state)

    # ------------------------------------------------------------------
    # Message handlers
    # ------------------------------------------------------------------

    def on_message(self, message: Message) -> None:
        if message.kind == WAVE_QUERY:
            self._handle_query(message)
        elif message.kind == WAVE_ECHO:
            self._handle_echo(message)
        elif message.kind == WAVE_DECLINE:
            self._handle_decline(message)

    def _handle_query(self, message: Message) -> None:
        qid = message.payload["qid"]
        ttl = message.payload["ttl"]
        if qid in self._states:
            if message.sender in self.neighbors():
                self.send(message.sender, WAVE_DECLINE, qid=qid)
            return
        state = _WaveState(
            qid=qid,
            parent=message.sender,
            pending=set(),
            contributions={self.pid: self.value},
        )
        self._states[qid] = state
        if ttl != 0:
            child_ttl = UNBOUNDED if ttl == UNBOUNDED else ttl - 1
            # hop depth travels with the query so the network can histogram
            # deliveries by hop count (obs: net.delivery_hops).
            hops = message.payload.get("hops", 1)
            for neighbor in sorted(self.neighbors() - {message.sender}):
                self.send(neighbor, WAVE_QUERY, qid=qid, ttl=child_ttl, hops=hops + 1)
                state.pending.add(neighbor)
        self._check_complete(state)

    def _handle_echo(self, message: Message) -> None:
        state = self._states.get(message.payload["qid"])
        if state is None or state.closed:
            return
        merge_contributions(state.contributions, message.payload["contributions"])
        state.pending.discard(message.sender)
        self._check_complete(state)

    def _handle_decline(self, message: Message) -> None:
        state = self._states.get(message.payload["qid"])
        if state is None or state.closed:
            return
        state.pending.discard(message.sender)
        self._check_complete(state)

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------

    def _check_complete(self, state: _WaveState) -> None:
        if state.closed or state.pending:
            return
        self._close(state)

    def _close(self, state: _WaveState) -> None:
        """Fold this node's subtree result upward (or resolve at origin)."""
        state.closed = True
        if state.is_origin:
            if state.deadline_timer is not None:
                self.cancel_timer(state.deadline_timer)
                state.deadline_timer = None
            unreachable = state.extra.get("unreachable")
            if unreachable:
                # Degraded completion: the delivery layer gave up on some
                # children, so this answer is explicitly partial.  The
                # engine pairs this with a full CoverageReport.
                self.record(
                    "query_partial",
                    qid=state.qid,
                    unreachable=tuple(sorted(unreachable)),
                )
            state.on_complete(dict(state.contributions))
            return
        if state.parent is not None and state.parent in self.neighbors():
            self.send(
                state.parent,
                WAVE_ECHO,
                qid=state.qid,
                contributions=sorted(state.contributions.items()),
            )
        else:
            # The parent departed: this entire visited subtree's values are
            # lost to the query. This is the churn failure mode E4/E5 count.
            self.orphaned_subtrees += 1
            self.record(
                "orphaned_echo",
                qid=state.qid,
                lost=len(state.contributions),
            )

    # ------------------------------------------------------------------
    # Environment events
    # ------------------------------------------------------------------

    def on_timer(self, name: str, payload: Any) -> None:
        if name == "wave-deadline":
            state = self._states.get(payload)
            if state is not None and not state.closed:
                state.pending.clear()
                state.deadline_timer = None
                self._close(state)

    def on_neighbor_leave(self, pid: int) -> None:
        for state in list(self._states.values()):
            if state.closed:
                continue
            if pid in state.pending:
                # The child departed; it can no longer echo. Its values (if
                # it had folded any) are lost — count it as answered-empty.
                state.pending.discard(pid)
                self._check_complete(state)

    def on_delivery_abandoned(self, message: Message) -> None:
        # The resilience layer gave up on one of our wave messages: stop
        # waiting on the unreachable peer instead of hanging.  Only the
        # *sender* learns of abandonment; a peer stuck waiting on us is
        # unblocked by its own failure detector, never by this hook.
        qid = message.payload.get("qid")
        if qid is None:
            return
        state = self._states.get(qid)
        if state is None:
            return
        if message.kind == WAVE_ECHO:
            # Our folded subtree never reached the parent — the same loss
            # mode as a parent departure, discovered the slow way.
            self.orphaned_subtrees += 1
            self.record("orphaned_echo", qid=qid, lost=len(state.contributions))
            return
        if state.closed:
            return
        if message.kind == WAVE_QUERY and message.receiver in state.pending:
            state.pending.discard(message.receiver)
            state.extra.setdefault("unreachable", set()).add(message.receiver)
            self.record("wave_unreachable", qid=qid, target=message.receiver)
            self._check_complete(state)
