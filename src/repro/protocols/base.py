"""Common machinery for aggregation protocols.

Every query protocol works with :class:`AggregatingProcess` nodes.  The base
class owns the bookkeeping the specification checker relies on: queries are
announced with a ``query_issued`` trace event and resolved with a
``query_returned`` event listing exactly which entities' values were
counted.  Protocol correctness is then judged by
:class:`repro.core.spec.OneTimeQuerySpec` against the same trace — protocols
cannot grade their own homework.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.aggregates import Aggregate
from repro.core.spec import QUERY_ISSUED, QUERY_RETURNED
from repro.sim.node import Process


@dataclass
class QueryResult:
    """The querier-local outcome of one query."""

    qid: int
    aggregate: Aggregate
    contributions: dict[int, Any]
    issued_at: float
    returned_at: float
    result: Any = field(default=None)

    @property
    def latency(self) -> float:
        return self.returned_at - self.issued_at

    @property
    def contributor_count(self) -> int:
        return len(self.contributions)


class AggregatingProcess(Process):
    """A process holding a value and able to act as querier or relay.

    Attributes:
        results: the :class:`QueryResult` objects of queries this process
            issued and completed, in completion order.
    """

    def __init__(self, value: Any = None) -> None:
        super().__init__(value)
        self.results: list[QueryResult] = []

    # ------------------------------------------------------------------
    # Query bookkeeping (used by protocol subclasses)
    # ------------------------------------------------------------------

    def announce_query(self, aggregate: Aggregate) -> int:
        """Allocate a query id and record the issue event; returns the qid."""
        qid = self.sim.new_qid()
        self.sim.metrics.inc("query.issued")
        self.record(QUERY_ISSUED, qid=qid, aggregate=aggregate.name)
        return qid

    def resolve_query(
        self,
        qid: int,
        aggregate: Aggregate,
        contributions: dict[int, Any],
        issued_at: float,
    ) -> QueryResult:
        """Compute the aggregate, record the return event, store the result.

        ``contributions`` maps entity id -> contributed value; the querier's
        own value is expected to be among them, so the collection is never
        empty and every aggregate is well-defined.
        """
        result_value = aggregate.of(
            contributions[pid] for pid in sorted(contributions)
        )
        outcome = QueryResult(
            qid=qid,
            aggregate=aggregate,
            contributions=dict(contributions),
            issued_at=issued_at,
            returned_at=self.now,
            result=result_value,
        )
        self.results.append(outcome)
        self.sim.metrics.inc("query.returned")
        self.sim.metrics.inc("query.contributions", len(contributions))
        self.record(
            QUERY_RETURNED,
            qid=qid,
            aggregate=aggregate.name,
            result=result_value,
            contributors=tuple(sorted(contributions)),
        )
        return outcome


def merge_contributions(
    target: dict[int, Any], incoming: dict[int, Any] | list[tuple[int, Any]]
) -> None:
    """Merge contribution sets in place; duplicates keep the first value.

    Contributions travel in message payloads as ``(pid, value)`` pair lists
    (payloads stay JSON-ish); this helper accepts both shapes.
    """
    pairs = incoming.items() if isinstance(incoming, dict) else incoming
    for pid, value in pairs:
        target.setdefault(pid, value)
