"""Aggregation protocols for the one-time query problem and beyond.

Four families, four trade-offs:

* **wave** (:mod:`~repro.protocols.one_time_query`) — deterministic,
  contributor-tracked, exact while the system holds still; brittle under
  churn.
* **request/collect** (:mod:`~repro.protocols.request_collect`) — the
  complete-knowledge baseline.
* **epidemic** (:mod:`~repro.protocols.gossip`,
  :mod:`~repro.protocols.extrema`) — approximate, no contributor tracking;
  push-sum *loses* departed mass (undercounts under churn), extrema
  propagation *never forgets* (overcounts under churn).
* **continuous** (:mod:`~repro.protocols.tree_aggregation`) — a maintained
  spanning tree convergecasts the aggregate continuously; repair by
  periodic rebuild.

:mod:`~repro.protocols.expanding_ring` buys back the missing diameter
knowledge with probe feedback.
"""

from repro.protocols.adaptive import QUERY_DEFERRED, AdaptiveWaveNode
from repro.protocols.base import AggregatingProcess, QueryResult, merge_contributions
from repro.protocols.dissemination import (
    AntiEntropyNode,
    DIGEST,
    FLOOD,
    FloodNode,
    MISSING,
)
from repro.protocols.expanding_ring import ExpandingRingNode
from repro.protocols.ft_wave import FaultTolerantWaveNode
from repro.protocols.extrema import (
    CENSUS_ESTIMATE,
    EXCHANGE,
    ExtremaNode,
    estimate_from_vector,
    expected_relative_error,
)
from repro.protocols.gossip import GOSSIP_ESTIMATE, PushSumNode
from repro.protocols.one_time_query import (
    UNBOUNDED,
    WAVE_DECLINE,
    WAVE_ECHO,
    WAVE_QUERY,
    WaveNode,
)
from repro.protocols.request_collect import REQUEST, RESPONSE, RequestCollectNode
from repro.protocols.tree_aggregation import (
    BUILD,
    REPORT,
    TREE_ESTIMATE,
    TreeAggregationNode,
)

__all__ = [
    "AdaptiveWaveNode",
    "AggregatingProcess",
    "AntiEntropyNode",
    "DIGEST",
    "FLOOD",
    "FloodNode",
    "MISSING",
    "QUERY_DEFERRED",
    "BUILD",
    "CENSUS_ESTIMATE",
    "EXCHANGE",
    "ExpandingRingNode",
    "ExtremaNode",
    "FaultTolerantWaveNode",
    "GOSSIP_ESTIMATE",
    "PushSumNode",
    "QueryResult",
    "REPORT",
    "REQUEST",
    "RESPONSE",
    "RequestCollectNode",
    "TREE_ESTIMATE",
    "TreeAggregationNode",
    "UNBOUNDED",
    "WAVE_DECLINE",
    "WAVE_ECHO",
    "WAVE_QUERY",
    "WaveNode",
    "estimate_from_vector",
    "expected_relative_error",
    "merge_contributions",
]
