"""Push-sum gossip: the epidemic baseline for aggregation under churn.

Kempe–Dobra–Gehrke push-sum computes averages (and, with a one-node weight
seed, counts) by mass-conserving random exchanges: each round every node
sends half of its ``(sum, weight)`` mass to a random neighbor and keeps the
other half; ``sum / weight`` converges to the global average everywhere.

Against the wave protocol this baseline trades *deterministic completeness*
for *graceful degradation*: it never identifies contributors (so it cannot
satisfy the one-time query integrity clause and is judged on numeric
accuracy instead), but it has no single query interval to disrupt — churn
merely bleeds mass (departures destroy the mass they hold, in-flight mass to
departed nodes is lost) and bends the estimate.  E8 measures that trade.
"""

from __future__ import annotations

from typing import Any

from repro.protocols.base import AggregatingProcess
from repro.sim.messages import Message

PUSH = "PS_PUSH"

#: Trace event written when an estimate is read off a node.
GOSSIP_ESTIMATE = "gossip_estimate"


class PushSumNode(AggregatingProcess):
    """A node running push-sum rounds.

    Args:
        value: the numeric local value.
        weight: initial weight mass.  For AVG every node uses 1.0 (the
            default); for COUNT seed exactly one node with 1.0 and the rest
            with 0.0 while every value is 1.0.
        period: round length (time between this node's sends).
    """

    def __init__(self, value: float = 0.0, weight: float = 1.0, period: float = 1.0) -> None:
        super().__init__(value)
        self.sum = float(value)
        self.weight = float(weight)
        self.period = period
        self.rounds_run = 0

    # ------------------------------------------------------------------
    # Estimate
    # ------------------------------------------------------------------

    @property
    def estimate(self) -> float:
        """Current local estimate ``sum / weight`` (``nan`` with no mass)."""
        if self.weight == 0.0:
            return float("nan")
        return self.sum / self.weight

    def read_estimate(self) -> float:
        """Read and trace the current estimate (what the experiment samples)."""
        value = self.estimate
        self.record(GOSSIP_ESTIMATE, estimate=value, weight=self.weight,
                    rounds=self.rounds_run)
        return value

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------

    def on_start(self) -> None:
        # Desynchronise rounds across nodes with a random initial phase.
        self.set_timer(self.rng.uniform(0, self.period), "ps-round", None)

    def on_timer(self, name: str, payload: Any) -> None:
        if name != "ps-round":
            return
        self._run_round()
        self.set_timer(self.period, "ps-round", None)

    def _run_round(self) -> None:
        self.rounds_run += 1
        neighbors = sorted(self.neighbors())
        if not neighbors:
            return
        target = self.rng.choice(neighbors)
        half_sum = self.sum / 2.0
        half_weight = self.weight / 2.0
        self.sum -= half_sum
        self.weight -= half_weight
        self.send(target, PUSH, sum=half_sum, weight=half_weight)

    def on_message(self, message: Message) -> None:
        if message.kind == PUSH:
            self.sum += message.payload["sum"]
            self.weight += message.payload["weight"]
