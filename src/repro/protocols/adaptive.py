"""Churn-aware querying: adaptation as a substitute for knowledge.

The solvability table's conditional entries say the one-time query succeeds
*when churn is slow enough*.  A process cannot read the global churn rate,
but it can estimate the local one: its own neighbor set changes are a
sample of the system's membership events.  :class:`AdaptiveWaveNode` uses
that estimate to *defer* a query until the neighborhood looks calm — trading
latency for completeness, which is exactly the trade the conditional
entries permit (and the E15 bench measures under bursty churn).

The estimator is honest about locality: it sees only this node's neighbor
events, so a storm elsewhere is invisible until it reaches the
neighborhood.  Against phase-structured (bursty) churn that is enough;
against the E6 adversary nothing is, by design.
"""

from __future__ import annotations

from typing import Any

from repro.core.aggregates import Aggregate, SET
from repro.protocols.one_time_query import WaveNode
from repro.sim.errors import ProtocolError

#: Trace event written each time a query is deferred to a later calm check.
QUERY_DEFERRED = "query_deferred"


class AdaptiveWaveNode(WaveNode):
    """A wave node that estimates local churn and can defer queries.

    Args:
        value: the local value.
        churn_window: how far back neighbor events count toward the local
            churn estimate.
    """

    def __init__(self, value: Any = None, churn_window: float = 20.0) -> None:
        super().__init__(value)
        if churn_window <= 0:
            raise ProtocolError(f"churn window must be > 0, got {churn_window}")
        self.churn_window = churn_window
        self._neighbor_events: list[float] = []
        self.deferrals = 0

    # ------------------------------------------------------------------
    # Local churn estimation
    # ------------------------------------------------------------------

    def _note_event(self) -> None:
        if self.now == 0.0:
            return  # time-zero events are system bootstrap, not churn
        self._neighbor_events.append(self.now)
        # Keep the list from growing without bound: drop everything older
        # than one window (nothing outside it is ever counted again).
        cutoff = self.now - self.churn_window
        while self._neighbor_events and self._neighbor_events[0] < cutoff:
            self._neighbor_events.pop(0)

    def on_neighbor_join(self, pid: int) -> None:
        self._note_event()

    def on_neighbor_leave(self, pid: int) -> None:
        self._note_event()
        super().on_neighbor_leave(pid)

    def local_churn_rate(self) -> float:
        """Neighbor membership events per time unit over the window."""
        cutoff = self.now - self.churn_window
        recent = sum(1 for t in self._neighbor_events if t >= cutoff)
        window = min(self.churn_window, self.now) or self.churn_window
        return recent / window

    # ------------------------------------------------------------------
    # Deferred querying
    # ------------------------------------------------------------------

    def issue_query_when_calm(
        self,
        aggregate: Aggregate = SET,
        calm_threshold: float = 0.05,
        check_period: float = 5.0,
        max_wait: float = 200.0,
        ttl: int | None = None,
        deadline: float | None = None,
    ) -> None:
        """Issue the query once the local churn estimate drops below
        ``calm_threshold`` events per time unit (or after ``max_wait``).

        The query itself is a normal wave; only its *timing* is adaptive.
        """
        if check_period <= 0:
            raise ProtocolError(f"check period must be > 0, got {check_period}")
        give_up_at = self.now + max_wait

        def check() -> None:
            if not self.alive:
                return
            rate = self.local_churn_rate()
            if rate <= calm_threshold or self.now >= give_up_at:
                self.issue_query(aggregate, ttl=ttl, deadline=deadline)
                return
            self.deferrals += 1
            self.record(QUERY_DEFERRED, churn_rate=rate)
            self.set_timer(check_period, "adaptive-check", None)

        self._pending_check = check
        check()

    def on_timer(self, name: str, payload: Any) -> None:
        if name == "adaptive-check":
            self._pending_check()
        else:
            super().on_timer(name, payload)
