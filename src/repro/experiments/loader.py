"""Read and write ``repro-experiment`` documents as YAML.

The loader is deliberately thin: YAML parses to plain data, and all
validation and canonicalisation lives in
:meth:`repro.experiments.schema.ExperimentDef.from_dict`.  What this
module owns is the *canonical text form* — :func:`dump_experiment` emits
keys in schema order with defaults omitted, so two equivalent experiments
dump to identical bytes and :func:`experiment_digest` can pin a shipped
YAML file against drift (``tests/experiments/test_golden.py``).
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Any

import yaml

from repro.engine.telemetry import plan_digest
from repro.experiments.schema import ExperimentDef
from repro.sim.errors import ConfigurationError

__all__ = [
    "load_experiment",
    "loads_experiment",
    "dump_experiment",
    "save_experiment",
    "experiment_digest",
    "experiment_plan_digest",
]


def loads_experiment(text: str) -> ExperimentDef:
    """Parse one experiment definition from YAML text."""
    try:
        record = yaml.safe_load(text)
    except yaml.YAMLError as error:
        raise ConfigurationError(f"invalid YAML: {error}") from None
    if record is None:
        raise ConfigurationError("empty experiment document")
    return ExperimentDef.from_dict(record)


def load_experiment(path: str | Path) -> ExperimentDef:
    """Load one experiment definition from a YAML file."""
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as error:
        raise ConfigurationError(f"cannot read {path}: {error}") from None
    try:
        return loads_experiment(text)
    except ConfigurationError as error:
        raise ConfigurationError(f"{path}: {error}") from None


def dump_experiment(experiment: ExperimentDef) -> str:
    """The canonical YAML text of an experiment.

    Key order is the fixed schema order from
    :meth:`ExperimentDef.to_dict` (``sort_keys=False`` preserves it) and
    defaults are omitted there, so ``loads → dump`` is a *canonicalising*
    projection: any two texts describing the same experiment dump to the
    same bytes, and dumping is idempotent.
    """
    return yaml.safe_dump(
        experiment.to_dict(),
        sort_keys=False,
        default_flow_style=False,
        allow_unicode=True,
        width=79,
    )


def save_experiment(experiment: ExperimentDef, path: str | Path) -> Path:
    """Write the canonical YAML form to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(dump_experiment(experiment), encoding="utf-8")
    return path


def experiment_digest(experiment: ExperimentDef) -> str:
    """A short stable digest of the canonical YAML form.

    Changes whenever anything observable about the *definition* changes
    (name, grid, seeds, specs, expectations); stays fixed across
    formatting-only edits to a source YAML file.
    """
    text = dump_experiment(experiment)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


def experiment_plan_digest(experiment: ExperimentDef) -> str:
    """The engine's :func:`~repro.engine.telemetry.plan_digest` of the
    lowered plan.

    This is the byte-identity anchor: the YAML experiment and its Python
    ``build_plan`` twin must agree on this digest, because it hashes the
    exact trial specs (grid points, seeds, order) the executor will run.
    """
    return plan_digest(experiment.to_plan())


def _jsonable(value: Any) -> Any:
    """YAML-safe plain data (used by runner documents, re-exported here
    to keep the loader the single YAML touchpoint)."""
    from repro.engine.results import jsonable

    return jsonable(value)
