"""Execute declarative experiments and refine solvability boundaries.

:func:`run_experiment` lowers an :class:`ExperimentDef` to the engine plan
and runs it through the ordinary executor stack — :func:`run_plan` into a
:class:`ResultStore`, or :func:`stream_plan` into append-only JSONL when a
stream path is given — then checks the experiment's ``expect`` rules
against the per-point summaries.  Because the lowering is exactly the
``build_plan`` call a Python experiment would make, the result document is
byte-identical to the Python twin's under every backend.

:func:`refine_experiment` implements the ``refine:`` block: after the base
grid, every pair of axis-adjacent cells whose verdicts disagree brackets a
solvability boundary; the bracket is bisected — re-running only midpoints,
under the same paired-seed fan-out — until it is narrower than ``min_gap``
or ``max_depth`` rounds have run.  The output is a
``repro-solvability-boundary`` v1 document, the refined counterpart of the
paper's uniform (arrival × geography) sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

from repro.engine.executor import run_plan, stream_plan
from repro.engine.results import ResultStore, load_document
from repro.experiments.loader import experiment_plan_digest
from repro.experiments.schema import (
    BOUNDARY_SCHEMA,
    BOUNDARY_VERSION,
    ExpectSpec,
    ExperimentDef,
    RefineSpec,
)
from repro.sim.errors import ConfigurationError

__all__ = [
    "VerdictCheck",
    "ExperimentRun",
    "check_expectations",
    "run_experiment",
    "refine_experiment",
]


@dataclass(frozen=True)
class VerdictCheck:
    """One ``expect`` rule evaluated at one grid point."""

    point: tuple[tuple[str, Any], ...]
    metric: str
    op: str
    value: float
    observed: float
    passed: bool

    def __str__(self) -> str:
        point = ", ".join(f"{k}={v}" for k, v in self.point) or "(base)"
        status = "ok" if self.passed else "FAIL"
        return (
            f"[{status}] {point}: {self.metric}={self.observed:.6g} "
            f"{self.op} {self.value:g}"
        )


@dataclass(frozen=True)
class ExperimentRun:
    """The outcome of one :func:`run_experiment` call."""

    experiment: ExperimentDef
    plan_digest: str
    store: ResultStore | None
    verdicts: tuple[VerdictCheck, ...]
    streamed: int | None = None
    stream_path: str | None = None

    @property
    def passed(self) -> bool:
        """Every ``expect`` rule held (vacuously true with no rules)."""
        return all(check.passed for check in self.verdicts)

    @property
    def failures(self) -> tuple[VerdictCheck, ...]:
        return tuple(check for check in self.verdicts if not check.passed)


def _metric(summary: Mapping[str, Any], metric: str, where: str) -> float:
    try:
        return float(summary[metric])
    except KeyError:
        raise ConfigurationError(
            f"{where}: unknown summary metric {metric!r}; available: "
            f"{', '.join(sorted(summary))}"
        ) from None


def check_expectations(
    experiment: ExperimentDef,
    summaries: Sequence[tuple[Mapping[str, Any], Mapping[str, Any]]],
) -> tuple[VerdictCheck, ...]:
    """Evaluate every ``expect`` rule at every grid point it selects.

    ``summaries`` is ``[(point, summary), ...]`` in plan order.  A rule
    whose ``where`` clause selects no point at all is a configuration
    error — a silent vacuous pass would defeat the point of shipping
    expected verdicts with the experiment.
    """
    checks: list[VerdictCheck] = []
    for rule in experiment.expect:
        matched = False
        for point, summary in summaries:
            if not rule.matches(point):
                continue
            matched = True
            observed = _metric(
                summary, rule.metric, f"expect rule for {dict(point)!r}"
            )
            checks.append(VerdictCheck(
                point=tuple(sorted(point.items(), key=lambda kv: kv[0])),
                metric=rule.metric,
                op=rule.op,
                value=rule.value,
                observed=observed,
                passed=_holds(rule, observed),
            ))
        if not matched:
            raise ConfigurationError(
                f"expect rule {rule.to_dict()!r} matches no grid point"
            )
    return tuple(checks)


def _holds(rule: ExpectSpec, observed: float) -> bool:
    from repro.experiments.schema import evaluate_verdict

    return evaluate_verdict(observed, rule.op, rule.value)


def run_experiment(
    experiment: ExperimentDef,
    executor: Any = None,
    jobs: int | None = None,
    progress: Callable[..., None] | None = None,
    telemetry: Any = None,
    stream_path: str | None = None,
    checkpoint: Any = None,
    resume_from: Any = None,
) -> ExperimentRun:
    """Run a declarative experiment through the engine.

    ``executor`` overrides the experiment's own ``executor`` block (any
    form :func:`run_plan` accepts — preset name, :class:`ExecutorSpec` or
    executor instance); ``telemetry`` is a recorder or a JSONL path as in
    :func:`run_plan`.  With ``stream_path`` the trials stream to
    append-only JSONL via :func:`stream_plan` (no in-memory store) and the
    expectation checks read the per-point summaries back from the stream.
    ``checkpoint`` / ``resume_from`` journal and resume trials exactly as
    in :func:`run_plan` — an interrupted experiment re-executes only the
    missing trials and its verdicts match an uninterrupted run's.
    """
    plan = experiment.to_plan()
    digest = experiment_plan_digest(experiment)
    chosen = executor if executor is not None else experiment.executor
    if stream_path is not None:
        streamed = stream_plan(
            plan, stream_path, executor=chosen, jobs=jobs,
            progress=progress, telemetry=telemetry,
            checkpoint=checkpoint, resume_from=resume_from,
        )
        document = load_document(stream_path)
        summaries = [
            (entry["point"], entry["summary"]) for entry in document["points"]
        ]
        return ExperimentRun(
            experiment=experiment,
            plan_digest=digest,
            store=None,
            verdicts=check_expectations(experiment, summaries),
            streamed=streamed,
            stream_path=stream_path,
        )
    store = run_plan(
        plan, executor=chosen, jobs=jobs, progress=progress,
        telemetry=telemetry, checkpoint=checkpoint, resume_from=resume_from,
    )
    summaries = [
        (dict(point), summary) for point, summary in store.summary().items()
    ]
    return ExperimentRun(
        experiment=experiment,
        plan_digest=digest,
        store=store,
        verdicts=check_expectations(experiment, summaries),
    )


# ----------------------------------------------------------------------
# Adaptive boundary refinement
# ----------------------------------------------------------------------


@dataclass
class _Bracket:
    """One open solvability bracket along the refine axis."""

    low: float
    high: float
    low_verdict: bool
    high_verdict: bool

    @property
    def gap(self) -> float:
        return self.high - self.low

    @property
    def midpoint(self) -> float:
        return (self.low + self.high) / 2.0

    def absorb(self, mid: float, verdict: bool) -> None:
        """Shrink towards the verdict flip after evaluating the midpoint."""
        if verdict == self.low_verdict:
            self.low, self.low_verdict = mid, verdict
        else:
            self.high, self.high_verdict = mid, verdict


def _context_key(
    point: Mapping[str, Any], axis: str
) -> tuple[tuple[str, Any], ...]:
    return tuple(sorted(
        ((k, v) for k, v in point.items() if k != axis),
        key=lambda kv: kv[0],
    ))


def refine_experiment(
    experiment: ExperimentDef,
    executor: Any = None,
    jobs: int | None = None,
    progress: Callable[..., None] | None = None,
    base_run: ExperimentRun | None = None,
) -> dict[str, Any]:
    """Bisect the solvability boundary named by the ``refine:`` block.

    Runs the base grid (or reuses ``base_run`` from an earlier
    :func:`run_experiment` with an in-memory store), computes the verdict
    ``metric op threshold`` at every point, and then — per combination of
    the non-axis grid coordinates — bisects each axis-adjacent pair whose
    verdicts disagree.  Each refinement round batches every pending
    midpoint of every context into one sub-plan built by the *same*
    lowering as the base grid (same ``root_seed``/``trials``), so the
    refined cells keep the paired-seed discipline and remain individually
    reproducible.

    Returns a ``repro-solvability-boundary`` v1 document.
    """
    refine = experiment.refine
    if refine is None:
        raise ConfigurationError(
            f"experiment {experiment.name!r} has no 'refine' block"
        )
    chosen = executor if executor is not None else experiment.executor

    if base_run is not None and base_run.store is not None:
        store = base_run.store
    else:
        store = run_plan(
            experiment.to_plan(), executor=chosen, jobs=jobs,
            progress=progress,
        )

    # Verdicts over the base grid, grouped by context (= the other axes).
    contexts: dict[tuple[tuple[str, Any], ...], dict[float, float]] = {}
    for point, summary in store.summary().items():
        point_map = dict(point)
        observed = _metric(
            summary, refine.metric, f"refine at {point_map!r}"
        )
        key = _context_key(point_map, refine.axis)
        contexts.setdefault(key, {})[float(point_map[refine.axis])] = observed

    # Open a bracket wherever adjacent axis values disagree.
    brackets: dict[tuple[tuple[str, Any], ...], list[_Bracket]] = {}
    evaluations: dict[
        tuple[tuple[str, Any], ...], list[dict[str, Any]]
    ] = {}
    for key, observed_by_value in contexts.items():
        ordered = sorted(observed_by_value)
        evaluations[key] = [
            {
                "value": value,
                "observed": observed_by_value[value],
                "verdict": refine.verdict(observed_by_value[value]),
                "depth": 0,
            }
            for value in ordered
        ]
        open_brackets: list[_Bracket] = []
        for low, high in zip(ordered, ordered[1:]):
            low_v = refine.verdict(observed_by_value[low])
            high_v = refine.verdict(observed_by_value[high])
            if low_v != high_v:
                open_brackets.append(_Bracket(low, high, low_v, high_v))
        brackets[key] = open_brackets

    refined_trials = 0
    for depth in range(1, refine.max_depth + 1):
        # Midpoints still worth evaluating this round, per context.
        pending: dict[tuple[tuple[str, Any], ...], list[_Bracket]] = {
            key: [b for b in bs if b.gap > refine.min_gap]
            for key, bs in brackets.items()
        }
        pending = {key: bs for key, bs in pending.items() if bs}
        if not pending:
            break
        for key, open_brackets in pending.items():
            context = dict(key)
            midpoints = sorted(b.midpoint for b in open_brackets)
            # One sub-plan per context per round: grid order mirrors the
            # base experiment so the point layout stays canonical.
            sub_grid: dict[str, list[Any]] = {}
            for axis_name, _ in experiment.grid:
                if axis_name == refine.axis:
                    sub_grid[axis_name] = midpoints
                else:
                    sub_grid[axis_name] = [context[axis_name]]
            sub_store = run_plan(
                experiment.to_plan(
                    grid=sub_grid,
                    name=f"{experiment.name}/refine-{depth}",
                ),
                executor=chosen, jobs=jobs, progress=progress,
            )
            refined_trials += len(sub_store.results)
            observed_by_mid: dict[float, float] = {}
            for point, summary in sub_store.summary().items():
                point_map = dict(point)
                observed_by_mid[float(point_map[refine.axis])] = _metric(
                    summary, refine.metric, f"refine at {point_map!r}"
                )
            for bracket in open_brackets:
                mid = bracket.midpoint
                observed = observed_by_mid[mid]
                verdict = refine.verdict(observed)
                evaluations[key].append({
                    "value": mid,
                    "observed": observed,
                    "verdict": verdict,
                    "depth": depth,
                })
                bracket.absorb(mid, verdict)

    context_docs = []
    for key in sorted(contexts, key=repr):
        entries = sorted(
            evaluations[key], key=lambda e: (e["value"], e["depth"])
        )
        context_docs.append({
            "context": dict(key),
            "brackets": [
                {
                    "low": b.low,
                    "high": b.high,
                    "low_verdict": b.low_verdict,
                    "high_verdict": b.high_verdict,
                    "gap": b.gap,
                    "converged": b.gap <= refine.min_gap,
                }
                for b in sorted(brackets[key], key=lambda b: b.low)
            ],
            "evaluations": entries,
        })

    return {
        "schema": BOUNDARY_SCHEMA,
        "version": BOUNDARY_VERSION,
        "experiment": experiment.name,
        "axis": refine.axis,
        "metric": refine.metric,
        "op": refine.op,
        "threshold": refine.threshold,
        "max_depth": refine.max_depth,
        "min_gap": refine.min_gap,
        "root_seed": experiment.root_seed,
        "trials_per_point": experiment.trials,
        "base_trials": len(store.results),
        "refined_trials": refined_trials,
        "contexts": context_docs,
    }
