"""The ``repro-experiment`` v1 wire schema.

An experiment is *data*: grid axes, trial kind, seed discipline, fault /
resilience / churn specs, execution policy, expected verdicts and an
optional adaptive-refinement block — everything the Python experiment
modules under ``benchmarks/`` spell out in code, as one frozen,
canonicalised object.  :class:`ExperimentDef` is that object;
:mod:`repro.experiments.loader` reads and writes it as YAML, and
:meth:`ExperimentDef.to_plan` lowers it to the existing engine
:class:`~repro.engine.plan.ExperimentPlan` — **byte-identical** to the plan
the equivalent ``build_plan`` call produces, so a YAML experiment and its
Python twin generate the same canonical result document under every
executor backend (``tests/experiments/test_differential.py`` pins this).

Canonical form: grid axes and their values keep declaration order (the
cartesian product, and therefore the plan's trial order, depends on it);
``base`` is sorted by key (mirroring ``build_plan``); nested specs
(:class:`~repro.churn.spec.ChurnSpec`, :class:`~repro.faults.spec.FaultPlan`,
:class:`~repro.resilience.spec.ResilienceSpec`,
:class:`~repro.engine.spec.ExecutorSpec`) canonicalise through their own
wire formats; defaults are omitted.  ``load → dump → load`` is the
identity (``tests/property/test_stats_properties.py`` pins this).
"""

from __future__ import annotations

import itertools
import operator
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.churn.spec import ChurnSpec
from repro.engine.plan import ExperimentPlan, build_plan
from repro.engine.spec import ExecutorSpec, executor_preset
from repro.faults.presets import fault_preset
from repro.faults.spec import FaultPlan
from repro.resilience.presets import resilience_preset
from repro.resilience.spec import ResilienceSpec
from repro.sim.errors import ConfigurationError

#: Wire schema identifier and version for YAML experiment documents.
EXPERIMENT_SCHEMA = "repro-experiment"
EXPERIMENT_VERSION = 1

#: Wire schema identifier for refined solvability-boundary documents.
BOUNDARY_SCHEMA = "repro-solvability-boundary"
BOUNDARY_VERSION = 1

#: Trial kinds an experiment may declare (the engine's config registry).
EXPERIMENT_KINDS = ("query", "gossip", "dissemination")

#: Comparison operators allowed in ``expect``/``refine`` verdict rules.
VERDICT_OPS: dict[str, Any] = {
    ">=": operator.ge,
    ">": operator.gt,
    "<=": operator.le,
    "<": operator.lt,
    "==": operator.eq,
    "!=": operator.ne,
}

#: Scalar types allowed in grid values, base values and ``where`` clauses.
_SCALARS = (str, int, float, bool, type(None))


def _require_scalar(value: Any, where: str) -> Any:
    if isinstance(value, bool) or value is None or isinstance(value, (str, int, float)):
        return value
    raise ConfigurationError(
        f"{where} must be a scalar (string, number, bool or null), "
        f"got {type(value).__name__}"
    )


def evaluate_verdict(observed: float, op: str, threshold: float) -> bool:
    """Apply one verdict rule (``observed <op> threshold``)."""
    try:
        compare = VERDICT_OPS[op]
    except KeyError:
        raise ConfigurationError(
            f"unknown verdict operator {op!r}; use "
            f"{', '.join(VERDICT_OPS)}"
        ) from None
    return bool(compare(observed, threshold))


@dataclass(frozen=True)
class ExpectSpec:
    """One expected verdict: a point selector, a metric and a rule.

    ``where`` is a subset match on the grid point — an expectation applies
    to every point whose coordinates include all ``where`` items, and it
    is a schema error at load time if no grid point can ever match.
    """

    metric: str
    op: str
    value: float
    where: tuple[tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if not self.metric:
            raise ConfigurationError("expect rule needs a 'metric'")
        if self.op not in VERDICT_OPS:
            raise ConfigurationError(
                f"unknown verdict operator {self.op!r}; use "
                f"{', '.join(VERDICT_OPS)}"
            )

    def matches(self, point: Mapping[str, Any]) -> bool:
        return all(point.get(key) == value for key, value in self.where)

    def to_dict(self) -> dict[str, Any]:
        record: dict[str, Any] = {}
        if self.where:
            record["where"] = dict(self.where)
        record["metric"] = self.metric
        record["op"] = self.op
        record["value"] = self.value
        return record

    @classmethod
    def from_dict(cls, record: Mapping[str, Any]) -> "ExpectSpec":
        if not isinstance(record, Mapping):
            raise ConfigurationError(
                f"each expect rule must be a mapping, got "
                f"{type(record).__name__}"
            )
        unknown = sorted(set(record) - {"where", "metric", "op", "value"})
        if unknown:
            raise ConfigurationError(
                f"unknown expect rule field(s) {unknown}; known: "
                "metric, op, value, where"
            )
        where = record.get("where", {})
        if not isinstance(where, Mapping):
            raise ConfigurationError("expect 'where' must be a mapping")
        for key, value in where.items():
            _require_scalar(value, f"expect where[{key!r}]")
        try:
            value = float(record["value"])
            metric = str(record["metric"])
            op = str(record.get("op", ">="))
        except KeyError as error:
            raise ConfigurationError(
                f"expect rule is missing {error.args[0]!r}"
            ) from None
        return cls(
            metric=metric, op=op, value=value,
            where=tuple(sorted(where.items(), key=lambda kv: kv[0])),
        )


@dataclass(frozen=True)
class RefineSpec:
    """The adaptive-sweep block: where to look harder.

    A uniform grid wastes trials where the verdict is settled and blurs
    the solvability boundary where it is not.  The refine block names one
    numeric grid ``axis`` and a verdict rule (``metric op threshold``);
    after the base grid runs, every pair of axis-adjacent cells whose
    verdicts *disagree* is bisected — re-running only the midpoint, with
    the same seed fan-out — until the bracket is narrower than ``min_gap``
    or ``max_depth`` rounds have run.  The output is a
    ``repro-solvability-boundary`` document bracketing where the verdict
    flips (per combination of the remaining axes).
    """

    axis: str
    metric: str = "completeness"
    op: str = ">="
    threshold: float = 1.0
    max_depth: int = 4
    min_gap: float = 1e-3

    def __post_init__(self) -> None:
        if not self.axis:
            raise ConfigurationError("refine block needs an 'axis'")
        if self.op not in VERDICT_OPS:
            raise ConfigurationError(
                f"unknown verdict operator {self.op!r}; use "
                f"{', '.join(VERDICT_OPS)}"
            )
        if self.max_depth < 1:
            raise ConfigurationError(
                f"refine max_depth must be >= 1, got {self.max_depth}"
            )
        if self.min_gap <= 0:
            raise ConfigurationError(
                f"refine min_gap must be > 0, got {self.min_gap}"
            )

    def verdict(self, observed: float) -> bool:
        return evaluate_verdict(observed, self.op, self.threshold)

    def to_dict(self) -> dict[str, Any]:
        record: dict[str, Any] = {"axis": self.axis, "metric": self.metric}
        if self.op != ">=":
            record["op"] = self.op
        record["threshold"] = self.threshold
        if self.max_depth != 4:
            record["max_depth"] = self.max_depth
        if self.min_gap != 1e-3:
            record["min_gap"] = self.min_gap
        return record

    @classmethod
    def from_dict(cls, record: Mapping[str, Any]) -> "RefineSpec":
        if not isinstance(record, Mapping):
            raise ConfigurationError(
                f"'refine' must be a mapping, got {type(record).__name__}"
            )
        known = {"axis", "metric", "op", "threshold", "max_depth", "min_gap"}
        unknown = sorted(set(record) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown refine field(s) {unknown}; known: "
                f"{', '.join(sorted(known))}"
            )
        params = dict(record)
        if "axis" not in params:
            raise ConfigurationError("refine block needs an 'axis'")
        return cls(
            axis=str(params["axis"]),
            metric=str(params.get("metric", "completeness")),
            op=str(params.get("op", ">=")),
            threshold=float(params.get("threshold", 1.0)),
            max_depth=int(params.get("max_depth", 4)),
            min_gap=float(params.get("min_gap", 1e-3)),
        )


@dataclass(frozen=True)
class ExperimentDef:
    """One complete declarative experiment (``repro-experiment`` v1).

    The canonical, frozen form every loader path normalises to.  ``grid``
    preserves axis and value declaration order; ``base`` is stored sorted
    by key; nested specs are real spec objects (their own wire formats
    guarantee lossless round-trips).  ``seeds`` pins the trial seeds
    explicitly and excludes ``trials``; otherwise trial ``t`` of every
    grid point draws the ``t``-th seed from
    :func:`repro.sim.rng.iter_seeds(root_seed, trials)` — the engine's
    paired-seed discipline.
    """

    name: str
    kind: str = "query"
    description: str = ""
    grid: tuple[tuple[str, tuple[Any, ...]], ...] = ()
    base: tuple[tuple[str, Any], ...] = ()
    trials: int = 5
    root_seed: int = 2007
    seeds: tuple[int, ...] | None = None
    churn: ChurnSpec | None = None
    faults: FaultPlan | str | None = None
    resilience: ResilienceSpec | str | None = None
    executor: ExecutorSpec | str | None = None
    check_invariants: bool = False
    expect: tuple[ExpectSpec, ...] = ()
    refine: RefineSpec | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("experiment needs a 'name'")
        if self.kind not in EXPERIMENT_KINDS:
            raise ConfigurationError(
                f"unknown experiment kind {self.kind!r}; use "
                f"{', '.join(EXPERIMENT_KINDS)}"
            )
        if self.seeds is not None and not self.seeds:
            raise ConfigurationError("'seeds' must not be empty when given")
        if self.seeds is None and self.trials < 1:
            raise ConfigurationError(
                f"trials must be >= 1, got {self.trials}"
            )
        grid_keys = [key for key, _ in self.grid]
        if len(grid_keys) != len(set(grid_keys)):
            raise ConfigurationError("grid axes must be distinct")
        for key, values in self.grid:
            if not values:
                raise ConfigurationError(f"grid axis {key!r} has no values")
        base_keys = {key for key, _ in self.base}
        overlap = sorted(base_keys & set(grid_keys))
        if overlap:
            raise ConfigurationError(
                f"field(s) {overlap} appear in both 'grid' and 'base'"
            )
        for reserved in ("churn", "faults", "resilience", "check_invariants",
                         "seed"):
            if reserved in base_keys:
                raise ConfigurationError(
                    f"'{reserved}' has its own top-level block; do not put "
                    "it in 'base'"
                )
        for rule in self.expect:
            for key, _ in rule.where:
                if key not in grid_keys:
                    raise ConfigurationError(
                        f"expect where[{key!r}] is not a grid axis; axes: "
                        f"{', '.join(grid_keys) or '(none)'}"
                    )
        if self.refine is not None:
            if self.refine.axis not in grid_keys:
                raise ConfigurationError(
                    f"refine axis {self.refine.axis!r} is not a grid axis; "
                    f"axes: {', '.join(grid_keys) or '(none)'}"
                )
            axis_values = dict(self.grid)[self.refine.axis]
            if len(axis_values) < 2:
                raise ConfigurationError(
                    f"refine axis {self.refine.axis!r} needs at least two "
                    "grid values to bracket a boundary"
                )
            for value in axis_values:
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    raise ConfigurationError(
                        f"refine axis {self.refine.axis!r} must be numeric "
                        f"to bisect; got {value!r}"
                    )
        # Fail at definition time, not inside a pool worker.
        if isinstance(self.faults, str):
            fault_preset(self.faults)
        if isinstance(self.resilience, str):
            resilience_preset(self.resilience)
        if isinstance(self.executor, str):
            executor_preset(self.executor)

    # ------------------------------------------------------------------
    # Lowering to the engine plan
    # ------------------------------------------------------------------

    def plan_base(self) -> dict[str, Any]:
        """The ``base=`` mapping the equivalent ``build_plan`` call takes."""
        base: dict[str, Any] = dict(self.base)
        if self.churn is not None:
            base["churn"] = self.churn
        if self.faults is not None:
            base["faults"] = self.faults
        if self.resilience is not None:
            base["resilience"] = self.resilience
        if self.check_invariants:
            base["check_invariants"] = True
        return base

    def plan_grid(self) -> dict[str, list[Any]]:
        """The ``grid=`` mapping, axis declaration order preserved."""
        return {key: list(values) for key, values in self.grid}

    def to_plan(
        self,
        grid: Mapping[str, Any] | None = None,
        name: str | None = None,
        extra_base: Mapping[str, Any] | None = None,
    ) -> ExperimentPlan:
        """Lower to the engine :class:`ExperimentPlan`.

        With no arguments this is exactly the ``build_plan`` call the
        equivalent Python experiment makes — same name, grid, base, seed
        fan-out — so the resulting specs (and therefore the result
        documents) are identical.  ``grid``/``name``/``extra_base``
        support the refinement loop, which re-plans sub-grids under the
        same seed discipline.
        """
        base = self.plan_base()
        if extra_base:
            base.update(extra_base)
        return build_plan(
            name if name is not None else self.name,
            kind=self.kind,
            grid=dict(grid) if grid is not None else self.plan_grid(),
            base=base,
            trials=self.trials,
            root_seed=self.root_seed,
            seeds=self.seeds,
        )

    # ------------------------------------------------------------------
    # Wire form
    # ------------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """The canonical plain-data form (what the YAML dump writes).

        Keys appear in a fixed order and defaults are omitted, so two
        definitions are equivalent iff their dicts (and dumps) are equal.
        """
        record: dict[str, Any] = {
            "schema": EXPERIMENT_SCHEMA,
            "version": EXPERIMENT_VERSION,
            "name": self.name,
        }
        if self.description:
            record["description"] = self.description
        record["kind"] = self.kind
        if self.grid:
            record["grid"] = {key: list(values) for key, values in self.grid}
        if self.base:
            record["base"] = dict(self.base)
        if self.seeds is not None:
            record["seeds"] = list(self.seeds)
        else:
            record["trials"] = self.trials
        record["root_seed"] = self.root_seed
        if self.churn is not None:
            churn: dict[str, Any] = {"kind": self.churn.kind}
            for churn_field in (
                "rate", "lifetime_mean", "pareto_alpha", "pareto_xm", "cap",
                "total_arrivals", "storm_length", "calm_length",
                "doom_initial",
            ):
                value = getattr(self.churn, churn_field)
                default = getattr(ChurnSpec(), churn_field)
                if value != default:
                    churn[churn_field] = value
            record["churn"] = churn
        if self.faults is not None:
            record["faults"] = (
                self.faults if isinstance(self.faults, str)
                else self.faults.to_dict()
            )
        if self.resilience is not None:
            record["resilience"] = (
                self.resilience if isinstance(self.resilience, str)
                else self.resilience.to_dict()
            )
        if self.executor is not None:
            record["executor"] = (
                self.executor if isinstance(self.executor, str)
                else self.executor.to_dict()
            )
        if self.check_invariants:
            record["check_invariants"] = True
        if self.expect:
            record["expect"] = [rule.to_dict() for rule in self.expect]
        if self.refine is not None:
            record["refine"] = self.refine.to_dict()
        return record

    @classmethod
    def from_dict(cls, record: Mapping[str, Any]) -> "ExperimentDef":
        """Validate and canonicalise a plain-data experiment document."""
        if not isinstance(record, Mapping):
            raise ConfigurationError(
                f"experiment document must be a mapping, got "
                f"{type(record).__name__}"
            )
        if record.get("schema", EXPERIMENT_SCHEMA) != EXPERIMENT_SCHEMA:
            raise ConfigurationError(
                f"not a {EXPERIMENT_SCHEMA} document "
                f"(schema={record.get('schema')!r})"
            )
        version = record.get("version", EXPERIMENT_VERSION)
        if version != EXPERIMENT_VERSION:
            raise ConfigurationError(
                f"unsupported experiment schema version {version!r}; this "
                f"release reads version {EXPERIMENT_VERSION}"
            )
        known = {
            "schema", "version", "name", "description", "kind", "grid",
            "base", "trials", "root_seed", "seeds", "churn", "faults",
            "resilience", "executor", "check_invariants", "expect", "refine",
        }
        unknown = sorted(set(record) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown experiment field(s) {unknown}; known: "
                f"{', '.join(sorted(known))}"
            )
        if "name" not in record:
            raise ConfigurationError("experiment needs a 'name'")
        if "trials" in record and "seeds" in record:
            raise ConfigurationError(
                "give either 'trials' (seed fan-out from root_seed) or an "
                "explicit 'seeds' list, not both"
            )

        grid_in = record.get("grid", {})
        if not isinstance(grid_in, Mapping):
            raise ConfigurationError("'grid' must be a mapping of axes")
        grid: list[tuple[str, tuple[Any, ...]]] = []
        for key, values in grid_in.items():
            if not isinstance(values, (list, tuple)):
                raise ConfigurationError(
                    f"grid axis {key!r} must be a list of values"
                )
            grid.append((
                str(key),
                tuple(_require_scalar(v, f"grid[{key!r}]") for v in values),
            ))

        base_in = record.get("base", {})
        if not isinstance(base_in, Mapping):
            raise ConfigurationError("'base' must be a mapping")
        base = tuple(sorted(
            ((str(key), _require_scalar(value, f"base[{key!r}]"))
             for key, value in base_in.items()),
            key=lambda kv: kv[0],
        ))

        seeds_in = record.get("seeds")
        seeds = None
        if seeds_in is not None:
            if not isinstance(seeds_in, (list, tuple)):
                raise ConfigurationError("'seeds' must be a list of integers")
            seeds = tuple(int(seed) for seed in seeds_in)

        churn_in = record.get("churn")
        churn = None
        if churn_in is not None:
            if not isinstance(churn_in, Mapping):
                raise ConfigurationError(
                    "'churn' must be a mapping of ChurnSpec fields"
                )
            try:
                churn = ChurnSpec(**dict(churn_in))
            except TypeError as error:
                raise ConfigurationError(f"bad churn block: {error}") from None
            churn.builder()  # validate the kind eagerly

        def spec_or_name(key: str, loader: Any) -> Any:
            value = record.get(key)
            if value is None or isinstance(value, str):
                return value
            if isinstance(value, Mapping):
                return loader(value)
            raise ConfigurationError(
                f"'{key}' must be a builtin preset name or an inline "
                f"mapping, got {type(value).__name__}"
            )

        expect_in = record.get("expect", [])
        if not isinstance(expect_in, (list, tuple)):
            raise ConfigurationError("'expect' must be a list of rules")
        refine_in = record.get("refine")

        trials = record.get("trials", 5)
        return cls(
            name=str(record["name"]),
            kind=str(record.get("kind", "query")),
            description=str(record.get("description", "")),
            grid=tuple(grid),
            base=base,
            trials=len(seeds) if seeds is not None else int(trials),
            root_seed=int(record.get("root_seed", 2007)),
            seeds=seeds,
            churn=churn,
            faults=spec_or_name("faults", FaultPlan.from_dict),
            resilience=spec_or_name("resilience", ResilienceSpec.from_dict),
            executor=spec_or_name("executor", ExecutorSpec.from_dict),
            check_invariants=bool(record.get("check_invariants", False)),
            expect=tuple(ExpectSpec.from_dict(rule) for rule in expect_in),
            refine=(RefineSpec.from_dict(refine_in)
                    if refine_in is not None else None),
        )

    def points(self) -> list[dict[str, Any]]:
        """The grid points this experiment sweeps, in plan order."""
        if not self.grid:
            return [{}]
        keys = [key for key, _ in self.grid]
        return [
            dict(zip(keys, combo))
            for combo in itertools.product(*[values for _, values in self.grid])
        ]
