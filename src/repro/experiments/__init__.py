"""Declarative experiments: YAML in, canonical engine plans out.

The ``repro-experiment`` v1 format makes an experiment *data* — grid
axes, trial kind, seed fan-out, fault/resilience/churn specs, execution
policy, expected verdicts and an optional adaptive ``refine:`` block —
and guarantees that the lowered engine plan (and therefore the result
document) is byte-identical to the equivalent Python ``build_plan`` call.

Typical use::

    from repro.experiments import load_experiment, run_experiment

    exp = load_experiment("examples/experiments/e4_churn_sweep.yaml")
    run = run_experiment(exp, executor="parallel")
    assert run.passed, run.failures

or from the command line::

    repro experiment validate examples/experiments/*.yaml
    repro experiment run examples/experiments/e4_churn_sweep.yaml
"""

from repro.experiments.loader import (
    dump_experiment,
    experiment_digest,
    experiment_plan_digest,
    load_experiment,
    loads_experiment,
    save_experiment,
)
from repro.experiments.runner import (
    ExperimentRun,
    VerdictCheck,
    check_expectations,
    refine_experiment,
    run_experiment,
)
from repro.experiments.schema import (
    BOUNDARY_SCHEMA,
    BOUNDARY_VERSION,
    EXPERIMENT_KINDS,
    EXPERIMENT_SCHEMA,
    EXPERIMENT_VERSION,
    ExpectSpec,
    ExperimentDef,
    RefineSpec,
    evaluate_verdict,
)

__all__ = [
    "BOUNDARY_SCHEMA",
    "BOUNDARY_VERSION",
    "EXPERIMENT_KINDS",
    "EXPERIMENT_SCHEMA",
    "EXPERIMENT_VERSION",
    "ExpectSpec",
    "ExperimentDef",
    "ExperimentRun",
    "RefineSpec",
    "VerdictCheck",
    "check_expectations",
    "dump_experiment",
    "evaluate_verdict",
    "experiment_digest",
    "experiment_plan_digest",
    "load_experiment",
    "loads_experiment",
    "refine_experiment",
    "run_experiment",
    "save_experiment",
]
