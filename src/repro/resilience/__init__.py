"""Deterministic resilience: reliable delivery, adaptive retry, degradation.

The recovery counterpart to the fault plane (:mod:`repro.faults`).  A
frozen, picklable :class:`ResilienceSpec` configures a
:class:`ReliableTransport` that interposes between protocols and
:class:`~repro.sim.network.Network` transport: per-message acknowledgements
and receive-path dedup, retransmission with exponential backoff and
deterministic jitter (the dedicated ``"resilience"`` RNG stream),
Jacobson-style per-link RTT estimation feeding retransmit timers and —
optionally — the heartbeat failure detector, a per-link circuit breaker,
and bounded give-up that lets query protocols degrade to partial answers
with explicit :class:`CoverageReport` witnesses instead of hanging.

Determinism contract: ``None`` or a disabled spec installs nothing and is
byte-identical to no resilience at all; enabling it never perturbs the
transport or fault RNG streams.  See ``docs/RESILIENCE.md``.
"""

from repro.resilience.degradation import CoverageReport
from repro.resilience.presets import (
    PRESET_NAMES,
    RESILIENCE_PRESETS,
    resilience_preset,
)
from repro.resilience.spec import (
    SPEC_SCHEMA,
    SPEC_VERSION,
    ResilienceSpec,
    backoff_schedule,
    resolve_resilience,
    retry_delay,
)
from repro.resilience.transport import (
    ACK,
    RID_KEY,
    CircuitBreaker,
    LinkRtt,
    ReliableTransport,
    install_resilience,
)

__all__ = [
    "ACK",
    "PRESET_NAMES",
    "RESILIENCE_PRESETS",
    "RID_KEY",
    "SPEC_SCHEMA",
    "SPEC_VERSION",
    "CircuitBreaker",
    "CoverageReport",
    "LinkRtt",
    "ReliableTransport",
    "ResilienceSpec",
    "backoff_schedule",
    "install_resilience",
    "resilience_preset",
    "resolve_resilience",
    "retry_delay",
]
