"""Declarative resilience specifications.

The fault plane (:mod:`repro.faults`) makes the adversary declarative;
:class:`ResilienceSpec` does the same for the *defence*.  It is plain,
frozen, picklable data — in the same mould as
:class:`repro.faults.spec.FaultSpec` and :class:`repro.churn.spec.ChurnSpec`
— describing how the recovery layer (:mod:`repro.resilience.transport`)
behaves: how often to retransmit, how to back off, when to give up, when a
link circuit breaker trips, and whether query protocols degrade to partial
answers with coverage reports.

Determinism contract: a ``None`` field value or a spec with
``enabled=False`` resolves to ``None`` and installs nothing — a trial
configured that way is byte-identical to a trial with no resilience at all
(no extra RNG draws, no extra trace events, no extra metrics keys).  All
retransmission jitter draws from the dedicated ``"resilience"`` seed
stream, never from the transport or fault streams, so enabling recovery
never perturbs the delays or drops of the underlying network.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, fields
from typing import Any, Mapping

from repro.sim.errors import ConfigurationError

#: JSON schema identifier for serialised specs.
SPEC_SCHEMA = "repro-resilience-spec"
SPEC_VERSION = 1


@dataclass(frozen=True)
class ResilienceSpec:
    """One complete recovery policy for the reliable-delivery layer.

    Attributes:
        name: optional label (presets set it; it never affects behavior).
        enabled: master switch; a disabled spec resolves to ``None`` and
            installs nothing (byte-identical to no spec).
        max_retries: retransmissions per message after the first send; the
            message is abandoned (``delivery_abandoned``) once
            ``max_retries + 1`` transmissions have all gone unacknowledged.
        base_rto: initial retransmission timeout, used until the link has
            RTT samples (or always, with ``adaptive_rto=False``).
        min_rto: lower clamp on every retransmission timeout.
        max_rto: upper clamp on every retransmission timeout.
        backoff: exponential backoff factor between attempts (>= 1).
        jitter: deterministic jitter fraction: each delay is stretched by
            ``uniform(0, jitter * delay)`` drawn from the ``"resilience"``
            RNG stream.
        adaptive_rto: feed Jacobson-style RTT/RTTVAR estimates (per link)
            into the retransmission timer instead of ``base_rto``.
        adaptive_detector: let the heartbeat failure detector derive its
            silence threshold from the link RTT estimate instead of the
            static ``timeout`` (see
            :meth:`repro.failure.detector.HeartbeatNode._timeout_for`).
        detector_beta: RTTVAR multiplier for the adaptive detector timeout.
        breaker_threshold: consecutive delivery timeouts on a link before
            its circuit breaker trips open (``0`` disables the breaker).
        breaker_cooldown: how long an open breaker holds retransmissions
            on the link before probing half-open.
        partial_results: let query trials build a
            :class:`~repro.resilience.degradation.CoverageReport` so the
            initiator returns an explicit partial answer instead of an
            unexplained miss.
        exclude_kinds: message kinds the session layer passes through
            untracked (heartbeats by default: they are their own
            retransmission scheme).
    """

    name: str = ""
    enabled: bool = True
    max_retries: int = 4
    base_rto: float = 3.0
    min_rto: float = 0.5
    max_rto: float = 20.0
    backoff: float = 2.0
    jitter: float = 0.1
    adaptive_rto: bool = True
    adaptive_detector: bool = False
    detector_beta: float = 4.0
    breaker_threshold: int = 0
    breaker_cooldown: float = 8.0
    partial_results: bool = True
    exclude_kinds: tuple[str, ...] = ("FD_HEARTBEAT",)

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if not 0.0 < self.min_rto <= self.base_rto <= self.max_rto:
            raise ConfigurationError(
                "need 0 < min_rto <= base_rto <= max_rto, got "
                f"min_rto={self.min_rto}, base_rto={self.base_rto}, "
                f"max_rto={self.max_rto}"
            )
        if self.backoff < 1.0:
            raise ConfigurationError(
                f"backoff factor must be >= 1, got {self.backoff}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigurationError(
                f"jitter fraction must be in [0, 1], got {self.jitter}"
            )
        if self.detector_beta <= 0.0:
            raise ConfigurationError(
                f"detector_beta must be > 0, got {self.detector_beta}"
            )
        if self.breaker_threshold < 0:
            raise ConfigurationError(
                f"breaker_threshold must be >= 0, got {self.breaker_threshold}"
            )
        if self.breaker_cooldown <= 0.0:
            raise ConfigurationError(
                f"breaker_cooldown must be > 0, got {self.breaker_cooldown}"
            )
        normalized = tuple(sorted(str(kind) for kind in self.exclude_kinds))
        object.__setattr__(self, "exclude_kinds", normalized)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def disabled(cls) -> "ResilienceSpec":
        """The off switch: resolves to ``None`` and installs nothing."""
        return cls(name="disabled", enabled=False)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON form (lossless; see :meth:`from_dict`)."""
        record: dict[str, Any] = {
            "schema": SPEC_SCHEMA,
            "version": SPEC_VERSION,
        }
        for spec_field in fields(self):
            value = getattr(self, spec_field.name)
            if spec_field.name == "exclude_kinds":
                record["exclude_kinds"] = list(value)
                continue
            record[spec_field.name] = value
        return record

    def to_json(self) -> str:
        """Canonical JSON (sorted keys, indent 2, trailing newline)."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_dict(cls, record: Mapping[str, Any]) -> "ResilienceSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        if record.get("schema", SPEC_SCHEMA) != SPEC_SCHEMA:
            raise ConfigurationError(
                f"not a {SPEC_SCHEMA} document "
                f"(schema={record.get('schema')!r})"
            )
        version = record.get("version", SPEC_VERSION)
        if version != SPEC_VERSION:
            raise ConfigurationError(
                f"unsupported resilience spec version {version!r}; this "
                f"release reads version {SPEC_VERSION}"
            )
        params = {
            key: value for key, value in record.items()
            if key not in ("schema", "version")
        }
        known = {spec_field.name for spec_field in fields(cls)}
        unknown = sorted(set(params) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown resilience spec field(s) {unknown}; known: "
                f"{', '.join(sorted(known))}"
            )
        kinds = params.get("exclude_kinds")
        if kinds is not None:
            params["exclude_kinds"] = tuple(kinds)
        return cls(**params)

    @classmethod
    def from_json(cls, text: str) -> "ResilienceSpec":
        return cls.from_dict(json.loads(text))


def resolve_resilience(
    resilience: "ResilienceSpec | str | None",
) -> ResilienceSpec | None:
    """Normalise a config's ``resilience`` field to a spec (or ``None``).

    Accepts a :class:`ResilienceSpec`, a builtin preset name (see
    :data:`repro.resilience.presets.RESILIENCE_PRESETS`) or ``None``.
    Disabled specs normalise to ``None`` — that is what makes
    ``ResilienceSpec.disabled()`` byte-identical to configuring no
    resilience at all.
    """
    if resilience is None:
        return None
    if isinstance(resilience, str):
        from repro.resilience.presets import resilience_preset

        resilience = resilience_preset(resilience)
    if isinstance(resilience, ResilienceSpec):
        return resilience if resilience.enabled else None
    raise ConfigurationError(
        f"'resilience' must be a ResilienceSpec or a preset name, "
        f"got {type(resilience).__name__}"
    )


# ----------------------------------------------------------------------
# The backoff schedule (shared by the transport and the property tests)
# ----------------------------------------------------------------------


def retry_delay(
    spec: ResilienceSpec, rng: random.Random, attempt: int, rto: float
) -> float:
    """The timer delay armed after transmission number ``attempt``.

    Exponential backoff on ``rto`` clamped to ``[min_rto, max_rto]``, plus
    deterministic jitter of up to ``jitter * delay`` drawn from ``rng``
    (the ``"resilience"`` stream inside a live transport).  When
    ``jitter == 0`` no draw is made at all, keeping the stream untouched.
    """
    delay = rto * spec.backoff ** (attempt - 1)
    delay = min(max(delay, spec.min_rto), spec.max_rto)
    if spec.jitter > 0.0:
        delay += rng.uniform(0.0, spec.jitter * delay)
    return delay


def backoff_schedule(
    spec: ResilienceSpec,
    seed: int = 0,
    rto: float | None = None,
) -> tuple[float, ...]:
    """The full deterministic retransmit-delay schedule for one message.

    One delay per transmission (``max_retries + 1`` entries), computed with
    a private ``random.Random(seed)`` so the same ``(spec, seed)`` always
    yields the same schedule — the determinism the property suite pins.
    """
    rng = random.Random(seed)
    base = spec.base_rto if rto is None else rto
    return tuple(
        retry_delay(spec, rng, attempt, base)
        for attempt in range(1, spec.max_retries + 2)
    )
