"""Graceful degradation: explicit coverage reports for partial answers.

The paper's escape hatch from unsolvability is *weakening the guarantee*:
when the communication layer cannot promise that every entity is reachable,
the one-time query is still solvable if the initiator may answer over the
subset it could reach — provided the answer says so.  A
:class:`CoverageReport` is that statement, assembled from the trial trace
after the fact: which entities were expected (reachable from the querier at
issue time), which actually contributed, which the failure detector still
suspected when the query returned, and which the reliable-delivery layer
explicitly gave up on (``delivery_abandoned``).  The ``missing`` set is the
honest witness — the analogue of the paper's ``outside_causal_past``
justification: entities the answer does not cover, each one accounted for
by suspicion, abandonment, or silence.

Reports ride on :class:`repro.engine.trials.QueryOutcome` (as
``coverage_report``) and into result documents (as the trial record's
``coverage`` mapping) whenever a resilience layer with
``partial_results=True`` is installed; without one, nothing is emitted and
documents stay byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable

from repro.sim import trace as tr

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.spec import QueryRecord

#: Trace kinds the report reads (all low-volume: retained by every sink).
_SUSPECT = "suspect"
_RESTORE = "restore"


@dataclass(frozen=True)
class CoverageReport:
    """What a (possibly partial) query answer actually covers.

    Attributes:
        qid: the query this report describes.
        expected: entities reachable from the querier at issue time — the
            set a complete answer would cover.
        reached: entities whose values the answer aggregates.
        missing: ``expected - reached`` — what the answer does not cover.
        suspected: expected entities some live detector still suspected
            when the query returned (net of retractions).
        unreachable: expected entities the delivery layer explicitly
            abandoned a query message to (``delivery_abandoned``).
    """

    qid: int
    expected: tuple[int, ...]
    reached: tuple[int, ...]
    missing: tuple[int, ...]
    suspected: tuple[int, ...]
    unreachable: tuple[int, ...]

    @property
    def complete(self) -> bool:
        """``True`` iff the answer covers every expected entity."""
        return not self.missing

    @property
    def coverage_ratio(self) -> float:
        """``len(reached & expected) / len(expected)`` (1.0 when vacuous)."""
        if not self.expected:
            return 1.0
        expected = set(self.expected)
        return len(expected.intersection(self.reached)) / len(expected)

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON form, embedded in result documents."""
        return {
            "qid": self.qid,
            "complete": self.complete,
            "coverage_ratio": self.coverage_ratio,
            "expected": list(self.expected),
            "reached": list(self.reached),
            "missing": list(self.missing),
            "suspected": list(self.suspected),
            "unreachable": list(self.unreachable),
        }

    @classmethod
    def from_query(
        cls,
        trace: tr.TraceLog,
        record: "QueryRecord",
        expected: Iterable[int],
    ) -> "CoverageReport":
        """Assemble the report for ``record`` from the trial trace.

        Suspicions are netted per ``(monitor, target)`` pair — a
        ``restore`` (e.g. a ``crash_rejoin`` entity resuming heartbeats)
        clears the matching ``suspect`` — and only events up to the query's
        return time count, so a late recovery does not rewrite what the
        initiator knew when it answered.
        """
        expected_set = frozenset(expected)
        reached = frozenset(record.contributors)
        end = record.return_time
        suspected_pairs: set[tuple[int, int]] = set()
        unreachable: set[int] = set()
        for event in trace:
            if end is not None and event.time > end:
                break
            if event.kind == _SUSPECT:
                monitor = event.get("entity")
                target = event.get("target")
                if target is not None:
                    suspected_pairs.add((monitor, target))
            elif event.kind == _RESTORE:
                monitor = event.get("entity")
                target = event.get("target")
                suspected_pairs.discard((monitor, target))
            elif event.kind == tr.DELIVERY_ABANDONED:
                if event.get("qid") == record.qid:
                    receiver = event.get("receiver")
                    if receiver is not None:
                        unreachable.add(receiver)
        suspected = {target for _, target in suspected_pairs} & expected_set
        return cls(
            qid=record.qid,
            expected=tuple(sorted(expected_set)),
            reached=tuple(sorted(reached)),
            missing=tuple(sorted(expected_set - reached)),
            suspected=tuple(sorted(suspected)),
            unreachable=tuple(sorted(unreachable & expected_set)),
        )
