"""Builtin, named resilience policies.

Each preset is one point on the recovery spectrum, sized so the stock
trials (UniformDelay RTTs around 2 time units, horizons of a few hundred)
actually benefit: the default ``base_rto`` of 3.0 sits just above the
round-trip ceiling, so loss-free runs never retransmit spuriously.  They
are the vocabulary behind ``--resilience <name>`` on the CLI and the
string form of the ``resilience`` config field; the E22 recovery audit
(``benchmarks/test_e22_recovery_audit.py``) measures what each buys back
under every fault preset.
"""

from __future__ import annotations

from repro.resilience.spec import ResilienceSpec
from repro.sim.errors import ConfigurationError

#: The builtin policies, by name.  Specs are frozen; sharing the instances
#: is safe.
RESILIENCE_PRESETS: dict[str, ResilienceSpec] = {
    # Reliable delivery with adaptive (Jacobson) retransmission timers.
    "arq": ResilienceSpec(name="arq"),
    # The same ARQ with a fixed base_rto timer — the ablation arm that
    # shows what RTT estimation buys under jitter.
    "arq-static": ResilienceSpec(name="arq-static", adaptive_rto=False),
    # ARQ plus a per-link circuit breaker (pairs with link_flap faults).
    "breaker": ResilienceSpec(name="breaker", breaker_threshold=3),
    # Everything on: breaker + RTT-adaptive failure-detector timeouts.
    "full": ResilienceSpec(
        name="full", breaker_threshold=3, adaptive_detector=True
    ),
}

#: Preset names in a stable, documented order.
PRESET_NAMES = tuple(RESILIENCE_PRESETS)


def resilience_preset(name: str) -> ResilienceSpec:
    """Look up a builtin policy by name (``ConfigurationError`` if unknown)."""
    try:
        return RESILIENCE_PRESETS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown resilience preset {name!r}; builtin presets: "
            f"{', '.join(PRESET_NAMES)}"
        ) from None
