"""The reliable-delivery session layer.

:class:`ReliableTransport` interposes on the two ends of
:class:`repro.sim.network.Network` transport — ``send`` (outbound) and
``_deliver`` (inbound) — and turns the fire-and-forget channel every
protocol uses into an acknowledged, deduplicated, retransmitting session:

* **outbound** — each tracked message is wrapped with a session id
  (``res_rid`` in the payload), registered as pending, and armed with a
  retransmission timer (exponential backoff + deterministic jitter from
  the dedicated ``"resilience"`` RNG stream).
* **inbound** — data messages are acknowledged (``RES_ACK``) and
  deduplicated by session id before the protocol sees them; acks cancel
  the pending timer and feed the per-link Jacobson RTT estimator (Karn's
  rule: only unretransmitted deliveries produce samples).
* **give-up** — after ``max_retries + 1`` unacknowledged transmissions the
  message is abandoned: a ``delivery_abandoned`` trace event is recorded
  and the *sender's* process gets an
  :meth:`~repro.sim.node.Process.on_delivery_abandoned` callback so
  protocols can degrade gracefully instead of hanging.  The waiting peer
  on the other side of the dead link is unblocked by failure detection,
  not by the transport — abandonment is strictly sender-side knowledge.
* **circuit breaker** — with ``breaker_threshold > 0``, repeated delivery
  timeouts on a link trip a breaker that holds further *retransmissions*
  (never first sends, which would re-enter ``Network.send``) until a
  cooldown elapses, then probes half-open with a single retransmission.

Everything the layer does is visible: ``resilience.*`` metrics obey the
ledger ``resilience.timer_fired == resilience.retransmits +
resilience.abandoned + resilience.unreachable + resilience.breaker_blocked``
(every timer fire ends in exactly one of those outcomes), and
``resilience.acks_received <= resilience.sends`` (first acks only).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.resilience.spec import ResilienceSpec, resolve_resilience, retry_delay
from repro.sim import trace as tr
from repro.sim.errors import ConfigurationError
from repro.sim.messages import Message

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.scheduler import Simulator

#: Payload key carrying the session id on wrapped messages.
RID_KEY = "res_rid"

#: The acknowledgement message kind (never shown to protocols).
ACK = "RES_ACK"

#: Breaker trace event kinds (low-volume: retained under every sink).
BREAKER_OPEN = "breaker_open"
BREAKER_HALF_OPEN = "breaker_half_open"
BREAKER_CLOSE = "breaker_close"


class LinkRtt:
    """Jacobson/Karels RTT estimation for one (undirected) link."""

    ALPHA = 0.125
    BETA = 0.25

    __slots__ = ("srtt", "rttvar", "samples")

    def __init__(self) -> None:
        self.srtt: float | None = None
        self.rttvar = 0.0
        self.samples = 0

    def sample(self, rtt: float) -> None:
        """Fold one round-trip measurement into the estimate."""
        self.samples += 1
        if self.srtt is None:
            self.srtt = rtt
            self.rttvar = rtt / 2.0
            return
        self.rttvar = (1.0 - self.BETA) * self.rttvar + self.BETA * abs(
            self.srtt - rtt
        )
        self.srtt = (1.0 - self.ALPHA) * self.srtt + self.ALPHA * rtt

    def rto(self) -> float | None:
        """The classic ``SRTT + 4 * RTTVAR`` timeout (caller clamps)."""
        if self.srtt is None:
            return None
        return self.srtt + 4.0 * self.rttvar


class CircuitBreaker:
    """Per-link breaker: closed → open on repeated timeouts → half-open
    probe after a cooldown → closed again on the first acknowledgement."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    __slots__ = ("threshold", "cooldown", "state", "failures", "opened_at",
                 "trips")

    def __init__(self, threshold: int, cooldown: float) -> None:
        self.threshold = threshold
        self.cooldown = cooldown
        self.state = self.CLOSED
        self.failures = 0
        self.opened_at = 0.0
        self.trips = 0

    def record_failure(self, now: float) -> bool:
        """Count one delivery timeout; return ``True`` if this trip opened
        the breaker (including a failed half-open probe re-opening it)."""
        if self.state == self.HALF_OPEN:
            self.state = self.OPEN
            self.opened_at = now
            self.trips += 1
            return True
        if self.state == self.CLOSED:
            self.failures += 1
            if self.failures >= self.threshold:
                self.state = self.OPEN
                self.opened_at = now
                self.trips += 1
                return True
        return False

    def record_success(self) -> bool:
        """An ack arrived over this link; return ``True`` if the breaker
        transitioned back to closed from open/half-open."""
        transitioned = self.state != self.CLOSED
        self.state = self.CLOSED
        self.failures = 0
        return transitioned

    def blocked_for(self, now: float) -> float:
        """Remaining cooldown (``<= 0`` means a probe may go out)."""
        return self.opened_at + self.cooldown - now


class _Pending:
    """Book-keeping for one in-flight tracked message."""

    __slots__ = ("rid", "original", "wrapped", "attempts", "timer",
                 "last_sent", "retransmitted")

    def __init__(self, rid: int, original: Message, wrapped: Message,
                 sent_at: float) -> None:
        self.rid = rid
        self.original = original
        self.wrapped = wrapped
        self.attempts = 1
        self.timer: Any = None
        self.last_sent = sent_at
        self.retransmitted = False


def _link_key(a: int, b: int) -> tuple[int, int]:
    return (a, b) if a <= b else (b, a)


class ReliableTransport:
    """The deterministic recovery layer between protocols and the network.

    Construct with a :class:`ResilienceSpec` and :meth:`install` on a live
    simulator; the trial runners do both through
    :func:`install_resilience`.
    """

    def __init__(self, spec: ResilienceSpec) -> None:
        if not spec.enabled:
            raise ConfigurationError(
                "cannot install a disabled ResilienceSpec; "
                "resolve_resilience() returns None for it"
            )
        self.spec = spec
        self._sim: "Simulator | None" = None
        self._next_rid = 0
        self._pending: dict[int, _Pending] = {}
        self._seen: set[int] = set()
        self._rtt: dict[tuple[int, int], LinkRtt] = {}
        self._breakers: dict[tuple[int, int], CircuitBreaker] = {}
        self.abandoned = 0

    # ------------------------------------------------------------------
    # Installation & environment
    # ------------------------------------------------------------------

    def install(self, sim: "Simulator") -> "ReliableTransport":
        """Attach to ``sim.network`` (exactly one layer per simulator)."""
        if sim.network.resilience is not None:
            raise ConfigurationError(
                "a resilience layer is already installed on this simulator"
            )
        self._sim = sim
        sim.network.resilience = self
        return self

    @property
    def sim(self) -> "Simulator":
        if self._sim is None:
            raise ConfigurationError("resilience layer is not installed")
        return self._sim

    @property
    def pending_count(self) -> int:
        """Messages currently awaiting acknowledgement."""
        return len(self._pending)

    def link_rtt(self, a: int, b: int) -> LinkRtt | None:
        """The RTT estimator for link ``{a, b}`` (``None`` if no samples)."""
        return self._rtt.get(_link_key(a, b))

    def breaker(self, a: int, b: int) -> CircuitBreaker | None:
        """The circuit breaker for link ``{a, b}`` (``None`` until used)."""
        return self._breakers.get(_link_key(a, b))

    def _breaker_for(self, link: tuple[int, int]) -> CircuitBreaker | None:
        if self.spec.breaker_threshold <= 0:
            return None
        breaker = self._breakers.get(link)
        if breaker is None:
            breaker = CircuitBreaker(
                self.spec.breaker_threshold, self.spec.breaker_cooldown
            )
            self._breakers[link] = breaker
        return breaker

    # ------------------------------------------------------------------
    # Outbound interposition (Network.send)
    # ------------------------------------------------------------------

    def outbound(self, message: Message) -> Message:
        """Wrap and register a tracked message; pass the rest through.

        Acks, excluded kinds and already-wrapped retransmissions flow
        untouched, so the layer never tracks its own control traffic and a
        retransmitted wrapper is never double-registered.
        """
        if (
            message.kind == ACK
            or message.kind in self.spec.exclude_kinds
            or RID_KEY in message.payload
        ):
            return message
        rid = self._next_rid
        self._next_rid += 1
        wrapped = Message(
            sender=message.sender,
            receiver=message.receiver,
            kind=message.kind,
            payload={**message.payload, RID_KEY: rid},
            msg_id=message.msg_id,
        )
        state = _Pending(rid, message, wrapped, self.sim.now)
        self._pending[rid] = state
        self.sim.metrics.inc("resilience.sends")
        self._arm_timer(state)
        return wrapped

    # ------------------------------------------------------------------
    # Inbound interposition (Network._deliver)
    # ------------------------------------------------------------------

    def inbound(self, message: Message) -> Message | None:
        """Consume acks, acknowledge + dedup data; ``None`` = swallow."""
        if message.kind == ACK:
            self._handle_ack(message)
            return None
        rid = message.payload.get(RID_KEY)
        if rid is None:
            return message
        self._send_ack(message.receiver, message.sender, rid)
        if rid in self._seen:
            self.sim.metrics.inc("resilience.duplicates_suppressed")
            return None
        self._seen.add(rid)
        self.sim.metrics.inc("resilience.delivered")
        payload = {k: v for k, v in message.payload.items() if k != RID_KEY}
        return Message(
            sender=message.sender,
            receiver=message.receiver,
            kind=message.kind,
            payload=payload,
            msg_id=message.msg_id,
        )

    def _send_ack(self, acker: int, target: int, rid: int) -> None:
        network = self.sim.network
        reachable = network.has_edge(acker, target)
        if not network.is_present(acker) or not reachable:
            # The sender vanished (or the link did) between send and
            # delivery; its retransmission path will sort itself out.
            self.sim.metrics.inc("resilience.acks_unsendable")
            return
        self.sim.metrics.inc("resilience.acks_sent")
        network.send(Message(
            sender=acker, receiver=target, kind=ACK, payload={RID_KEY: rid},
        ))

    def _handle_ack(self, message: Message) -> None:
        rid = message.payload.get(RID_KEY)
        state = self._pending.get(rid)
        if state is None:
            # A duplicate ack (retransmission raced the first ack).
            self.sim.metrics.inc("resilience.acks_duplicate")
            return
        self.sim.metrics.inc("resilience.acks_received")
        if state.timer is not None:
            state.timer.cancel()
            self.sim.queue.note_cancelled()
            state.timer = None
        link = _link_key(state.original.sender, state.original.receiver)
        if not state.retransmitted:
            # Karn's rule: only unambiguous (never-retransmitted) exchanges
            # produce RTT samples.
            rtt = self.sim.now - state.last_sent
            estimator = self._rtt.get(link)
            if estimator is None:
                estimator = self._rtt[link] = LinkRtt()
            estimator.sample(rtt)
            self.sim.metrics.observe("resilience.rtt", rtt)
        breaker = self._breakers.get(link)
        if breaker is not None and breaker.record_success():
            self.sim.metrics.inc("resilience.breaker_closed")
            self.sim.trace.record(
                self.sim.now, BREAKER_CLOSE, a=link[0], b=link[1],
            )
        del self._pending[rid]

    # ------------------------------------------------------------------
    # Retransmission machinery
    # ------------------------------------------------------------------

    def _rto_for(self, state: _Pending) -> float:
        if self.spec.adaptive_rto:
            link = _link_key(state.original.sender, state.original.receiver)
            estimator = self._rtt.get(link)
            if estimator is not None:
                rto = estimator.rto()
                if rto is not None:
                    return rto
        return self.spec.base_rto

    def _arm_timer(self, state: _Pending) -> None:
        delay = retry_delay(
            self.spec, self.sim.rng_for("resilience"),
            state.attempts, self._rto_for(state),
        )
        rid = state.rid
        state.timer = self.sim.schedule(
            delay, lambda: self._on_timer(rid), label=f"resilience:rto:{rid}",
        )

    def _hold_timer(self, state: _Pending, delay: float) -> None:
        """Re-arm without consuming retry budget (breaker cooldown)."""
        rid = state.rid
        state.timer = self.sim.schedule(
            max(delay, self.spec.min_rto),
            lambda: self._on_timer(rid),
            label=f"resilience:hold:{rid}",
        )

    def _on_timer(self, rid: int) -> None:
        state = self._pending.get(rid)
        if state is None:  # pragma: no cover - acked timers are cancelled
            return
        state.timer = None
        now = self.sim.now
        metrics = self.sim.metrics
        metrics.inc("resilience.timer_fired")
        link = _link_key(state.original.sender, state.original.receiver)
        breaker = self._breaker_for(link)
        probing = False
        if breaker is not None and breaker.state == CircuitBreaker.OPEN:
            remaining = breaker.blocked_for(now)
            if remaining > 0:
                # The link is quarantined: wait out the cooldown without
                # burning the retry budget.
                metrics.inc("resilience.breaker_blocked")
                self._hold_timer(state, remaining)
                return
            breaker.state = CircuitBreaker.HALF_OPEN
            probing = True
            metrics.inc("resilience.breaker_half_open")
            self.sim.trace.record(
                now, BREAKER_HALF_OPEN, a=link[0], b=link[1],
            )
        elif breaker is not None:
            # A genuine timeout: the previous transmission went unanswered.
            if breaker.record_failure(now):
                metrics.inc("resilience.breaker_opened")
                self.sim.trace.record(
                    now, BREAKER_OPEN, a=link[0], b=link[1],
                    failures=breaker.failures,
                )
        if state.attempts >= self.spec.max_retries + 1:
            self._abandon(state, "max_retries")
            return
        network = self.sim.network
        if not network.is_present(state.original.sender):
            self._abandon(state, "sender_departed")
            return
        if breaker is not None and not probing and breaker.state == CircuitBreaker.OPEN:
            # This very timeout tripped the breaker: hold retransmissions.
            metrics.inc("resilience.breaker_blocked")
            self._hold_timer(state, breaker.blocked_for(now))
            return
        receiver = state.original.receiver
        reachable = network.has_edge(state.original.sender, receiver)
        if not reachable:
            # The link (or the receiver) is gone right now; it may come
            # back (link_flap, partition heal), so this consumes retry
            # budget rather than looping forever.
            metrics.inc("resilience.unreachable")
            state.attempts += 1
            self._arm_timer(state)
            return
        state.attempts += 1
        state.retransmitted = True
        state.last_sent = now
        metrics.inc("resilience.retransmits")
        self.sim.trace.record(
            now, tr.RETRANSMIT, rid=rid, msg_kind=state.original.kind,
            sender=state.original.sender, receiver=receiver,
            attempt=state.attempts,
        )
        network.send(state.wrapped)
        self._arm_timer(state)

    def _abandon(self, state: _Pending, reason: str) -> None:
        del self._pending[state.rid]
        self.abandoned += 1
        self.sim.metrics.inc("resilience.abandoned")
        original = state.original
        data: dict[str, Any] = {
            "rid": state.rid,
            "msg_kind": original.kind,
            "sender": original.sender,
            "receiver": original.receiver,
            "attempts": state.attempts,
            "reason": reason,
        }
        qid = original.payload.get("qid")
        if qid is not None:
            data["qid"] = qid
        self.sim.trace.record(self.sim.now, tr.DELIVERY_ABANDONED, **data)
        network = self.sim.network
        if network.is_present(original.sender):
            network.process(original.sender).on_delivery_abandoned(original)

    # ------------------------------------------------------------------
    # Adaptive failure-detector timeouts
    # ------------------------------------------------------------------

    def detector_timeout(
        self, monitor: int, target: int, fallback: float, period: float
    ) -> float:
        """A silence threshold derived from the link's RTT estimate.

        One heartbeat period plus half an SRTT (the one-way trip) plus
        ``detector_beta`` RTTVARs of slack, floored at ``period + min_rto``
        so the detector can never out-race its own heartbeat cadence.
        Falls back to the static ``fallback`` until samples exist.
        """
        estimator = self._rtt.get(_link_key(monitor, target))
        if estimator is None or estimator.srtt is None:
            return fallback
        adaptive = (
            period
            + estimator.srtt / 2.0
            + self.spec.detector_beta * estimator.rttvar
        )
        return max(adaptive, period + self.spec.min_rto)


def install_resilience(
    resilience: "ResilienceSpec | str | None", sim: "Simulator"
) -> ReliableTransport | None:
    """Resolve and install a recovery layer on ``sim`` (``None`` = none).

    The one-call form the trial runners use: ``None``, a disabled spec, or
    an unset config field all install nothing and leave the simulation
    byte-identical to a run without the resilience plane.
    """
    spec = resolve_resilience(resilience)
    if spec is None:
        return None
    return ReliableTransport(spec).install(sim)
