"""Builtin, named fault plans.

Each preset is a small, representative adversary, sized so that the stock
E1–E21 trials (horizon ≈ 150, protocol activity concentrated in the first
few tens of time units) actually feel it.  They are the vocabulary behind
``--fault-plan <name>`` on the CLI and the string form of the ``faults``
config field, and the chaos audit (``benchmarks/test_chaos_audit.py``)
runs every one of them under the full invariant-checker battery.
"""

from __future__ import annotations

from repro.faults.spec import FaultPlan, FaultSpec
from repro.sim.errors import ConfigurationError

#: The builtin plans, by name.  Plans are frozen; sharing the instances is
#: safe, and composing them (``fault_preset("drop-storm") +
#: fault_preset("silent-crash")``) builds fresh plans.
FAULT_PRESETS: dict[str, FaultPlan] = {
    # Message-level mischief: geography degrades in *quality*.
    "drop-storm": FaultPlan.of(
        FaultSpec("drop_burst", start=2.0, duration=10.0, probability=0.3),
        name="drop-storm",
    ),
    "dup-flood": FaultPlan.of(
        FaultSpec("duplicate", start=2.0, duration=10.0, probability=0.5,
                  copies=2),
        name="dup-flood",
    ),
    "jitter-spike": FaultPlan.of(
        FaultSpec("delay_spike", start=2.0, duration=10.0, probability=1.0,
                  magnitude=3.0),
        name="jitter-spike",
    ),
    # Geography degrades in *reachability*.
    "flaky-links": FaultPlan.of(
        FaultSpec("link_flap", start=2.0, duration=1.5, probability=0.2,
                  count=3, period=4.0),
        name="flaky-links",
    ),
    "split-brain": FaultPlan.of(
        FaultSpec("partition", start=3.0, duration=12.0, fraction=0.5),
        name="split-brain",
    ),
    # The entity dimension, without the courtesy of a goodbye.
    "silent-crash": FaultPlan.of(
        FaultSpec("crash", start=3.0, count=2),
        name="silent-crash",
    ),
    "amnesia": FaultPlan.of(
        FaultSpec("crash_rejoin", start=3.0, count=1, rejoin_after=5.0),
        name="amnesia",
    ),
    # Everything at once: the paper's adversary on a bad day.
    "chaos-mix": FaultPlan.of(
        FaultSpec("drop_burst", start=2.0, duration=8.0, probability=0.2),
        FaultSpec("delay_spike", start=6.0, duration=8.0, probability=0.5,
                  magnitude=2.0),
        FaultSpec("link_flap", start=4.0, duration=1.0, probability=0.15,
                  count=2, period=6.0),
        FaultSpec("crash", start=5.0, count=1),
        name="chaos-mix",
    ),
}

#: Preset names in a stable, documented order.
PRESET_NAMES = tuple(FAULT_PRESETS)


def fault_preset(name: str) -> FaultPlan:
    """Look up a builtin plan by name (``ConfigurationError`` if unknown)."""
    try:
        return FAULT_PRESETS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown fault preset {name!r}; builtin presets: "
            f"{', '.join(PRESET_NAMES)}"
        ) from None
