"""Declarative fault specifications.

The paper's core claim is that *dynamism is the adversary*: entities leave
without warning, links fail, delays spike.  :class:`FaultSpec` and
:class:`FaultPlan` make that adversary a first-class, declarative object —
plain, frozen, picklable data describing *when* and *how* the network
misbehaves, in the same mould as :class:`repro.churn.spec.ChurnSpec`.

A plan is compiled into simulator events by
:class:`repro.faults.injector.FaultInjector` only inside the worker that
runs the trial, so plans ride through :mod:`repro.engine.plan`'s grid
fan-out and the ProcessPool executor unchanged.

Determinism contract: an **empty** plan (``FaultPlan.none()``) resolves to
``None`` and installs nothing — a trial configured with it is byte-identical
to a trial with no plan at all (no extra RNG draws, no extra events, no
extra metrics keys).  All fault randomness draws from the dedicated
``"faults"`` seed stream, never from the transport stream, so adding a
fault window never perturbs the delays of messages outside it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields, replace
from typing import Any, Iterable, Mapping

from repro.sim.errors import ConfigurationError

#: The fault vocabulary, mirroring the adversaries of the paper's two
#: dimensions: message-level mischief (geography as *quality*), link and
#: partition faults (geography as *reachability*), and crashes (the entity
#: dimension without the courtesy of a goodbye).
FAULT_KINDS = (
    "drop_burst",     # window: drop each message with `probability`
    "duplicate",      # window: re-deliver each message `copies` extra times
    "delay_spike",    # window: add `magnitude` delay (per-message, per-link)
    "link_flap",      # `count` flaps: sever a fraction of links, restore
    "partition",      # scheduled split (topology.partition), optional heal
    "crash",          # silent crash of `count` victims (no notify)
    "crash_rejoin",   # silent crash, then a fresh entity joins back
)

#: Kinds that act on individual messages through the send interposition
#: point (they need an open time window).
MESSAGE_KINDS = frozenset({"drop_burst", "duplicate", "delay_spike"})

#: JSON schema identifier for serialised plans.
PLAN_SCHEMA = "repro-fault-plan"
PLAN_VERSION = 1


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: a kind, a time window and its parameters.

    Attributes:
        kind: one of :data:`FAULT_KINDS`.
        start: simulation time at which the fault activates.
        duration: window length for message-level kinds and the down time
            for ``link_flap``; for ``partition`` it is the time until the
            heal (``0`` = never heals).  Instantaneous kinds (``crash``,
            ``crash_rejoin``) ignore it.
        probability: per-message drop/duplicate/delay probability inside
            the window; for ``link_flap`` the fraction of current links
            severed per flap.
        magnitude: extra delay (time units) added by ``delay_spike``.
        copies: extra deliveries per duplicated message.
        count: victims per ``crash``/``crash_rejoin``; flaps per
            ``link_flap``.
        period: time between consecutive flaps.
        fraction: bisection fraction for ``partition``.
        rejoin_after: delay before a ``crash_rejoin`` victim's replacement
            entity joins (a *new* entity — ids are never reused).
        links: optional link whitelist as ``(a, b)`` pid pairs; restricts
            message-level faults and ``link_flap`` to those links
            (``None`` = every link).
    """

    kind: str
    start: float = 0.0
    duration: float = 0.0
    probability: float = 1.0
    magnitude: float = 0.0
    copies: int = 1
    count: int = 1
    period: float = 1.0
    fraction: float = 0.5
    rejoin_after: float = 10.0
    links: tuple[tuple[int, int], ...] | None = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; use one of "
                f"{', '.join(FAULT_KINDS)}"
            )
        if self.start < 0:
            raise ConfigurationError(f"fault start must be >= 0, got {self.start}")
        if self.duration < 0:
            raise ConfigurationError(
                f"fault duration must be >= 0, got {self.duration}"
            )
        if self.kind in MESSAGE_KINDS or self.kind == "link_flap":
            if self.duration <= 0:
                raise ConfigurationError(
                    f"{self.kind} needs a positive window duration, "
                    f"got {self.duration}"
                )
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigurationError(
                f"fault probability must be in [0, 1], got {self.probability}"
            )
        if self.magnitude < 0:
            raise ConfigurationError(
                f"delay magnitude must be >= 0, got {self.magnitude}"
            )
        if self.copies < 1:
            raise ConfigurationError(f"copies must be >= 1, got {self.copies}")
        if self.count < 1:
            raise ConfigurationError(f"count must be >= 1, got {self.count}")
        if self.period <= 0:
            raise ConfigurationError(f"period must be > 0, got {self.period}")
        if not 0.0 < self.fraction < 1.0:
            raise ConfigurationError(
                f"partition fraction must be in (0, 1), got {self.fraction}"
            )
        if self.rejoin_after <= 0:
            raise ConfigurationError(
                f"rejoin_after must be > 0, got {self.rejoin_after}"
            )
        if self.links is not None:
            normalized = tuple(sorted(
                (min(int(a), int(b)), max(int(a), int(b)))
                for a, b in self.links
            ))
            for a, b in normalized:
                if a == b:
                    raise ConfigurationError(f"link ({a}, {b}) is a self-loop")
            object.__setattr__(self, "links", normalized)

    # ------------------------------------------------------------------
    # Schedule accounting
    # ------------------------------------------------------------------

    def window(self) -> tuple[float, float]:
        """The ``[start, end)`` interval during which the fault acts."""
        return (self.start, self.start + self.duration)

    def activations(self) -> int:
        """How many ``fault_injected`` activations this spec schedules.

        Every activation fires unconditionally at its scheduled time (even
        if, say, no crash victim is present), so for any plan executed past
        its :meth:`FaultPlan.end_time` the metrics counter
        ``faults.injected`` equals :meth:`FaultPlan.scheduled_count`
        exactly.
        """
        if self.kind == "link_flap":
            return self.count
        return 1

    def end_time(self) -> float:
        """The last simulation time at which this spec still acts."""
        if self.kind == "link_flap":
            return self.start + (self.count - 1) * self.period + self.duration
        if self.kind == "crash_rejoin":
            return self.start + self.rejoin_after
        if self.kind == "crash":
            return self.start
        return self.start + self.duration

    def _sort_key(self) -> tuple[Any, ...]:
        return (
            self.start, self.kind, self.duration, self.probability,
            self.magnitude, self.copies, self.count, self.period,
            self.fraction, self.rejoin_after, self.links or (),
        )

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON form (lossless; see :meth:`from_dict`)."""
        record: dict[str, Any] = {"kind": self.kind}
        for spec_field in fields(self):
            if spec_field.name == "kind":
                continue
            value = getattr(self, spec_field.name)
            if spec_field.name == "links":
                if value is not None:
                    record["links"] = [[a, b] for a, b in value]
                continue
            record[spec_field.name] = value
        return record

    @classmethod
    def from_dict(cls, record: Mapping[str, Any]) -> "FaultSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        known = {spec_field.name for spec_field in fields(cls)}
        unknown = sorted(set(record) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown fault spec field(s) {unknown}; known: "
                f"{', '.join(sorted(known))}"
            )
        params = dict(record)
        links = params.get("links")
        if links is not None:
            params["links"] = tuple((a, b) for a, b in links)
        return cls(**params)


def _canonical(specs: Iterable[FaultSpec]) -> tuple[FaultSpec, ...]:
    return tuple(sorted(specs, key=FaultSpec._sort_key))


@dataclass(frozen=True)
class FaultPlan:
    """A composable, picklable schedule of faults.

    Specs are kept in canonical (start-time) order, so two plans built from
    the same specs in any order compare equal and compile to the identical
    event schedule — composition is order-insensitive by construction.
    """

    name: str = ""
    specs: tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        for spec in self.specs:
            if not isinstance(spec, FaultSpec):
                raise ConfigurationError(
                    f"plan specs must be FaultSpec, got {type(spec).__name__}"
                )
        object.__setattr__(self, "specs", _canonical(self.specs))

    # ------------------------------------------------------------------
    # Construction & composition
    # ------------------------------------------------------------------

    @classmethod
    def none(cls) -> "FaultPlan":
        """The empty plan: resolves to no injector and changes nothing."""
        return cls(name="none")

    @classmethod
    def of(cls, *specs: FaultSpec, name: str = "") -> "FaultPlan":
        """Build a plan from specs given as positional arguments."""
        return cls(name=name, specs=tuple(specs))

    def compose(self, other: "FaultPlan", name: str | None = None) -> "FaultPlan":
        """Merge two plans into one (canonical order, both names joined)."""
        if name is None:
            parts = [part for part in (self.name, other.name) if part]
            name = "+".join(parts)
        return FaultPlan(name=name, specs=self.specs + other.specs)

    def __add__(self, other: "FaultPlan") -> "FaultPlan":
        return self.compose(other)

    def __bool__(self) -> bool:
        return bool(self.specs)

    def __len__(self) -> int:
        return len(self.specs)

    # ------------------------------------------------------------------
    # Schedule accounting
    # ------------------------------------------------------------------

    def scheduled_count(self) -> int:
        """Total fault activations this plan schedules (see
        :meth:`FaultSpec.activations`)."""
        return sum(spec.activations() for spec in self.specs)

    def end_time(self) -> float:
        """When the last scheduled fault stops acting (0.0 if empty)."""
        return max((spec.end_time() for spec in self.specs), default=0.0)

    def kinds(self) -> tuple[str, ...]:
        """The distinct fault kinds in this plan, sorted."""
        return tuple(sorted({spec.kind for spec in self.specs}))

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": PLAN_SCHEMA,
            "version": PLAN_VERSION,
            "name": self.name,
            "specs": [spec.to_dict() for spec in self.specs],
        }

    def to_json(self) -> str:
        """Canonical JSON (sorted keys, indent 2, trailing newline)."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_dict(cls, record: Mapping[str, Any]) -> "FaultPlan":
        if record.get("schema", PLAN_SCHEMA) != PLAN_SCHEMA:
            raise ConfigurationError(
                f"not a {PLAN_SCHEMA} document "
                f"(schema={record.get('schema')!r})"
            )
        version = record.get("version", PLAN_VERSION)
        if version != PLAN_VERSION:
            raise ConfigurationError(
                f"unsupported fault plan version {version!r}; this release "
                f"reads version {PLAN_VERSION}"
            )
        return cls(
            name=record.get("name", ""),
            specs=tuple(
                FaultSpec.from_dict(entry) for entry in record.get("specs", ())
            ),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    def shifted(self, offset: float) -> "FaultPlan":
        """A copy with every spec's start moved by ``offset`` (>= 0 total)."""
        return FaultPlan(
            name=self.name,
            specs=tuple(
                replace(spec, start=spec.start + offset) for spec in self.specs
            ),
        )


def resolve_faults(faults: "FaultPlan | str | None") -> FaultPlan | None:
    """Normalise a config's ``faults`` field to a plan (or ``None``).

    Accepts a :class:`FaultPlan`, a builtin preset name (see
    :data:`repro.faults.presets.FAULT_PRESETS`) or ``None``.  Empty plans
    normalise to ``None`` — that is what makes ``FaultPlan.none()``
    byte-identical to configuring no plan at all.
    """
    if faults is None:
        return None
    if isinstance(faults, str):
        from repro.faults.presets import fault_preset

        faults = fault_preset(faults)
    if isinstance(faults, FaultPlan):
        return faults if faults.specs else None
    raise ConfigurationError(
        f"'faults' must be a FaultPlan or a preset name, "
        f"got {type(faults).__name__}"
    )
