"""The deterministic fault-injection plane.

Dynamism is the paper's adversary; this package makes the adversary a
first-class, declarative, seeded object:

* :mod:`repro.faults.spec` — :class:`FaultSpec` / :class:`FaultPlan`,
  plain frozen data (picklable, JSON round-trippable) describing *when*
  and *how* the network misbehaves.
* :mod:`repro.faults.presets` — named builtin plans
  (``drop-storm``, ``split-brain``, ``chaos-mix``, …).
* :mod:`repro.faults.injector` — :class:`FaultInjector`, which compiles a
  plan into simulator events and interposes on
  :meth:`repro.sim.network.Network.send`.

The trial runners accept a plan (or preset name) through the ``faults``
config field; the CLI exposes the same through ``--fault-plan``.  See
``docs/FAULTS.md`` for the full tour.
"""

from repro.faults.injector import FaultInjector, SendEffect, install_plan
from repro.faults.presets import FAULT_PRESETS, PRESET_NAMES, fault_preset
from repro.faults.spec import (
    FAULT_KINDS,
    MESSAGE_KINDS,
    PLAN_SCHEMA,
    PLAN_VERSION,
    FaultPlan,
    FaultSpec,
    resolve_faults,
)

__all__ = [
    "FAULT_KINDS",
    "FAULT_PRESETS",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "MESSAGE_KINDS",
    "PLAN_SCHEMA",
    "PLAN_VERSION",
    "PRESET_NAMES",
    "SendEffect",
    "fault_preset",
    "install_plan",
    "resolve_faults",
]
