"""Compiling fault plans into simulator events, and interposing on sends.

:class:`FaultInjector` is the runtime half of the fault plane: it takes a
:class:`~repro.faults.spec.FaultPlan` and

* compiles every spec into scheduled simulator events (window open/close,
  flaps, partitions, crashes) at install time — the same shape churn
  models use — and
* registers itself as the **single interposition point** on
  :meth:`repro.sim.network.Network.send`: while a message-level window is
  open, each send is offered to :meth:`send_effect`, which may drop it,
  delay it or duplicate it.

Every activation is counted under ``faults.injected`` (and
``faults.injected.<kind>``) in the metrics registry and recorded as a
``fault_injected`` trace event, so injections appear inline in result
documents, causal analysis and Perfetto timelines.  All randomness draws
from the simulator's dedicated ``"faults"`` stream: the transport stream is
untouched, so messages outside fault windows sample exactly the delays they
would without a plan.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable

from repro.faults.spec import FaultPlan, FaultSpec
from repro.sim import trace as tr
from repro.sim.errors import ConfigurationError, SimulationError
from repro.sim.events import PRIORITY_MEMBERSHIP
from repro.sim.messages import Message
from repro.topology.attachment import AttachmentRule, UniformAttachment
from repro.topology.partition import PartitionFault, random_bisection

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.node import Process
    from repro.sim.scheduler import Simulator


@dataclass(frozen=True)
class SendEffect:
    """What the active fault windows decided about one message.

    Attributes:
        drop: discard the message instead of delivering it.
        reason: drop reason recorded in the trace (``fault:<kind>``).
        extra_delay: additional transmission delay, added to the sampled
            one.
        copies: extra deliveries to schedule (duplication).
    """

    drop: bool = False
    reason: str | None = None
    extra_delay: float = 0.0
    copies: int = 0


class FaultInjector:
    """Executes a :class:`FaultPlan` against one simulator.

    Args:
        plan: the declarative fault schedule.
        protected: pids exempt from crash victim selection (the trial
            runners pass the querier / reader / origin when the matching
            ``protect_*`` config flag is set, mirroring churn immortality).
    """

    def __init__(
        self, plan: FaultPlan, protected: Iterable[int] = ()
    ) -> None:
        if not isinstance(plan, FaultPlan):
            raise ConfigurationError(
                f"plan must be a FaultPlan, got {type(plan).__name__}"
            )
        self.plan = plan
        self.protected = frozenset(protected)
        self._sim: "Simulator | None" = None
        self._factory: Callable[[], "Process"] | None = None
        self._attachment: AttachmentRule = UniformAttachment(2)
        #: Open message-level windows as (spec index, spec), in spec order.
        self._active: list[tuple[int, FaultSpec]] = []
        self.partitions: list[PartitionFault] = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def sim(self) -> "Simulator":
        if self._sim is None:
            raise SimulationError("fault injector is not installed")
        return self._sim

    @property
    def rng(self) -> random.Random:
        """The dedicated fault randomness stream."""
        return self.sim.rng_for("faults")

    def install(
        self,
        sim: "Simulator",
        factory: Callable[[], "Process"] | None = None,
        attachment: AttachmentRule | None = None,
    ) -> "FaultInjector":
        """Compile the plan into events on ``sim`` and hook the network.

        ``factory`` builds the replacement process for ``crash_rejoin``
        specs (required iff the plan contains one); ``attachment`` is how
        the replacement picks its first neighbors.
        """
        if self._sim is not None:
            raise SimulationError("fault injector is already installed")
        if sim.network.fault_injector is not None:
            raise SimulationError(
                "the simulator already has a fault injector installed"
            )
        needs_factory = any(
            spec.kind == "crash_rejoin" for spec in self.plan.specs
        )
        if needs_factory and factory is None:
            raise ConfigurationError(
                "this plan contains crash_rejoin faults; install() needs a "
                "process factory to build the replacement entities"
            )
        self._sim = sim
        self._factory = factory
        if attachment is not None:
            self._attachment = attachment
        for index, spec in enumerate(self.plan.specs):
            self._compile(index, spec)
        sim.network.fault_injector = self
        return self

    # ------------------------------------------------------------------
    # Compilation: one spec -> scheduled events
    # ------------------------------------------------------------------

    def _compile(self, index: int, spec: FaultSpec) -> None:
        sim = self.sim
        if spec.kind in ("drop_burst", "duplicate", "delay_spike"):
            sim.at(spec.start, lambda: self._open_window(index, spec),
                   priority=PRIORITY_MEMBERSHIP,
                   label=f"fault:{spec.kind}:open")
            sim.at(spec.start + spec.duration,
                   lambda: self._close_window(index, spec),
                   priority=PRIORITY_MEMBERSHIP,
                   label=f"fault:{spec.kind}:close")
        elif spec.kind == "link_flap":
            for flap in range(spec.count):
                at = spec.start + flap * spec.period
                sim.at(at, lambda f=flap: self._flap(index, spec, f),
                       priority=PRIORITY_MEMBERSHIP, label="fault:link_flap")
        elif spec.kind == "partition":
            fault = PartitionFault(
                at=spec.start,
                heal_at=(spec.start + spec.duration) if spec.duration else None,
                groups=random_bisection(spec.fraction),
            )
            fault.install(sim)
            self.partitions.append(fault)
            sim.at(spec.start, lambda: self._mark(index, spec),
                   priority=PRIORITY_MEMBERSHIP, label="fault:partition")
        elif spec.kind in ("crash", "crash_rejoin"):
            sim.at(spec.start, lambda: self._crash(index, spec),
                   priority=PRIORITY_MEMBERSHIP, label=f"fault:{spec.kind}")
        else:  # pragma: no cover - FaultSpec validation forbids this
            raise ConfigurationError(f"unknown fault kind {spec.kind!r}")

    def _record_injection(self, index: int, spec: FaultSpec, **data: object) -> None:
        sim = self.sim
        sim.metrics.inc("faults.injected")
        sim.metrics.inc(f"faults.injected.{spec.kind}")
        sim.trace.record(
            sim.now, tr.FAULT_INJECTED, fault=spec.kind, spec=index, **data
        )

    # --- message-level windows ---------------------------------------

    def _open_window(self, index: int, spec: FaultSpec) -> None:
        self._active.append((index, spec))
        self._active.sort(key=lambda pair: pair[0])
        self._record_injection(
            index, spec, until=spec.start + spec.duration,
            probability=spec.probability,
        )

    def _close_window(self, index: int, spec: FaultSpec) -> None:
        self._active = [pair for pair in self._active if pair[0] != index]
        self.sim.trace.record(
            self.sim.now, tr.FAULT_CLEARED, fault=spec.kind, spec=index
        )

    # --- link flaps ---------------------------------------------------

    def _flap(self, index: int, spec: FaultSpec, flap: int) -> None:
        network = self.sim.network
        if spec.links is not None:
            candidates = [
                pair for pair in spec.links if pair in network.edges()
            ]
        else:
            candidates = sorted(network.edges())
        severed: list[tuple[int, int]] = []
        if candidates:
            goal = max(1, round(len(candidates) * spec.probability))
            severed = sorted(self.rng.sample(candidates, min(goal, len(candidates))))
        self._record_injection(
            index, spec, flap=flap, severed=len(severed),
        )
        for a, b in severed:
            network.remove_edge(a, b)
        if severed:
            self.sim.metrics.inc("faults.links_severed", len(severed))
            self.sim.schedule(
                spec.duration, lambda: self._restore(index, spec, severed),
                priority=PRIORITY_MEMBERSHIP, label="fault:link_flap:restore",
            )

    def _restore(
        self, index: int, spec: FaultSpec, severed: list[tuple[int, int]]
    ) -> None:
        network = self.sim.network
        restored = 0
        for a, b in severed:
            if network.is_present(a) and network.is_present(b):
                network.add_edge(a, b)
                restored += 1
        self.sim.trace.record(
            self.sim.now, tr.FAULT_CLEARED, fault=spec.kind, spec=index,
            restored=restored,
        )

    # --- partitions ---------------------------------------------------

    def _mark(self, index: int, spec: FaultSpec) -> None:
        self._record_injection(
            index, spec, fraction=spec.fraction,
            heal_at=(spec.start + spec.duration) if spec.duration else None,
        )

    # --- crashes ------------------------------------------------------

    def _crash(self, index: int, spec: FaultSpec) -> None:
        sim = self.sim
        network = sim.network
        candidates = sorted(set(network.present()) - self.protected)
        victims: list[int] = []
        if candidates:
            victims = sorted(
                self.rng.sample(candidates, min(spec.count, len(candidates)))
            )
        self._record_injection(
            index, spec, victims=tuple(victims), silent=True,
        )
        # Crash-without-notify: suppress the perfect-failure-detector
        # courtesy callback no matter how the network is configured.
        saved = network.notify_leaves
        network.notify_leaves = False
        try:
            for pid in victims:
                sim.kill(pid)
        finally:
            network.notify_leaves = saved
        if victims:
            sim.metrics.inc("faults.crashes", len(victims))
        if spec.kind == "crash_rejoin":
            for _ in victims:
                sim.schedule(
                    spec.rejoin_after, self._rejoin,
                    priority=PRIORITY_MEMBERSHIP, label="fault:rejoin",
                )

    def _rejoin(self) -> None:
        sim = self.sim
        assert self._factory is not None  # validated at install time
        proc = self._factory()
        neighbors = self._attachment.choose(sim.network, self.rng)
        sim.spawn(proc, neighbors)
        sim.metrics.inc("faults.rejoins")

    # ------------------------------------------------------------------
    # The send interposition point (called by Network.send)
    # ------------------------------------------------------------------

    def send_effect(self, message: Message) -> SendEffect | None:
        """Decide what the open windows do to one message.

        Returns ``None`` when no window is open (the fast path — no RNG
        draws, no allocation).  Specs are consulted in plan order; a drop
        short-circuits the rest.
        """
        if not self._active:
            return None
        link = (
            min(message.sender, message.receiver),
            max(message.sender, message.receiver),
        )
        extra_delay = 0.0
        copies = 0
        for index, spec in self._active:
            if spec.links is not None and link not in spec.links:
                continue
            if spec.kind == "drop_burst":
                if self.rng.random() < spec.probability:
                    return SendEffect(drop=True, reason=f"fault:{spec.kind}")
            elif spec.kind == "duplicate":
                if self.rng.random() < spec.probability:
                    copies += spec.copies
            elif spec.kind == "delay_spike":
                if spec.probability >= 1.0 or self.rng.random() < spec.probability:
                    extra_delay += spec.magnitude
        if extra_delay == 0.0 and copies == 0:
            return None
        return SendEffect(extra_delay=extra_delay, copies=copies)


def install_plan(
    plan: "FaultPlan | str | None",
    sim: "Simulator",
    factory: Callable[[], "Process"] | None = None,
    protected: Iterable[int] = (),
    attachment: AttachmentRule | None = None,
) -> FaultInjector | None:
    """Resolve ``plan`` and install an injector on ``sim`` (or do nothing).

    The one-call convenience the trial runners use: ``None`` and empty
    plans install nothing and return ``None``, preserving byte-identical
    no-plan behavior.
    """
    from repro.faults.spec import resolve_faults

    resolved = resolve_faults(plan)
    if resolved is None:
        return None
    injector = FaultInjector(resolved, protected=protected)
    return injector.install(sim, factory=factory, attachment=attachment)
