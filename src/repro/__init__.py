"""repro: an executable model of dynamic distributed systems.

Reproduction of Baldoni, Bertier, Raynal & Tucci-Piergiovanni,
*Looking for a Definition of Dynamic Distributed Systems* (PaCT 2007).

The package turns the paper's two-dimensional definition space into
runnable code:

* :mod:`repro.core` — arrival classes, knowledge classes, the system-class
  lattice, the run formalism, the one-time-query specification and the
  solvability decision table;
* :mod:`repro.sim` — a deterministic discrete-event simulator;
* :mod:`repro.topology` — communication graphs and attachment rules;
* :mod:`repro.churn` — generative churn models, synthetic session traces
  and adversary constructions;
* :mod:`repro.protocols` — the wave (flooding/echo) one-time-query
  protocol, the request/collect baseline and push-sum gossip;
* :mod:`repro.analysis` — metrics, statistics and tables;
* :mod:`repro.engine` — the layered experiment engine: plan expansion,
  serial/parallel trial executors, and the schema-versioned result store;
* :mod:`repro.obs` — the observability layer: metrics registry and
  pluggable trace sinks;
* :mod:`repro.bench` — preset scenarios and the callable-based sweep
  harness (its ``runner`` submodules are deprecated shims);
* :mod:`repro.api` — the stable public facade re-exporting the blessed
  surface of all of the above.

Quickstart (the stable facade — :mod:`repro.api`)::

    from repro.api import QueryConfig, run_query

    outcome = run_query(QueryConfig(n=32, topology="er", aggregate="SUM",
                                    ttl=None, seed=7))
    print(outcome.verdict, outcome.latency, outcome.messages)

Many trials at once (the engine)::

    from repro.api import ExecutorSpec, build_plan, run_plan

    plan = build_plan("churn-sweep", grid={"churn_rate": [0.0, 2.0, 8.0]},
                      base={"n": 32, "aggregate": "COUNT"}, trials=8)
    store = run_plan(plan, executor=ExecutorSpec.parallel(jobs=4))
    print(store.summary())   # results independent of the executor
"""

from repro.engine.trials import GossipConfig, QueryConfig, run_gossip, run_query
from repro.engine import (
    ExperimentPlan,
    ParallelExecutor,
    ResultStore,
    SerialExecutor,
    build_plan,
    run_plan,
)
from repro.core import (
    FiniteArrival,
    InfiniteArrivalBounded,
    InfiniteArrivalFinite,
    InfiniteArrivalUnbounded,
    OneTimeQuerySpec,
    Run,
    StaticArrival,
    SystemClass,
    complete,
    known_diameter,
    known_size,
    local,
    one_time_query_solvability,
    standard_lattice,
)
from repro.sim import Simulator
from repro.synchronous import KnowledgeFlood, SynchronousSystem
from repro.version import package_version

#: Resolved from installed package metadata when available, so installed
#: copies report their true version; result documents embed it as
#: ``repro_version`` for provenance.
__version__ = package_version()

__all__ = [
    "ExperimentPlan",
    "FiniteArrival",
    "GossipConfig",
    "ParallelExecutor",
    "ResultStore",
    "SerialExecutor",
    "build_plan",
    "run_plan",
    "InfiniteArrivalBounded",
    "InfiniteArrivalFinite",
    "InfiniteArrivalUnbounded",
    "OneTimeQuerySpec",
    "QueryConfig",
    "Run",
    "Simulator",
    "SynchronousSystem",
    "KnowledgeFlood",
    "StaticArrival",
    "SystemClass",
    "__version__",
    "complete",
    "known_diameter",
    "known_size",
    "local",
    "one_time_query_solvability",
    "run_gossip",
    "run_query",
    "standard_lattice",
]
