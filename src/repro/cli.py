"""Command-line interface.

Run experiments without writing a script::

    python -m repro query  --n 32 --topology er --aggregate SUM
    python -m repro query  --n 32 --churn-rate 2.0 --trials 5
    python -m repro gossip --n 24 --mode count --rounds 60
    python -m repro matrix
    python -m repro describe --arrival inf-bounded --knowledge local
    python -m repro sweep --rates 0,0.5,2,8 --trials 8 --jobs 4

The experiment commands — ``query``, ``gossip`` and ``sweep`` — share one
flag vocabulary and all run through the layered experiment engine
(:mod:`repro.engine`):

* ``--executor SPEC`` selects the execution policy: a builtin
  :class:`ExecutorSpec` preset name (list them with ``repro executor``)
  or a path to an executor-spec JSON file.  Results are independent of
  the executor — parallelism and chunking change wall-clock time, never
  verdicts.
* ``--jobs N`` fans trials out over the warm worker pool (shorthand for
  an ad-hoc parallel spec); ``--chunk N`` pins the trials-per-task batch
  size (default: adaptive, sized from a calibration trial).
* ``--output FILE`` writes the schema-versioned result document.
* ``--progress`` prints live ``done/total`` progress with an ETA derived
  from the per-trial wall times observed so far.
* ``--telemetry [PATH]`` records the run's ``repro-run-telemetry`` stream
  (manifest, hierarchical spans, worker health) — the run ledger behind
  ``repro top``, ``repro runs list|show`` and
  ``repro trace export --engine``; result documents are byte-identical
  with telemetry on or off.
* ``--profile-trials K`` cProfiles the K slowest trials by deterministic
  re-execution after the run (``--profile`` is the deprecated spelling).
* ``--trace-sink {memory,jsonl,null,counts}`` selects the transport-event
  sink (``jsonl`` needs ``--trace-dir``); verdicts and documents are
  identical under every sink.
* ``--check-invariants`` runs the streaming trace invariant checkers
  (:mod:`repro.obs.check`) inside every trial.
* ``--fault-plan PLAN`` injects a deterministic fault schedule
  (:mod:`repro.faults`) into every trial: a builtin preset name (list them
  with ``repro faults``) or a path to a fault-plan JSON file.
* ``--resilience SPEC`` installs the deterministic recovery layer
  (:mod:`repro.resilience`) in every trial: a builtin preset name (list
  them with ``repro resilience``) or a path to a resilience-spec JSON file.
* ``--watchdog SECONDS`` guards every trial with a wall-clock timeout
  (``--trial-retries N`` re-runs an overrunning trial before quarantining
  it; quarantined trials appear in the ``--progress`` status counts).

Saved ``.jsonl`` traces and telemetry streams feed the analysis commands::

    python -m repro trace analyze trial.jsonl        # causal influence
    python -m repro trace check   trial.jsonl        # invariant audit
    python -m repro trace export  trial.jsonl --format chrome -o t.json
    python -m repro top run.telemetry.jsonl          # live sweep view
    python -m repro runs list                        # the run ledger
    python -m repro trace export --engine run.telemetry.jsonl \
        trial.jsonl --format chrome -o merged.json   # engine + sim view
    python -m repro bench diff BASELINE.json candidate.json --fail-on-regression
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Any, Mapping, Sequence

from repro.analysis.tables import render_matrix, render_result_document, render_table
from repro.api import (
    DEFAULT_RUNS_DIR,
    LARGE_TRIAL_THRESHOLD,
    SINK_NAMES,
    TELEMETRY_SUFFIX,
    ChurnSpec,
    ExecutorSpec,
    ExperimentPlan,
    FaultPlan,
    ResilienceSpec,
    ResultStore,
    TelemetryRecorder,
    TelemetryTail,
    build_plan,
    executor_preset,
    fault_preset,
    find_run,
    package_version,
    profile_slowest,
    render_profiles,
    resilience_preset,
    run_plan,
    scan_runs,
    stream_plan,
)
from repro.churn.models import ReplacementChurn
from repro.core.arrival import (
    ArrivalClass,
    FiniteArrival,
    InfiniteArrivalBounded,
    InfiniteArrivalFinite,
    InfiniteArrivalUnbounded,
    StaticArrival,
)
from repro.core.classes import SystemClass, standard_lattice
from repro.core.geography import (
    KnowledgeClass,
    complete,
    known_diameter,
    known_size,
    local,
)
from repro.core.solvability import Solvable, one_time_query_solvability, solvability_matrix

_ARRIVALS = {
    "static": lambda n: StaticArrival(n),
    "finite": lambda n: FiniteArrival(),
    "inf-bounded": lambda n: InfiniteArrivalBounded(n),
    "inf-finite": lambda n: InfiniteArrivalFinite(),
    "inf-unbounded": lambda n: InfiniteArrivalUnbounded(),
}

_KNOWLEDGE = {
    "complete": lambda d, s: complete(),
    "diameter": lambda d, s: known_diameter(d),
    "size": lambda d, s: known_size(s),
    "local": lambda d, s: local(),
}

_MATRIX_SYMBOL = {Solvable.YES: "yes", Solvable.CONDITIONAL: "cond", Solvable.NO: "NO"}


# ----------------------------------------------------------------------
# Shared engine flags (argparse parent for query / gossip / sweep)
# ----------------------------------------------------------------------


def _engine_parent(trials_default: int = 1) -> argparse.ArgumentParser:
    """The flag vocabulary every engine-backed command shares.

    Each subparser gets its own parent instance (argparse shares action
    objects between a parent and its children, so a single instance would
    alias defaults across commands).
    """
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("engine")
    group.add_argument("--seed", type=int, default=2007,
                       help="root seed; trial seeds are fanned out "
                       "deterministically")
    group.add_argument("--trials", type=int, default=trials_default,
                       help="trials per grid point")
    group.add_argument("--executor", default=None, metavar="SPEC",
                       help="execution policy: a builtin ExecutorSpec "
                       "preset name (see 'repro executor') or a path to "
                       "an executor-spec JSON file; results are identical "
                       "under every executor")
    group.add_argument("--jobs", type=int, default=1,
                       help="worker processes (1 = serial; results are "
                       "identical either way)")
    group.add_argument("--chunk", type=int, default=None, metavar="N",
                       help="trials per dispatched task for the parallel "
                       "backend (default: adaptive, ~250 ms of work per "
                       "task; results are identical at every chunk size)")
    group.add_argument("--output", default=None,
                       help="write the engine's result document to this "
                       "file; a .jsonl suffix streams each trial as it "
                       "finishes (memory-flat, same document on load)")
    group.add_argument("--progress", action="store_true",
                       help="print live done/total progress with an ETA")
    group.add_argument("--telemetry", nargs="?", const="auto", default=None,
                       metavar="PATH",
                       help="record the run's telemetry stream "
                       "(repro-run-telemetry v1): manifest, hierarchical "
                       "spans, per-worker health; tail it live with "
                       "'repro top'. With PATH omitted the stream lands "
                       "beside --output, else under .repro/runs/. Result "
                       "documents are byte-identical with telemetry on "
                       "or off")
    group.add_argument("--checkpoint", nargs="?", const="auto", default=None,
                       metavar="PATH",
                       help="journal every completed trial to a crash-safe "
                       "repro-run-checkpoint file; re-running the same "
                       "command resumes it, re-executing only the missing "
                       "trials (byte-identical document). With PATH "
                       "omitted the journal lands beside --output, else "
                       "under .repro/runs/ keyed by the plan digest")
    group.add_argument("--resumed-from", dest="resumed_from", default=None,
                       help=argparse.SUPPRESS)
    group.add_argument("--profile-trials", dest="profile_trials", type=int,
                       default=None, metavar="K",
                       help="after the run, cProfile the K slowest trials "
                       "by deterministic re-execution; with --telemetry "
                       "the hottest functions are embedded in the summary "
                       "record")
    group.add_argument("--profile", action="store_true",
                       help="deprecated: use --profile-trials K (and "
                       "--telemetry for a durable record); prints phase "
                       "timings plus a profile of the slowest trial")
    group.add_argument("--trace-sink", dest="trace_sink", default=None,
                       choices=list(SINK_NAMES),
                       help="transport-event sink (documents are identical "
                       "under every sink; default: memory, or counts when "
                       f"n >= {LARGE_TRIAL_THRESHOLD})")
    group.add_argument("--trace-dir", dest="trace_dir", default=None,
                       help="directory for per-trial .jsonl event streams "
                       "(required by --trace-sink jsonl)")
    group.add_argument("--check-invariants", dest="check_invariants",
                       action="store_true",
                       help="verify the trace invariants online; violations "
                       "are counted under check.violations in the metrics")
    group.add_argument("--fault-plan", dest="fault_plan", default=None,
                       metavar="PLAN",
                       help="inject a deterministic fault schedule: a "
                       "builtin preset name (see 'repro faults') or a path "
                       "to a fault-plan JSON file")
    group.add_argument("--resilience", default=None, metavar="SPEC",
                       help="install the deterministic recovery layer: a "
                       "builtin preset name (see 'repro resilience') or a "
                       "path to a resilience-spec JSON file")
    group.add_argument("--watchdog", type=float, default=None,
                       metavar="SECONDS",
                       help="per-trial wall-clock timeout; overrunning "
                       "trials are retried then quarantined")
    group.add_argument("--trial-retries", dest="trial_retries", type=int,
                       default=0, metavar="N",
                       help="watchdog retries per trial before quarantine "
                       "(only meaningful with --watchdog)")
    return parent


class _ProgressPrinter:
    """Live ``done/total`` progress with an ETA from per-trial wall times.

    Invoked by the executor in completion order; the ETA divides the mean
    observed trial wall time by the worker count, so it stays meaningful
    under ``--jobs N``.  The final line reports per-status counts: ``ok``
    (spec satisfied), ``failed`` (terminated but spec violated), ``skipped``
    (never reached a verdict — e.g. the query never returned) and — only
    when the ``--watchdog`` guard tripped — ``quarantined`` (every watchdog
    attempt overran the wall-clock budget).  Chunked backends additionally
    report task batches via :meth:`chunk_update`; the summary then carries
    ``N/M chunks`` (completed/dispatched) alongside the trial counts.
    """

    def __init__(self, jobs: int = 1, stream: Any = None) -> None:
        self.jobs = max(1, jobs)
        self.stream = stream if stream is not None else sys.stderr
        self._walls: list[float] = []
        self.ok = 0
        self.failed = 0
        self.skipped = 0
        self.quarantined = 0
        self.chunks_dispatched = 0
        self.chunks_completed = 0

    def chunk_update(self, dispatched: int, completed: int) -> None:
        """Executor hook: latest task-batch counters (chunked dispatch)."""
        self.chunks_dispatched = dispatched
        self.chunks_completed = completed

    def _classify(self, result: Any) -> None:
        if getattr(result, "status", "") == "quarantined":
            self.quarantined += 1
        elif not getattr(result, "terminated", True):
            self.skipped += 1
        elif getattr(result, "ok", False):
            self.ok += 1
        else:
            self.failed += 1

    def summary(self) -> str:
        line = f"{self.ok} ok, {self.failed} failed, {self.skipped} skipped"
        if self.quarantined:
            line += f", {self.quarantined} quarantined"
        if self.chunks_dispatched:
            line += (f" ({self.chunks_completed}/{self.chunks_dispatched} "
                     "chunks)")
        return line

    def __call__(self, done: int, total: int, result: Any) -> None:
        self._walls.append(float(getattr(result, "wall_time", 0.0)))
        self._classify(result)
        mean_wall = sum(self._walls) / len(self._walls)
        eta = mean_wall * (total - done) / self.jobs
        if done == total:
            line = f"[{done}/{total}] trials done: {self.summary()}"
        else:
            line = f"[{done}/{total}] trials done, eta {eta:.1f}s"
        if self.stream.isatty():
            end = "\n" if done == total else "\r"
            self.stream.write("\r" + line + end)
        else:
            self.stream.write(line + "\n")
        self.stream.flush()


def _telemetry_recorder(args: argparse.Namespace) -> "TelemetryRecorder | None":
    """Build the run's :class:`TelemetryRecorder` from ``--telemetry``.

    The sentinel ``"auto"`` (bare ``--telemetry``) anchors the stream
    beside ``--output`` when one was given (``results.json`` →
    ``results.telemetry.jsonl``), else files it under the default ledger
    directory ``.repro/runs/``.  The manifest's ``cli`` block carries the
    ``repro --version`` banner and the invoking argv.
    """
    value = getattr(args, "telemetry", None)
    if value is None:
        return None
    cli_info = {
        "version": f"repro {package_version()}",
        "argv": list(getattr(args, "_argv", sys.argv[1:])),
    }
    resumed_from = getattr(args, "resumed_from", None)
    if value != "auto":
        return TelemetryRecorder(path=value, cli=cli_info,
                                 resumed_from=resumed_from)
    if args.output:
        base = args.output
        for suffix in (".jsonl", ".json"):
            if base.endswith(suffix):
                base = base[: -len(suffix)]
                break
        return TelemetryRecorder(path=base + TELEMETRY_SUFFIX, cli=cli_info,
                                 resumed_from=resumed_from)
    return TelemetryRecorder(cli=cli_info, resumed_from=resumed_from)


def _checkpoint_path(args: argparse.Namespace,
                     plan: ExperimentPlan) -> str | None:
    """Resolve ``--checkpoint`` to a journal path.

    The sentinel ``"auto"`` (bare ``--checkpoint``) anchors the journal
    beside ``--output`` when one was given (``results.json`` →
    ``results.checkpoint.jsonl``); otherwise it is keyed by the plan
    digest under the ledger directory, so the *same command re-run* finds
    the same journal and resumes it — no path bookkeeping required.
    """
    value = getattr(args, "checkpoint", None)
    if value is None:
        return None
    if value != "auto":
        return value
    if args.output:
        base = args.output
        for suffix in (".jsonl", ".json"):
            if base.endswith(suffix):
                base = base[: -len(suffix)]
                break
        return base + ".checkpoint.jsonl"
    from repro.engine.telemetry import plan_digest

    return os.path.join(DEFAULT_RUNS_DIR,
                        f"checkpoint-{plan_digest(plan)}.jsonl")


def _resolve_fault_plan(value: str) -> FaultPlan | str:
    """Turn a ``--fault-plan`` argument into a plan (or a preset name).

    A path to an existing ``.json`` file is loaded as a serialised
    :class:`FaultPlan`; anything else must be a builtin preset name, which
    is validated here (fail at the flag, not inside a pool worker) but
    passed through as the string so it labels the plan readably.
    """
    from repro.sim.errors import ConfigurationError

    if value.endswith(".json") or os.path.sep in value:
        try:
            with open(value, "r", encoding="utf-8") as handle:
                return FaultPlan.from_json(handle.read())
        except OSError as error:
            raise SystemExit(f"--fault-plan: cannot read {value!r}: {error}")
        except (ValueError, ConfigurationError) as error:
            raise SystemExit(f"--fault-plan: {value!r}: {error}")
    try:
        fault_preset(value)
    except ConfigurationError as error:
        raise SystemExit(f"--fault-plan: {error}")
    return value


def _resolve_resilience(value: str) -> ResilienceSpec | str:
    """Turn a ``--resilience`` argument into a spec (or a preset name).

    Mirrors :func:`_resolve_fault_plan`: a ``.json`` path loads a
    serialised :class:`ResilienceSpec`; anything else must be a builtin
    preset name, validated here but passed through as the string.
    """
    from repro.sim.errors import ConfigurationError

    if value.endswith(".json") or os.path.sep in value:
        try:
            with open(value, "r", encoding="utf-8") as handle:
                return ResilienceSpec.from_json(handle.read())
        except OSError as error:
            raise SystemExit(f"--resilience: cannot read {value!r}: {error}")
        except (ValueError, ConfigurationError) as error:
            raise SystemExit(f"--resilience: {value!r}: {error}")
    try:
        resilience_preset(value)
    except ConfigurationError as error:
        raise SystemExit(f"--resilience: {error}")
    return value


def _resolve_executor_flag(args: argparse.Namespace) -> ExecutorSpec:
    """Turn the executor flags into one :class:`ExecutorSpec`.

    ``--executor`` (a builtin preset name or a path to an executor-spec
    JSON file) is the blessed form and excludes the ad-hoc flags;
    without it, ``--jobs``/``--chunk``/``--watchdog``/``--trial-retries``
    assemble an anonymous spec (``--jobs 1`` stays serial, matching the
    historical default).
    """
    from repro.sim.errors import ConfigurationError

    value = getattr(args, "executor", None)
    if value is not None:
        adhoc = []
        if getattr(args, "jobs", 1) != 1:
            adhoc.append("--jobs")
        if getattr(args, "chunk", None) is not None:
            adhoc.append("--chunk")
        if getattr(args, "watchdog", None) is not None:
            adhoc.append("--watchdog")
        if getattr(args, "trial_retries", 0):
            adhoc.append("--trial-retries")
        if adhoc:
            raise SystemExit(
                f"--executor replaces {', '.join(adhoc)}; give one or the "
                "other"
            )
        if value.endswith(".json") or os.path.sep in value:
            try:
                with open(value, "r", encoding="utf-8") as handle:
                    return ExecutorSpec.from_json(handle.read())
            except OSError as error:
                raise SystemExit(f"--executor: cannot read {value!r}: {error}")
            except (ValueError, ConfigurationError) as error:
                raise SystemExit(f"--executor: {value!r}: {error}")
        try:
            return executor_preset(value)
        except ConfigurationError as error:
            raise SystemExit(f"--executor: {error}")
    jobs = getattr(args, "jobs", 1)
    try:
        if jobs is None or jobs <= 1:
            return ExecutorSpec.serial(
                watchdog=getattr(args, "watchdog", None),
                trial_retries=getattr(args, "trial_retries", 0),
            )
        return ExecutorSpec.parallel(
            jobs=jobs,
            chunk=getattr(args, "chunk", None),
            watchdog=getattr(args, "watchdog", None),
            trial_retries=getattr(args, "trial_retries", 0),
        )
    except ConfigurationError as error:
        raise SystemExit(str(error))


def _resolve_trace_sink(args: argparse.Namespace,
                        base: Mapping[str, Any]) -> str:
    """Pick the trace sink when ``--trace-sink`` was not given.

    Small runs keep the historical in-memory default.  At
    ``LARGE_TRIAL_THRESHOLD``-plus entities the retained trace events
    would dominate memory, so large runs default to the ``counts`` sink
    (kind counters only — verdicts and documents are identical) with a
    one-line notice; ``--trace-sink memory`` restores the old behaviour
    explicitly.
    """
    if args.trace_sink is not None:
        return args.trace_sink
    n = base.get("n", 0)
    if isinstance(n, int) and n >= LARGE_TRIAL_THRESHOLD:
        print(
            f"note: n={n} >= {LARGE_TRIAL_THRESHOLD}; defaulting "
            "--trace-sink to 'counts' (pass --trace-sink memory to retain "
            "every trace event)",
            file=sys.stderr,
        )
        return "counts"
    return "memory"


def _apply_sink_flags(args: argparse.Namespace, name: str,
                      base: dict[str, Any]) -> dict[str, Any]:
    """Fold ``--trace-sink`` / ``--trace-dir`` / ``--fault-plan`` into the
    plan's base config."""
    base = dict(base)
    base["trace_sink"] = _resolve_trace_sink(args, base)
    if args.check_invariants:
        base["check_invariants"] = True
    if getattr(args, "fault_plan", None):
        base["faults"] = _resolve_fault_plan(args.fault_plan)
    if getattr(args, "resilience", None):
        base["resilience"] = _resolve_resilience(args.resilience)
    if base["trace_sink"] == "jsonl":
        if not args.trace_dir:
            raise SystemExit("--trace-sink jsonl requires --trace-dir")
        os.makedirs(args.trace_dir, exist_ok=True)
        # {index}/{seed} are formatted per trial by TrialSpec.to_config.
        base["trace_path"] = os.path.join(
            args.trace_dir, f"{name}-trial{{index}}-seed{{seed}}.jsonl"
        )
    elif args.trace_dir:
        raise SystemExit("--trace-dir only applies with --trace-sink jsonl")
    return base


def _engine_run(
    args: argparse.Namespace,
    name: str,
    kind: str,
    base: Mapping[str, Any],
    grid: Mapping[str, Sequence[Any]] | None = None,
) -> tuple[ExperimentPlan, ResultStore, dict[str, float],
           "TelemetryRecorder | None"]:
    """The shared plan → execute → aggregate path, timed per phase."""
    timings: dict[str, float] = {}
    start = time.perf_counter()
    plan = build_plan(
        name, kind=kind, grid=grid,
        base=_apply_sink_flags(args, name, dict(base)),
        trials=args.trials, root_seed=args.seed,
    )
    timings["plan"] = time.perf_counter() - start

    spec = _resolve_executor_flag(args)
    progress = (
        _ProgressPrinter(jobs=spec.effective_jobs()) if args.progress else None
    )
    recorder = _telemetry_recorder(args)
    checkpoint = _checkpoint_path(args, plan)
    start = time.perf_counter()
    executor = spec
    try:
        if args.output and args.output.endswith(".jsonl"):
            # Stream each trial to the output file the moment it finishes —
            # peak memory during execution is one window of in-flight
            # trials, not the whole plan.  The store is reloaded from the
            # stream only to render the summary tables below.
            stream_plan(plan, args.output, executor=executor,
                        progress=progress, telemetry=recorder,
                        checkpoint=checkpoint)
            store = ResultStore.load(args.output)
        else:
            store = run_plan(plan, executor=executor, progress=progress,
                             telemetry=recorder, checkpoint=checkpoint)
    except BaseException:
        if recorder is not None:
            # Close the stream without a summary: the ledger reports the
            # run as interrupted, and `repro resume` can finish it.
            recorder.abort()
        if checkpoint is not None and isinstance(
            sys.exc_info()[1], KeyboardInterrupt
        ):
            print(f"checkpoint journal kept at {checkpoint}; re-run the "
                  "same command (or `repro resume`) to finish the sweep",
                  file=sys.stderr)
        raise
    timings["execute"] = time.perf_counter() - start

    start = time.perf_counter()
    store.document()
    timings["aggregate"] = time.perf_counter() - start
    return plan, store, timings, recorder


def _engine_finish(
    args: argparse.Namespace,
    plan: ExperimentPlan,
    store: ResultStore,
    timings: dict[str, float],
    recorder: "TelemetryRecorder | None" = None,
) -> None:
    """Post-table chores shared by the engine commands: output, profiling,
    telemetry close-out."""
    import warnings

    if args.output:
        if args.output.endswith(".jsonl"):
            # Already streamed during execution by _engine_run.
            print(f"result stream written to {args.output}")
        else:
            store.write(args.output)
            print(f"result document written to {args.output}")
    profile_k = getattr(args, "profile_trials", None)
    if args.profile:
        warnings.warn(
            "--profile is deprecated; use --profile-trials K (add "
            "--telemetry to keep the profile in the run's summary record)",
            DeprecationWarning,
            stacklevel=2,
        )
        if profile_k is None:
            profile_k = 1
        print(render_table(
            ["phase", "wall time"],
            [[phase, f"{timings[phase]:.3f}s"]
             for phase in ("plan", "execute", "aggregate")],
            title="phase timing",
        ))
    if profile_k:
        # Deterministic re-execution: profiling the K slowest trials
        # after the fact reproduces their work exactly without having
        # perturbed the recorded run.
        profiles = profile_slowest(plan.specs, store.results, k=profile_k)
        if recorder is not None:
            recorder.record_profiles(profiles)
        print(render_profiles(profiles))
    if recorder is not None:
        recorder.close()
        if args.progress:
            print(f"run {recorder.run_id} · telemetry {recorder.path}",
                  file=sys.stderr)
        else:
            print(f"telemetry written to {recorder.path} "
                  f"(run {recorder.run_id})")


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------


def _build_parser() -> argparse.ArgumentParser:
    from repro.version import package_version

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Dynamic distributed systems: the PaCT 2007 definition "
        "space, executable.",
    )
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {package_version()}")
    sub = parser.add_subparsers(dest="command", required=True)

    query = sub.add_parser("query", parents=[_engine_parent(trials_default=1)],
                           help="run a one-time query scenario")
    query.add_argument("--n", type=int, default=32)
    query.add_argument("--topology", default="er")
    query.add_argument("--protocol", default="wave",
                       choices=["wave", "request_collect"])
    query.add_argument("--aggregate", default="COUNT")
    query.add_argument("--ttl", type=int, default=None,
                       help="wave hop budget; omit for echo mode")
    query.add_argument("--deadline", type=float, default=None)
    query.add_argument("--churn-rate", type=float, default=0.0,
                       help="replacement churn rate (0 = static)")
    query.add_argument("--horizon", type=float, default=300.0)

    gossip = sub.add_parser("gossip", parents=[_engine_parent(trials_default=1)],
                            help="run a push-sum gossip scenario")
    gossip.add_argument("--n", type=int, default=32)
    gossip.add_argument("--topology", default="er")
    gossip.add_argument("--mode", default="avg", choices=["avg", "count"])
    gossip.add_argument("--rounds", type=int, default=50)
    gossip.add_argument("--churn-rate", type=float, default=0.0)

    sub.add_parser("matrix", help="print the solvability matrix")

    describe = sub.add_parser("describe", help="describe one system class")
    describe.add_argument("--arrival", required=True, choices=sorted(_ARRIVALS))
    describe.add_argument("--knowledge", required=True, choices=sorted(_KNOWLEDGE))
    describe.add_argument("--n", type=int, default=16)
    describe.add_argument("--diameter", type=int, default=8)
    describe.add_argument("--size-bound", type=int, default=64)

    report = sub.add_parser("report", help="run the standard battery and "
                            "emit a markdown report")
    report.add_argument("--n", type=int, default=24)
    report.add_argument("--trials", type=int, default=3)
    report.add_argument("--seed", type=int, default=2007)
    report.add_argument("--output", default=None,
                        help="write to this file instead of stdout")

    disseminate = sub.add_parser(
        "disseminate", help="run a dissemination scenario (flood vs anti-entropy)"
    )
    disseminate.add_argument("--n", type=int, default=24)
    disseminate.add_argument("--protocol", default="anti-entropy",
                             choices=["flood", "anti-entropy"])
    disseminate.add_argument("--churn-rate", type=float, default=1.0)
    disseminate.add_argument("--audit-at", type=float, default=80.0)
    disseminate.add_argument("--seed", type=int, default=2007)

    scenario = sub.add_parser("scenario", help="run a named preset scenario")
    from repro.bench.scenarios import SCENARIOS as _SCENARIOS

    scenario.add_argument("name", choices=sorted(_SCENARIOS))
    scenario.add_argument("--seed", type=int, default=2007)
    scenario.add_argument("--trials", type=int, default=1)

    sweep_cmd = sub.add_parser("sweep", parents=[_engine_parent(trials_default=5)],
                               help="sweep churn rates (E4 shape)")
    sweep_cmd.add_argument("--rates", default="0,0.5,2.0,8.0",
                           help="comma-separated replacement churn rates")
    sweep_cmd.add_argument("--n", type=int, default=32)
    sweep_cmd.add_argument("--topology", default="er")

    faults_cmd = sub.add_parser(
        "faults", help="list the builtin fault-plan presets"
    )
    faults_cmd.add_argument("--show", default=None, metavar="NAME",
                            help="print one preset as fault-plan JSON "
                            "(editable, reloadable via --fault-plan FILE)")

    resilience_cmd = sub.add_parser(
        "resilience", help="list the builtin resilience presets"
    )
    resilience_cmd.add_argument("--show", default=None, metavar="NAME",
                                help="print one preset as resilience-spec "
                                "JSON (editable, reloadable via "
                                "--resilience FILE)")

    top = sub.add_parser(
        "top", help="live view of a (possibly running) sweep's telemetry"
    )
    top.add_argument("target",
                     help="telemetry .jsonl path, or a run-id prefix "
                     "looked up in the ledger directory")
    top.add_argument("--interval", type=float, default=1.0,
                     metavar="SECONDS",
                     help="refresh period while the run is live")
    top.add_argument("--once", action="store_true",
                     help="render a single frame and exit")
    top.add_argument("--dir", dest="runs_dir", default=None,
                     help="ledger directory for run-id lookup "
                     f"(default: {DEFAULT_RUNS_DIR})")

    runs_cmd = sub.add_parser(
        "runs", help="the run ledger: recorded telemetry streams"
    )
    runs_sub = runs_cmd.add_subparsers(dest="runs_command", required=True)
    runs_list = runs_sub.add_parser("list", help="list recorded runs")
    runs_list.add_argument("--dir", dest="runs_dir", default=None,
                           help="ledger directory to scan "
                           f"(default: {DEFAULT_RUNS_DIR})")
    runs_show = runs_sub.add_parser(
        "show", help="show one run: manifest, progress, worker health"
    )
    runs_show.add_argument("run_id",
                           help="run-id prefix (unique in the ledger) or "
                           "a telemetry .jsonl path")
    runs_show.add_argument("--dir", dest="runs_dir", default=None,
                           help="ledger directory for run-id lookup "
                           f"(default: {DEFAULT_RUNS_DIR})")

    resume_cmd = sub.add_parser(
        "resume", help="re-run an interrupted run's exact command; its "
        "checkpoint journal skips the completed trials"
    )
    resume_cmd.add_argument("run_id",
                            help="run-id prefix (unique in the ledger) or "
                            "a telemetry .jsonl path of the interrupted run")
    resume_cmd.add_argument("--dir", dest="runs_dir", default=None,
                            help="ledger directory for run-id lookup "
                            f"(default: {DEFAULT_RUNS_DIR})")

    executor_cmd = sub.add_parser(
        "executor", help="list the builtin executor presets"
    )
    executor_cmd.add_argument("--show", default=None, metavar="NAME",
                              help="print one preset as executor-spec "
                              "JSON (editable, reloadable via "
                              "--executor FILE)")

    trace_cmd = sub.add_parser(
        "trace", help="analyze, check or export a saved .jsonl trace"
    )
    trace_sub = trace_cmd.add_subparsers(dest="trace_command", required=True)

    analyze = trace_sub.add_parser(
        "analyze",
        help="build the happens-before DAG and report causal influence",
    )
    analyze.add_argument("path", help="JSONL trace file (--trace-sink jsonl)")
    analyze.add_argument("--qid", type=int, default=None,
                         help="query id to analyze (default: the last "
                         "returned query)")

    check = trace_sub.add_parser(
        "check", help="replay the trace through the invariant checkers"
    )
    check.add_argument("path", help="JSONL trace file to audit")

    export = trace_sub.add_parser(
        "export", help="export per-node timelines (Chrome trace or ASCII)"
    )
    export.add_argument("path", nargs="?", default=None,
                        help="JSONL trace file to export (optional when "
                        "--engine exports telemetry alone)")
    export.add_argument("--engine", dest="engine", default=None,
                        metavar="TELEMETRY",
                        help="merge an engine telemetry stream into the "
                        "export: run → dispatch → chunk → trial spans as "
                        "their own process track, with a flow arrow down "
                        "to the sim trace when one is given (chrome "
                        "format only)")
    export.add_argument("--format", dest="format", default="ascii",
                        choices=["ascii", "chrome"],
                        help="ascii prints a terminal timeline; chrome "
                        "writes a Perfetto/chrome://tracing JSON file")
    export.add_argument("--output", "-o", default=None,
                        help="output file (required for --format chrome)")
    export.add_argument("--width", type=int, default=72,
                        help="timeline width in characters (ascii only)")

    bench_cmd = sub.add_parser(
        "bench", help="benchmark utilities (regression gating)"
    )
    bench_sub = bench_cmd.add_subparsers(dest="bench_command", required=True)

    diff = bench_sub.add_parser(
        "diff",
        help="compare two result documents (or BENCH_*.json payloads) "
        "with per-metric relative thresholds",
    )
    diff.add_argument("baseline", help="baseline JSON file")
    diff.add_argument("candidate", help="candidate JSON file")
    diff.add_argument("--metric", action="append", default=[],
                      metavar="NAME=REL",
                      help="override a metric's relative threshold, e.g. "
                      "--metric latency=0.10 (repeatable)")
    diff.add_argument("--bootstrap", type=int, default=0, metavar="N",
                      help="pair the arms' trials by seed and bootstrap a "
                      "confidence interval for each metric's mean worsening "
                      "with N resamples (result documents only); regression "
                      "then additionally requires the CI to exclude zero")
    diff.add_argument("--ci", type=float, default=0.95, metavar="LEVEL",
                      help="confidence level for --bootstrap intervals "
                      "(default 0.95)")
    diff.add_argument("--fail-on-regression", dest="fail_on_regression",
                      action="store_true",
                      help="exit non-zero on failure: 1 for a regression, "
                      "2 for a missing baseline point or gated metric "
                      "(schema drift)")

    experiment_cmd = sub.add_parser(
        "experiment",
        help="declarative YAML experiments (repro-experiment v1)",
    )
    exp_sub = experiment_cmd.add_subparsers(dest="experiment_command",
                                            required=True)

    exp_run = exp_sub.add_parser(
        "run", help="run a YAML experiment through the engine"
    )
    exp_run.add_argument("path", help="experiment YAML file")
    exp_run.add_argument("--executor", default=None, metavar="SPEC",
                         help="override the experiment's executor block: a "
                         "preset name (repro executor) or an executor-spec "
                         "JSON file")
    exp_run.add_argument("--jobs", type=int, default=None,
                         help="fan trials out over N workers (ignored when "
                         "--executor or the YAML pins a policy)")
    exp_run.add_argument("--output", default=None, metavar="FILE",
                         help="write the result document (.json) or stream "
                         "trials to append-only JSONL (.jsonl)")
    exp_run.add_argument("--telemetry", default=None, metavar="FILE",
                         help="record the repro-run-telemetry stream")
    exp_run.add_argument("--progress", action="store_true",
                         help="live done/total progress with ETA")
    exp_run.add_argument("--no-refine", dest="refine", action="store_false",
                         default=True,
                         help="skip the experiment's refine: block")
    exp_run.add_argument("--boundary-output", default=None, metavar="FILE",
                         help="write the repro-solvability-boundary "
                         "document produced by the refine: block")

    exp_show = exp_sub.add_parser(
        "show", help="print an experiment's canonical YAML and digests"
    )
    exp_show.add_argument("path", help="experiment YAML file")

    exp_validate = exp_sub.add_parser(
        "validate", help="validate experiment YAML files"
    )
    exp_validate.add_argument("paths", nargs="+",
                              help="experiment YAML files")

    return parser


# ----------------------------------------------------------------------
# Commands
# ----------------------------------------------------------------------


def _cmd_query(args: argparse.Namespace) -> int:
    base: dict[str, Any] = {
        "n": args.n, "topology": args.topology, "protocol": args.protocol,
        "aggregate": args.aggregate, "ttl": args.ttl,
        "deadline": args.deadline, "horizon": args.horizon,
    }
    if args.churn_rate > 0:
        base["churn"] = ChurnSpec(kind="replacement", rate=args.churn_rate)
    plan, store, timings, recorder = _engine_run(
        args, "cli-query", "query", base
    )
    rows = []
    for result in store.results:
        rows.append([
            result.seed % 100_000,
            str(result.result),
            str(result.truth),
            f"{result.completeness:.2f}",
            f"{result.latency:.2f}" if result.terminated else "inf",
            result.messages,
            "OK" if result.ok else "FAIL",
        ])
    print(render_table(
        ["seed", "result", "truth", "completeness", "latency", "messages", "spec"],
        rows,
        title=(f"one-time query: n={args.n}, {args.topology}, "
               f"{args.protocol}, {args.aggregate}, churn={args.churn_rate}"),
    ))
    _engine_finish(args, plan, store, timings, recorder)
    return 0


def _cmd_gossip(args: argparse.Namespace) -> int:
    base: dict[str, Any] = {
        "n": args.n, "topology": args.topology, "mode": args.mode,
        "rounds": args.rounds,
    }
    if args.churn_rate > 0:
        base["churn"] = ChurnSpec(kind="replacement", rate=args.churn_rate)
    plan, store, timings, recorder = _engine_run(
        args, "cli-gossip", "gossip", base
    )
    for result in store.results:
        print(f"push-sum {args.mode} (seed {result.seed % 100_000}): "
              f"estimate {float(result.result):.4g}, "
              f"truth {float(result.truth):.4g}, "
              f"relative error {result.error:.4g}, "
              f"{result.messages} messages")
    _engine_finish(args, plan, store, timings, recorder)
    return 0


def _cmd_matrix(args: argparse.Namespace) -> int:
    matrix = solvability_matrix(standard_lattice())
    rows: list[str] = []
    cols: list[str] = []
    cells = {}
    for system, result in matrix.items():
        row, col = str(system.arrival), str(system.knowledge)
        if row not in rows:
            rows.append(row)
        if col not in cols:
            cols.append(col)
        cells[(row, col)] = _MATRIX_SYMBOL[result.answer]
    print(render_matrix(rows, cols, cells, corner="arrival \\ knowledge",
                        title="one-time query solvability"))
    return 0


def _cmd_describe(args: argparse.Namespace) -> int:
    arrival: ArrivalClass = _ARRIVALS[args.arrival](args.n)
    knowledge: KnowledgeClass = _KNOWLEDGE[args.knowledge](
        args.diameter, args.size_bound
    )
    system = SystemClass(arrival, knowledge)
    result = one_time_query_solvability(system)
    print(system.name)
    print()
    print(system.describe())
    print()
    print(f"one-time query: {result.answer}")
    if result.condition:
        print(f"condition: {result.condition}")
    print(f"argument: {result.argument}")
    if result.witness_protocol:
        print(f"witness protocol: {result.witness_protocol}")
    print(f"validating experiment: {result.experiment}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.report import build_report

    text = build_report(n=args.n, trials=args.trials, seed=args.seed)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"report written to {args.output}")
    else:
        print(text)
    return 0


def _cmd_disseminate(args: argparse.Namespace) -> int:
    from repro.core.dissemination_spec import DisseminationSpec
    from repro.protocols.dissemination import AntiEntropyNode, FloodNode
    from repro.sim.latency import ConstantDelay
    from repro.sim.scheduler import Simulator
    from repro.topology import generators as topo_gen

    node_cls = FloodNode if args.protocol == "flood" else AntiEntropyNode
    sim = Simulator(seed=args.seed, delay_model=ConstantDelay(0.5))
    topo = topo_gen.make("er", args.n, sim.rng_for("topo"))
    pids = []
    for node in sorted(topo.nodes()):
        neighbors = [p for p in topo.neighbors(node) if p < node]
        pids.append(sim.spawn(node_cls(1.0), neighbors).pid)
    if args.churn_rate > 0:
        model = ReplacementChurn(lambda: node_cls(1.0), rate=args.churn_rate)
        model.immortal.add(pids[0])
        model.install(sim)
    origin = sim.network.process(pids[0])
    sim.at(10.0, lambda: origin.broadcast_value("payload"))
    sim.run(until=args.audit_at)
    verdict = DisseminationSpec().check(sim.trace, at=args.audit_at)[0]
    print(f"{args.protocol} dissemination, n={args.n}, "
          f"churn={args.churn_rate}, audited at t={args.audit_at}:")
    print(f"  stable-core coverage : {verdict.coverage:.2f}")
    print(f"  population coverage  : {verdict.population_coverage:.2f}")
    print(f"  messages             : {sim.trace.message_count()}")
    return 0


def _cmd_scenario(args: argparse.Namespace) -> int:
    from dataclasses import replace

    from repro.api import run_query
    from repro.bench.scenarios import make_scenario
    from repro.sim.rng import iter_seeds

    rows = []
    for seed in iter_seeds(args.seed, args.trials):
        config = replace(make_scenario(args.name), seed=seed)
        outcome = run_query(config)
        rows.append([
            seed % 100_000,
            str(outcome.record.result),
            f"{outcome.completeness:.2f}",
            f"{outcome.latency:.2f}" if outcome.terminated else "inf",
            outcome.messages,
            "OK" if outcome.ok else "partial",
        ])
    print(render_table(
        ["seed", "result", "completeness", "latency", "messages", "spec"],
        rows,
        title=f"scenario {args.name!r}",
    ))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    rates = [float(r) for r in args.rates.split(",") if r.strip()]
    base = {
        "n": args.n, "topology": args.topology,
        "aggregate": "COUNT", "horizon": 300.0,
    }
    plan, store, timings, recorder = _engine_run(
        args, "churn-sweep", "query", base, grid={"churn_rate": rates}
    )
    jobs = _resolve_executor_flag(args).effective_jobs()
    print(render_result_document(
        store.document(),
        columns=("trials", "completeness", "fully_complete", "messages"),
        title=(f"churn sweep: n={args.n}, {args.topology}, "
               f"{args.trials} trials, jobs={jobs}"),
    ))
    _engine_finish(args, plan, store, timings, recorder)
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    from repro.faults.presets import FAULT_PRESETS
    from repro.sim.errors import ConfigurationError

    if args.show:
        try:
            plan = fault_preset(args.show)
        except ConfigurationError as error:
            raise SystemExit(str(error))
        print(plan.to_json(), end="")
        return 0
    rows = []
    for name, plan in FAULT_PRESETS.items():
        rows.append([
            name,
            ", ".join(plan.kinds()),
            len(plan),
            plan.scheduled_count(),
            f"{plan.end_time():.1f}",
        ])
    print(render_table(
        ["preset", "fault kinds", "specs", "activations", "quiet after"],
        rows,
        title="builtin fault plans (use with --fault-plan NAME)",
    ))
    return 0


def _cmd_resilience(args: argparse.Namespace) -> int:
    from repro.resilience.presets import RESILIENCE_PRESETS
    from repro.sim.errors import ConfigurationError

    if args.show:
        try:
            spec = resilience_preset(args.show)
        except ConfigurationError as error:
            raise SystemExit(str(error))
        print(spec.to_json(), end="")
        return 0
    rows = []
    for name, spec in RESILIENCE_PRESETS.items():
        rows.append([
            name,
            spec.max_retries,
            f"{spec.base_rto:.1f}",
            "adaptive" if spec.adaptive_rto else "static",
            spec.breaker_threshold if spec.breaker_threshold else "off",
            "adaptive" if spec.adaptive_detector else "static",
            "yes" if spec.partial_results else "no",
        ])
    print(render_table(
        ["preset", "retries", "base rto", "rto", "breaker", "detector",
         "partial results"],
        rows,
        title="builtin resilience specs (use with --resilience NAME)",
    ))
    return 0


def _cmd_executor(args: argparse.Namespace) -> int:
    from repro.engine.spec import EXECUTOR_PRESETS
    from repro.sim.errors import ConfigurationError

    if args.show:
        try:
            spec = executor_preset(args.show)
        except ConfigurationError as error:
            raise SystemExit(str(error))
        print(spec.to_json(), end="")
        return 0
    rows = []
    for name, spec in EXECUTOR_PRESETS.items():
        rows.append([
            name,
            spec.backend,
            spec.jobs if spec.jobs is not None else "all cores",
            spec.chunk if spec.chunk is not None else "adaptive",
            f"{spec.watchdog:.0f}s" if spec.watchdog is not None else "off",
            spec.trial_retries,
        ])
    print(render_table(
        ["preset", "backend", "jobs", "chunk", "watchdog", "retries"],
        rows,
        title="builtin executor specs (use with --executor NAME)",
    ))
    return 0


def _resolve_run_target(target: str, runs_dir: str | None) -> str:
    """A telemetry path argument: an existing file, or a run-id prefix
    resolved through the ledger."""
    from repro.sim.errors import ConfigurationError

    if os.path.exists(target):
        return target
    try:
        entry = find_run(target, runs_dir or DEFAULT_RUNS_DIR)
    except ConfigurationError as error:
        raise SystemExit(str(error))
    return entry["path"]


def _cmd_top(args: argparse.Namespace) -> int:
    path = _resolve_run_target(args.target, args.runs_dir)
    tail = TelemetryTail(path)
    live_tty = sys.stdout.isatty() and not args.once
    try:
        while True:
            tail.poll()
            frame = tail.render()
            if live_tty:
                # Full-screen refresh, top-left anchored.
                sys.stdout.write("\x1b[2J\x1b[H" + frame + "\n")
            else:
                print(frame)
            sys.stdout.flush()
            if args.once or tail.finished:
                return 0
            time.sleep(max(0.05, args.interval))
    except KeyboardInterrupt:
        return 0


def _cmd_runs(args: argparse.Namespace) -> int:
    if args.runs_command == "list":
        entries = scan_runs(args.runs_dir or DEFAULT_RUNS_DIR)
        if not entries:
            print(f"no runs recorded under "
                  f"{args.runs_dir or DEFAULT_RUNS_DIR!r} "
                  "(record one with --telemetry)")
            return 0
        rows = []
        for entry in entries:
            manifest, summary = entry["manifest"], entry["summary"]
            counts = summary["counts"] if summary else {}
            rows.append([
                manifest.run_id,
                manifest.plan.get("name", "?"),
                manifest.plan.get("n_trials", "?"),
                manifest.executor.get("backend", "?"),
                entry.get("status", "?"),
                f"{summary['wall_s']:.1f}s" if summary else "-",
                counts.get("ok", "-"),
                counts.get("failed", "-"),
                counts.get("quarantined", "-"),
            ])
        print(render_table(
            ["run id", "plan", "trials", "backend", "status", "wall", "ok",
             "failed", "quar"],
            rows,
            title=f"run ledger ({args.runs_dir or DEFAULT_RUNS_DIR})",
        ))
        return 0

    # show
    path = _resolve_run_target(args.run_id, args.runs_dir)
    tail = TelemetryTail(path)
    tail.poll()
    manifest = tail.manifest
    if manifest is None:
        raise SystemExit(f"{path}: telemetry stream has no manifest")
    print(tail.render())
    print()
    rows = [
        ["path", path],
        ["started", manifest.to_record()["started_iso"]],
        ["plan digest", manifest.plan.get("digest", "-")],
        ["executor", str(dict(manifest.executor))],
        ["host", "{hostname} · {platform} · python {python} · "
         "{cpu_count} cpus".format(**{
             key: manifest.host.get(key, "?")
             for key in ("hostname", "platform", "python", "cpu_count")
         })],
        ["repro", manifest.repro_version],
        ["result schema", "{name} v{version}".format(
            **dict(manifest.result_schema))],
    ]
    if manifest.cli:
        rows.append(["cli", "{version}: {argv}".format(
            version=manifest.cli.get("version", "?"),
            argv=" ".join(manifest.cli.get("argv", [])),
        )])
    print(render_table(["field", "value"], rows, title="manifest"))
    if tail.summary and tail.summary.get("profile"):
        print()
        print(render_profiles(tail.summary["profile"]))
    return 0


def _cmd_resume(args: argparse.Namespace) -> int:
    """Re-invoke an interrupted run's recorded argv with ``--resumed-from``.

    The manifest's ``cli.argv`` block is the exact command line; replaying
    it re-resolves the same ``--checkpoint`` journal (plan-digest keyed
    when the path was implicit), so completed trials are skipped and the
    finished document is byte-identical to an uninterrupted run's.
    """
    path = _resolve_run_target(args.run_id, args.runs_dir)
    tail = TelemetryTail(path)
    tail.poll()
    manifest = tail.manifest
    if manifest is None:
        raise SystemExit(f"{path}: telemetry stream has no manifest")
    argv = list(manifest.cli.get("argv", [])) if manifest.cli else []
    if not argv:
        raise SystemExit(
            f"run {manifest.run_id}: manifest records no command line; "
            "resume only works for runs started through the repro CLI "
            "with --telemetry"
        )
    # Strip any prior --resumed-from so resume chains don't accumulate.
    cleaned: list[str] = []
    skip = False
    for token in argv:
        if skip:
            skip = False
            continue
        if token == "--resumed-from":
            skip = True
            continue
        if token.startswith("--resumed-from="):
            continue
        cleaned.append(token)
    if not any(token.split("=", 1)[0] == "--checkpoint"
               for token in cleaned):
        print(f"note: run {manifest.run_id} recorded no --checkpoint; "
              "every trial will re-execute", file=sys.stderr)
    if tail.summary is not None:
        print(f"note: run {manifest.run_id} already finished; re-running "
              "is an idempotent re-verification", file=sys.stderr)
    print(f"resuming run {manifest.run_id}: repro {' '.join(cleaned)}",
          file=sys.stderr)
    return main(cleaned + ["--resumed-from", manifest.run_id])


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs.causal import HappensBeforeDAG
    from repro.obs.check import check_trace
    from repro.obs.export import (
        ascii_timeline,
        write_chrome_trace,
        write_engine_trace,
    )
    from repro.sim.trace import TraceLog

    if args.trace_command == "analyze":
        dag = HappensBeforeDAG.from_jsonl(args.path)
        print(f"trace: {args.path}")
        print(f"  events         : {len(dag.events)}")
        print(f"  program edges  : {dag.program_edges}")
        print(f"  message edges  : {dag.message_edges}")
        queries = dag.query_indices()
        if not queries:
            print("  no queries in this trace; nothing to analyze")
            return 0
        report = dag.influence(args.qid)
        print()
        print(report)
        return 0

    if args.trace_command == "check":
        violations = check_trace(args.path)
        if not violations:
            print(f"{args.path}: all trace invariants hold")
            return 0
        print(f"{args.path}: {len(violations)} invariant violation(s)")
        for violation in violations:
            print(f"  {violation}")
        return 1

    # export
    if getattr(args, "engine", None):
        if args.format != "chrome":
            raise SystemExit("--engine requires --format chrome")
        if not args.output:
            raise SystemExit("--format chrome requires --output FILE")
        sim_events = None
        sim_seed = None
        if args.path:
            sim_events = TraceLog.load_jsonl(args.path)
            # Per-trial traces are saved as {name}-trial{i}-seed{seed}.jsonl;
            # the seed picks the matching engine trial span for the flow
            # arrow when it is recoverable from the filename.
            import re

            match = re.search(r"seed(\d+)", os.path.basename(args.path))
            if match:
                sim_seed = int(match.group(1))
        written = write_engine_trace(
            args.engine, args.output, sim_events=sim_events,
            sim_seed=sim_seed,
        )
        print(f"{written} events (engine spans"
              + (" + sim trace" if args.path else "")
              + f") written to {args.output} "
              "(open in Perfetto or chrome://tracing)")
        return 0
    if not args.path:
        raise SystemExit("trace export needs a trace PATH "
                         "(or --engine TELEMETRY)")
    log = TraceLog.load_jsonl(args.path)
    if args.format == "chrome":
        if not args.output:
            raise SystemExit("--format chrome requires --output FILE")
        written = write_chrome_trace(log, args.output)
        print(f"{written} trace events written to {args.output} "
              "(open in Perfetto or chrome://tracing)")
        return 0
    print(ascii_timeline(log, width=args.width))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.analysis.diff import diff_files
    from repro.sim.errors import ConfigurationError

    thresholds: dict[str, float] = {}
    for spec in args.metric:
        name, sep, value = spec.partition("=")
        if not sep or not name:
            raise SystemExit(
                f"--metric expects NAME=REL (a relative threshold), got {spec!r}"
            )
        try:
            thresholds[name] = float(value)
        except ValueError:
            raise SystemExit(f"--metric {spec!r}: {value!r} is not a number")
    try:
        diff = diff_files(
            args.baseline, args.candidate, thresholds or None,
            bootstrap=args.bootstrap, confidence=args.ci,
        )
    except ConfigurationError as error:
        raise SystemExit(str(error))
    print(diff.render())
    if diff.ok:
        print("no regressions")
        return 0
    print(f"{len(diff.regressions)} regression(s), "
          f"{len(diff.missing)} missing point(s)/metric(s)")
    # 1 = regression, 2 = comparison-shape drift (missing dominates: a
    # drifted comparison proves nothing about performance either way).
    return diff.exit_code if args.fail_on_regression else 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments import (
        dump_experiment,
        experiment_digest,
        experiment_plan_digest,
        load_experiment,
        refine_experiment,
        run_experiment,
    )
    from repro.sim.errors import ConfigurationError

    if args.experiment_command == "validate":
        failures = 0
        for path in args.paths:
            try:
                exp = load_experiment(path)
            except ConfigurationError as error:
                print(f"FAIL {path}: {error}")
                failures += 1
                continue
            plan = exp.to_plan()
            print(f"ok   {path}: {exp.name} ({exp.kind}), "
                  f"{len(exp.points())} point(s) x {exp.trials} trial(s) = "
                  f"{len(plan.specs)} spec(s), "
                  f"digest {experiment_digest(exp)}, "
                  f"plan {experiment_plan_digest(exp)}")
        return 1 if failures else 0

    try:
        exp = load_experiment(args.path)
    except ConfigurationError as error:
        raise SystemExit(str(error))

    if args.experiment_command == "show":
        print(dump_experiment(exp), end="")
        print(f"# experiment digest: {experiment_digest(exp)}")
        print(f"# plan digest:       {experiment_plan_digest(exp)}")
        print(f"# trial specs:       {len(exp.to_plan().specs)}")
        return 0

    # run
    executor: Any = None
    if args.executor:
        if args.executor.endswith(".json") or os.path.sep in args.executor:
            try:
                with open(args.executor, "r", encoding="utf-8") as handle:
                    executor = ExecutorSpec.from_json(handle.read())
            except OSError as error:
                raise SystemExit(
                    f"--executor: cannot read {args.executor!r}: {error}")
            except (ValueError, ConfigurationError) as error:
                raise SystemExit(f"--executor: {args.executor!r}: {error}")
        else:
            try:
                executor = executor_preset(args.executor)
            except ConfigurationError as error:
                raise SystemExit(f"--executor: {error}")
    progress = (
        _ProgressPrinter(jobs=args.jobs or 1) if args.progress else None
    )
    stream_path = (
        args.output if args.output and args.output.endswith(".jsonl")
        else None
    )
    try:
        run = run_experiment(
            exp, executor=executor, jobs=args.jobs, progress=progress,
            telemetry=args.telemetry, stream_path=stream_path,
        )
    except ConfigurationError as error:
        raise SystemExit(str(error))
    if run.store is not None:
        print(render_result_document(
            run.store.document(),
            title=(f"experiment {exp.name} ({exp.kind}): "
                   f"{len(exp.points())} point(s) x {exp.trials} trial(s), "
                   f"plan {run.plan_digest}"),
        ))
        if args.output:
            run.store.write(args.output)
            print(f"result document written to {args.output}")
    else:
        print(f"{run.streamed} trial(s) streamed to {run.stream_path} "
              f"(plan {run.plan_digest})")
    for check in run.verdicts:
        print(check)
    if exp.refine is not None and args.refine:
        import json as _json

        try:
            boundary = refine_experiment(
                exp, executor=executor, jobs=args.jobs, base_run=run,
            )
        except ConfigurationError as error:
            raise SystemExit(str(error))
        total = sum(
            len(ctx["brackets"]) for ctx in boundary["contexts"]
        )
        converged = sum(
            1 for ctx in boundary["contexts"]
            for bracket in ctx["brackets"] if bracket["converged"]
        )
        print(f"refine: {total} boundary bracket(s), {converged} converged, "
              f"{boundary['refined_trials']} refined trial(s) on top of "
              f"{boundary['base_trials']}")
        for ctx in boundary["contexts"]:
            label = ", ".join(
                f"{k}={v}" for k, v in sorted(ctx["context"].items())
            ) or "(all)"
            for bracket in ctx["brackets"]:
                print(f"  {label}: {boundary['axis']} flips "
                      f"{boundary['metric']} {boundary['op']} "
                      f"{boundary['threshold']:g} in "
                      f"[{bracket['low']:g}, {bracket['high']:g}]"
                      + (" (converged)" if bracket["converged"] else ""))
        if args.boundary_output:
            with open(args.boundary_output, "w", encoding="utf-8") as handle:
                _json.dump(boundary, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(f"boundary document written to {args.boundary_output}")
    if not run.passed:
        print(f"{len(run.failures)} expectation(s) failed")
        return 1
    return 0


_COMMANDS = {
    "query": _cmd_query,
    "report": _cmd_report,
    "disseminate": _cmd_disseminate,
    "scenario": _cmd_scenario,
    "gossip": _cmd_gossip,
    "matrix": _cmd_matrix,
    "describe": _cmd_describe,
    "sweep": _cmd_sweep,
    "faults": _cmd_faults,
    "resilience": _cmd_resilience,
    "executor": _cmd_executor,
    "top": _cmd_top,
    "runs": _cmd_runs,
    "resume": _cmd_resume,
    "trace": _cmd_trace,
    "bench": _cmd_bench,
    "experiment": _cmd_experiment,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    # The manifest's cli block records exactly what was invoked.
    args._argv = list(argv) if argv is not None else sys.argv[1:]
    try:
        return _COMMANDS[args.command](args)
    except KeyboardInterrupt:
        # 130 = 128 + SIGINT, the conventional interrupted-by-Ctrl-C code.
        # Telemetry/checkpoint state was already flushed line-by-line, so
        # an interrupted sweep is resumable via `repro resume`.
        print("interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
