"""Command-line interface.

Run experiments without writing a script::

    python -m repro query  --n 32 --topology er --aggregate SUM
    python -m repro query  --n 32 --churn-rate 2.0 --trials 5
    python -m repro gossip --n 24 --mode count --rounds 60
    python -m repro matrix
    python -m repro describe --arrival inf-bounded --knowledge local
    python -m repro sweep --rates 0,0.5,2,8 --trials 8 --jobs 4

The ``sweep`` command runs through the layered experiment engine
(:mod:`repro.engine`): ``--jobs N`` fans trials out over worker processes
and ``--output FILE`` writes the schema-versioned result document.
Results are independent of ``--jobs`` — parallelism changes wall-clock
time, never verdicts.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.analysis.tables import render_matrix, render_result_document, render_table
from repro.bench.runner import GossipConfig, QueryConfig, run_gossip, run_query
from repro.churn.models import ReplacementChurn
from repro.core.arrival import (
    ArrivalClass,
    FiniteArrival,
    InfiniteArrivalBounded,
    InfiniteArrivalFinite,
    InfiniteArrivalUnbounded,
    StaticArrival,
)
from repro.core.classes import SystemClass, standard_lattice
from repro.core.geography import (
    KnowledgeClass,
    complete,
    known_diameter,
    known_size,
    local,
)
from repro.core.solvability import Solvable, one_time_query_solvability, solvability_matrix
from repro.sim.rng import iter_seeds

_ARRIVALS = {
    "static": lambda n: StaticArrival(n),
    "finite": lambda n: FiniteArrival(),
    "inf-bounded": lambda n: InfiniteArrivalBounded(n),
    "inf-finite": lambda n: InfiniteArrivalFinite(),
    "inf-unbounded": lambda n: InfiniteArrivalUnbounded(),
}

_KNOWLEDGE = {
    "complete": lambda d, s: complete(),
    "diameter": lambda d, s: known_diameter(d),
    "size": lambda d, s: known_size(s),
    "local": lambda d, s: local(),
}

_MATRIX_SYMBOL = {Solvable.YES: "yes", Solvable.CONDITIONAL: "cond", Solvable.NO: "NO"}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Dynamic distributed systems: the PaCT 2007 definition "
        "space, executable.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    query = sub.add_parser("query", help="run a one-time query scenario")
    query.add_argument("--n", type=int, default=32)
    query.add_argument("--topology", default="er")
    query.add_argument("--protocol", default="wave",
                       choices=["wave", "request_collect"])
    query.add_argument("--aggregate", default="COUNT")
    query.add_argument("--ttl", type=int, default=None,
                       help="wave hop budget; omit for echo mode")
    query.add_argument("--deadline", type=float, default=None)
    query.add_argument("--churn-rate", type=float, default=0.0,
                       help="replacement churn rate (0 = static)")
    query.add_argument("--seed", type=int, default=2007)
    query.add_argument("--trials", type=int, default=1)
    query.add_argument("--horizon", type=float, default=300.0)

    gossip = sub.add_parser("gossip", help="run a push-sum gossip scenario")
    gossip.add_argument("--n", type=int, default=32)
    gossip.add_argument("--topology", default="er")
    gossip.add_argument("--mode", default="avg", choices=["avg", "count"])
    gossip.add_argument("--rounds", type=int, default=50)
    gossip.add_argument("--churn-rate", type=float, default=0.0)
    gossip.add_argument("--seed", type=int, default=2007)

    sub.add_parser("matrix", help="print the solvability matrix")

    describe = sub.add_parser("describe", help="describe one system class")
    describe.add_argument("--arrival", required=True, choices=sorted(_ARRIVALS))
    describe.add_argument("--knowledge", required=True, choices=sorted(_KNOWLEDGE))
    describe.add_argument("--n", type=int, default=16)
    describe.add_argument("--diameter", type=int, default=8)
    describe.add_argument("--size-bound", type=int, default=64)

    report = sub.add_parser("report", help="run the standard battery and "
                            "emit a markdown report")
    report.add_argument("--n", type=int, default=24)
    report.add_argument("--trials", type=int, default=3)
    report.add_argument("--seed", type=int, default=2007)
    report.add_argument("--output", default=None,
                        help="write to this file instead of stdout")

    disseminate = sub.add_parser(
        "disseminate", help="run a dissemination scenario (flood vs anti-entropy)"
    )
    disseminate.add_argument("--n", type=int, default=24)
    disseminate.add_argument("--protocol", default="anti-entropy",
                             choices=["flood", "anti-entropy"])
    disseminate.add_argument("--churn-rate", type=float, default=1.0)
    disseminate.add_argument("--audit-at", type=float, default=80.0)
    disseminate.add_argument("--seed", type=int, default=2007)

    scenario = sub.add_parser("scenario", help="run a named preset scenario")
    from repro.bench.scenarios import SCENARIOS as _SCENARIOS

    scenario.add_argument("name", choices=sorted(_SCENARIOS))
    scenario.add_argument("--seed", type=int, default=2007)
    scenario.add_argument("--trials", type=int, default=1)

    sweep_cmd = sub.add_parser("sweep", help="sweep churn rates (E4 shape)")
    sweep_cmd.add_argument("--rates", default="0,0.5,2.0,8.0",
                           help="comma-separated replacement churn rates")
    sweep_cmd.add_argument("--n", type=int, default=32)
    sweep_cmd.add_argument("--topology", default="er")
    sweep_cmd.add_argument("--trials", type=int, default=5)
    sweep_cmd.add_argument("--seed", type=int, default=2007)
    sweep_cmd.add_argument("--jobs", type=int, default=1,
                           help="worker processes (1 = serial; results are "
                           "identical either way)")
    sweep_cmd.add_argument("--output", default=None,
                           help="write the engine's JSON result document "
                           "to this file")

    return parser


def _churn_builder(rate: float):
    if rate <= 0:
        return None
    return lambda factory: ReplacementChurn(factory, rate=rate)


def _cmd_query(args: argparse.Namespace) -> int:
    rows = []
    for seed in iter_seeds(args.seed, args.trials):
        outcome = run_query(QueryConfig(
            n=args.n, topology=args.topology, protocol=args.protocol,
            aggregate=args.aggregate, ttl=args.ttl, deadline=args.deadline,
            seed=seed, horizon=args.horizon,
            churn=_churn_builder(args.churn_rate),
        ))
        rows.append([
            seed % 100_000,
            str(outcome.record.result),
            str(outcome.truth),
            f"{outcome.completeness:.2f}",
            f"{outcome.latency:.2f}" if outcome.terminated else "inf",
            outcome.messages,
            "OK" if outcome.ok else "FAIL",
        ])
    print(render_table(
        ["seed", "result", "truth", "completeness", "latency", "messages", "spec"],
        rows,
        title=(f"one-time query: n={args.n}, {args.topology}, "
               f"{args.protocol}, {args.aggregate}, churn={args.churn_rate}"),
    ))
    return 0


def _cmd_gossip(args: argparse.Namespace) -> int:
    outcome = run_gossip(GossipConfig(
        n=args.n, topology=args.topology, mode=args.mode,
        rounds=args.rounds, seed=args.seed,
        churn=_churn_builder(args.churn_rate),
    ))
    print(f"push-sum {args.mode}: estimate {outcome.estimate:.4g}, "
          f"truth {outcome.truth:.4g}, relative error {outcome.error:.4g}, "
          f"{outcome.messages} messages")
    return 0


def _cmd_matrix(args: argparse.Namespace) -> int:
    matrix = solvability_matrix(standard_lattice())
    rows: list[str] = []
    cols: list[str] = []
    cells = {}
    for system, result in matrix.items():
        row, col = str(system.arrival), str(system.knowledge)
        if row not in rows:
            rows.append(row)
        if col not in cols:
            cols.append(col)
        cells[(row, col)] = _MATRIX_SYMBOL[result.answer]
    print(render_matrix(rows, cols, cells, corner="arrival \\ knowledge",
                        title="one-time query solvability"))
    return 0


def _cmd_describe(args: argparse.Namespace) -> int:
    arrival: ArrivalClass = _ARRIVALS[args.arrival](args.n)
    knowledge: KnowledgeClass = _KNOWLEDGE[args.knowledge](
        args.diameter, args.size_bound
    )
    system = SystemClass(arrival, knowledge)
    result = one_time_query_solvability(system)
    print(system.name)
    print()
    print(system.describe())
    print()
    print(f"one-time query: {result.answer}")
    if result.condition:
        print(f"condition: {result.condition}")
    print(f"argument: {result.argument}")
    if result.witness_protocol:
        print(f"witness protocol: {result.witness_protocol}")
    print(f"validating experiment: {result.experiment}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.report import build_report

    text = build_report(n=args.n, trials=args.trials, seed=args.seed)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"report written to {args.output}")
    else:
        print(text)
    return 0


def _cmd_disseminate(args: argparse.Namespace) -> int:
    from repro.core.dissemination_spec import DisseminationSpec
    from repro.protocols.dissemination import AntiEntropyNode, FloodNode
    from repro.sim.latency import ConstantDelay
    from repro.sim.scheduler import Simulator
    from repro.topology import generators as topo_gen

    node_cls = FloodNode if args.protocol == "flood" else AntiEntropyNode
    sim = Simulator(seed=args.seed, delay_model=ConstantDelay(0.5))
    topo = topo_gen.make("er", args.n, sim.rng_for("topo"))
    pids = []
    for node in sorted(topo.nodes()):
        neighbors = [p for p in topo.neighbors(node) if p < node]
        pids.append(sim.spawn(node_cls(1.0), neighbors).pid)
    if args.churn_rate > 0:
        model = ReplacementChurn(lambda: node_cls(1.0), rate=args.churn_rate)
        model.immortal.add(pids[0])
        model.install(sim)
    origin = sim.network.process(pids[0])
    sim.at(10.0, lambda: origin.broadcast_value("payload"))
    sim.run(until=args.audit_at)
    verdict = DisseminationSpec().check(sim.trace, at=args.audit_at)[0]
    print(f"{args.protocol} dissemination, n={args.n}, "
          f"churn={args.churn_rate}, audited at t={args.audit_at}:")
    print(f"  stable-core coverage : {verdict.coverage:.2f}")
    print(f"  population coverage  : {verdict.population_coverage:.2f}")
    print(f"  messages             : {sim.trace.message_count()}")
    return 0


def _cmd_scenario(args: argparse.Namespace) -> int:
    from dataclasses import replace

    from repro.bench.scenarios import make_scenario

    rows = []
    for seed in iter_seeds(args.seed, args.trials):
        config = replace(make_scenario(args.name), seed=seed)
        outcome = run_query(config)
        rows.append([
            seed % 100_000,
            str(outcome.record.result),
            f"{outcome.completeness:.2f}",
            f"{outcome.latency:.2f}" if outcome.terminated else "inf",
            outcome.messages,
            "OK" if outcome.ok else "partial",
        ])
    print(render_table(
        ["seed", "result", "completeness", "latency", "messages", "spec"],
        rows,
        title=f"scenario {args.name!r}",
    ))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.engine import build_plan, make_executor, run_plan

    rates = [float(r) for r in args.rates.split(",") if r.strip()]
    plan = build_plan(
        "churn-sweep",
        kind="query",
        grid={"churn_rate": rates},
        base={
            "n": args.n, "topology": args.topology,
            "aggregate": "COUNT", "horizon": 300.0,
        },
        trials=args.trials,
        root_seed=args.seed,
    )
    store = run_plan(plan, executor=make_executor(args.jobs))
    print(render_result_document(
        store.document(),
        columns=("trials", "completeness", "fully_complete", "messages"),
        title=(f"churn sweep: n={args.n}, {args.topology}, "
               f"{args.trials} trials, jobs={args.jobs}"),
    ))
    if args.output:
        store.write(args.output)
        print(f"result document written to {args.output}")
    return 0


_COMMANDS = {
    "query": _cmd_query,
    "report": _cmd_report,
    "disseminate": _cmd_disseminate,
    "scenario": _cmd_scenario,
    "gossip": _cmd_gossip,
    "matrix": _cmd_matrix,
    "describe": _cmd_describe,
    "sweep": _cmd_sweep,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
