"""The stable public facade of the repro package.

Everything a downstream user — scripts, notebooks, the examples/ directory,
external reproduction harnesses — should need lives behind this one module::

    from repro.api import QueryConfig, run_query, build_plan, run_plan

The names re-exported here are the **blessed surface**: they follow the
deprecation policy documented in ``docs/API.md`` (a name is never removed
or changed incompatibly without at least one release of
``DeprecationWarning`` from a compatibility shim).  Anything imported from
deeper module paths (``repro.engine.trials``, ``repro.sim.scheduler``, …)
continues to work but is treated as internal: it may move without a shim.

The surface groups into:

* **Trials** — one config in, one checked outcome out
  (:class:`QueryConfig`/:func:`run_query` and the gossip / dissemination
  counterparts).
* **Engine** — many trials: :func:`build_plan` → executor →
  :class:`ResultStore` and its schema-versioned document
  (:func:`load_document`).  Execution is configured by the frozen,
  picklable :class:`ExecutorSpec` (backend serial/parallel, workers,
  chunking, watchdog; lossless ``repro-executor-spec`` JSON wire format,
  builtin :data:`EXECUTOR_PRESETS`, :func:`resolve_executor`) passed as
  ``executor=`` to :func:`run_plan` / :func:`stream_plan` or as
  ``--executor`` on the CLI; :class:`SerialExecutor` /
  :class:`ParallelExecutor` are the backends it materialises.
* **Observability** — :class:`Metrics` and the pluggable trace sinks
  (:class:`MemorySink`, :class:`JsonlStreamSink`, :class:`NullSink`,
  :class:`CountingSink`) selected per trial via ``trace_sink=...``, plus
  the causal analysis layer: :class:`HappensBeforeDAG` /
  :class:`InfluenceReport`, the streaming invariant checkers behind
  :class:`CheckingSink` / :func:`check_trace`, and the timeline exporters
  (:func:`write_chrome_trace`, :func:`ascii_timeline`,
  :func:`write_engine_trace` for merged engine + simulation views).
* **Engine telemetry** — the harness observing itself: pass
  ``telemetry=...`` to :func:`run_plan` / :func:`stream_plan` (or
  ``--telemetry`` on the CLI) to record a :class:`RunManifest`,
  hierarchical :class:`Span` records (run → dispatch → chunk → trial) and
  per-worker health into an append-only ``repro-run-telemetry`` stream —
  tail it live with :class:`TelemetryTail` (``repro top``), browse the
  ledger with :func:`scan_runs` / :func:`find_run`
  (``repro runs list|show``), re-profile the slowest trials with
  :func:`profile_slowest`.  Result documents are byte-identical with
  telemetry on or off.
* **Crash safety** — ``checkpoint=`` / ``resume_from=`` on
  :func:`run_plan` / :func:`stream_plan` / ``run_experiment`` journal
  every completed trial to a ``repro-run-checkpoint`` file
  (:class:`CheckpointWriter` / :func:`load_checkpoint`) so an
  interrupted sweep resumes byte-identically (``repro resume``); the
  parallel backend self-heals worker death (respawn + redispatch,
  poison-trial quarantine, :class:`WorkerPoolError` as the bounded
  backstop); the chaos injectors (:class:`SigintAfter`,
  :class:`KillWorkerAtChunk`, :class:`ENOSPCAfter`,
  :func:`tear_file_tail`) make those failures reproducible in tests.
  See ``docs/RECOVERY.md``.
* **Regression gating** — :func:`diff_files` / :func:`diff_documents`
  compare two result documents (or BENCH payloads) with per-metric
  relative thresholds; ``repro bench diff`` is the CLI face.  With
  ``bootstrap=N`` the arms' trials are paired by seed and every verdict
  carries a deterministic bootstrap confidence interval
  (:func:`bootstrap_mean_ci`, :func:`paired_seed_compare`).
* **Declarative experiments** — the ``repro-experiment`` v1 YAML format
  (:class:`ExperimentDef`, :func:`load_experiment` /
  :func:`dump_experiment`) lowers to the engine plan byte-identically to
  the equivalent ``build_plan`` call; :func:`run_experiment` executes it
  (with ``expect`` verdict checks) and :func:`refine_experiment` bisects
  solvability boundaries named by the ``refine:`` block;
  ``repro experiment run|show|validate`` is the CLI face.
* **Faults** — the deterministic fault-injection plane
  (:class:`FaultPlan` / :class:`FaultSpec`, the builtin
  :data:`FAULT_PRESETS`, and :class:`FaultInjector` for driving a raw
  simulator), selected per trial via the ``faults=...`` config field or
  ``--fault-plan`` on the CLI.
* **Resilience** — the deterministic recovery plane
  (:class:`ResilienceSpec`, the builtin :data:`RESILIENCE_PRESETS`,
  :class:`ReliableTransport` / :func:`install_resilience` for driving a
  raw simulator, and :class:`CoverageReport` for graceful degradation),
  selected per trial via the ``resilience=...`` config field or
  ``--resilience`` on the CLI.
* **Model** — the paper's formal layer (system classes, runs, the
  one-time-query specification) plus the simulator, topology, churn and
  protocol building blocks the examples exercise.
"""

from __future__ import annotations

# --- Trials: one scenario in, one checked outcome out -------------------
from repro.engine.trials import (
    LARGE_TRIAL_THRESHOLD,
    DisseminationConfig,
    DisseminationOutcome,
    GossipConfig,
    GossipOutcome,
    QueryConfig,
    QueryOutcome,
    build_population,
    reachable_now,
    run_dissemination,
    run_gossip,
    run_query,
)

# --- Engine: plan → executor → result store -----------------------------
from repro.engine.executor import (
    ParallelExecutor,
    ProgressFn,
    SerialExecutor,
    TrialExecutor,
    execute_trial,
    make_executor,
    run_plan,
    stream_plan,
)
from repro.engine.spec import (
    EXECUTOR_PRESETS,
    ExecutorSpec,
    executor_preset,
    resolve_executor,
)
from repro.engine.plan import (
    VALUE_FUNCTIONS,
    ExperimentPlan,
    TrialSpec,
    build_plan,
)
from repro.engine.results import (
    SCHEMA_NAME,
    SCHEMA_VERSION,
    ResultStore,
    SchemaVersionError,
    StreamingResultStore,
    TrialResult,
    load_document,
    summarize_point,
    validate_document,
)
from repro.engine.telemetry import (
    DEFAULT_RUNS_DIR,
    TELEMETRY_SUFFIX,
    RunManifest,
    TelemetryRecorder,
    TelemetryTail,
    WorkerHealth,
    find_run,
    load_telemetry,
    plan_digest,
    profile_slowest,
    render_profiles,
    run_status,
    scan_runs,
)

# --- Crash safety: checkpoint/resume, self-healing pool, chaos -----------
from repro.engine.recovery import (
    CHECKPOINT_SCHEMA,
    CHECKPOINT_VERSION,
    ChaosInterrupt,
    CheckpointError,
    CheckpointState,
    CheckpointWriter,
    ENOSPCAfter,
    KillWorkerAtChunk,
    SigintAfter,
    WorkerPoolError,
    load_checkpoint,
    tear_file_tail,
)

# --- Observability: metrics, sinks, causality, checking, export ---------
from repro.obs import (
    SINK_NAMES,
    SPAN_KINDS,
    TELEMETRY_SCHEMA,
    TELEMETRY_VERSION,
    TRANSPORT_KINDS,
    CheckingSink,
    Counter,
    CountingSink,
    Gauge,
    HappensBeforeDAG,
    Histogram,
    InfluenceReport,
    InvariantChecker,
    JsonlStreamSink,
    MemorySink,
    Metrics,
    NullSink,
    Span,
    SpanTracer,
    TraceSink,
    Violation,
    ascii_timeline,
    check_trace,
    default_checkers,
    make_sink,
    merge_engine_trace,
    owners_of,
    read_telemetry,
    span_tree,
    to_chrome_trace,
    write_chrome_trace,
    write_engine_trace,
)

# --- Regression gating: compare result documents ------------------------
from repro.analysis.diff import (
    BENCH_THRESHOLDS,
    DOCUMENT_THRESHOLDS,
    BenchDiff,
    MetricDiff,
    diff_documents,
    diff_files,
)
from repro.analysis.stats import (
    BOOTSTRAP_METHODS,
    BootstrapCI,
    PairedComparison,
    bootstrap_mean_ci,
    paired_differences,
    paired_seed_compare,
)
from repro.version import package_version

# --- Declarative experiments: YAML in, canonical plans out ---------------
from repro.experiments import (
    EXPERIMENT_SCHEMA,
    EXPERIMENT_VERSION,
    ExpectSpec,
    ExperimentDef,
    ExperimentRun,
    RefineSpec,
    VerdictCheck,
    dump_experiment,
    experiment_digest,
    experiment_plan_digest,
    load_experiment,
    loads_experiment,
    refine_experiment,
    run_experiment,
    save_experiment,
)

# --- Faults: the deterministic fault-injection plane ---------------------
from repro.faults import (
    FAULT_KINDS,
    FAULT_PRESETS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    fault_preset,
    install_plan,
    resolve_faults,
)

# --- Resilience: the deterministic recovery plane ------------------------
from repro.resilience import (
    RESILIENCE_PRESETS,
    CoverageReport,
    ReliableTransport,
    ResilienceSpec,
    backoff_schedule,
    install_resilience,
    resilience_preset,
    resolve_resilience,
)

# --- Churn: declarative specs, generative models, adversaries -----------
from repro.churn.spec import ChurnSpec, resolve_churn
from repro.churn import (
    ArrivalDepartureChurn,
    ExponentialLifetime,
    FiniteArrivalChurn,
    ParetoLifetime,
    PhasedChurn,
    ReplacementChurn,
    TraceReplayChurn,
    defeat_ttl,
    synthetic_sessions,
    trace_statistics,
)

# --- The formal model: classes, runs, specifications --------------------
from repro.core import (
    AGGREGATES,
    AVG,
    COUNT,
    MAX,
    MIN,
    SET,
    SUM,
    Aggregate,
    DisseminationSpec,
    FiniteArrival,
    InfiniteArrivalBounded,
    InfiniteArrivalFinite,
    InfiniteArrivalUnbounded,
    OneTimeQuerySpec,
    Run,
    Solvable,
    StaticArrival,
    SystemClass,
    complete,
    extract_queries,
    known_diameter,
    known_size,
    local,
    one_time_query_solvability,
    solvability_matrix,
    standard_lattice,
)

# --- Simulator, topology, protocols, failure detection ------------------
from repro.sim import (
    BernoulliLoss,
    ConstantDelay,
    ExponentialDelay,
    SeedSequence,
    Simulator,
    TraceLog,
    UniformDelay,
)
from repro.topology import Topology, UniformAttachment, ring
from repro.topology import generators
from repro.protocols import (
    AntiEntropyNode,
    FloodNode,
    PushSumNode,
    RequestCollectNode,
    TreeAggregationNode,
    WaveNode,
)
from repro.failure.detector import (
    HeartbeatNode,
    false_suspicions,
    mistake_recovery_count,
)
from repro.synchronous import (
    KnowledgeFlood,
    SynchronousSystem,
    build_from_topology,
)

# --- Analysis & presets -------------------------------------------------
from repro.analysis import (
    message_cost,
    relative_error,
    render_matrix,
    render_table,
    sparkline,
)
from repro.bench.scenarios import SCENARIOS, make_scenario
from repro.bench.sweep import SweepPoint, sweep, sweep_table

__all__ = [
    # trials
    "DisseminationConfig",
    "DisseminationOutcome",
    "GossipConfig",
    "GossipOutcome",
    "QueryConfig",
    "QueryOutcome",
    "build_population",
    "reachable_now",
    "run_dissemination",
    "run_gossip",
    "run_query",
    # engine
    "EXECUTOR_PRESETS",
    "ExecutorSpec",
    "ExperimentPlan",
    "LARGE_TRIAL_THRESHOLD",
    "ParallelExecutor",
    "ProgressFn",
    "ResultStore",
    "SCHEMA_NAME",
    "SCHEMA_VERSION",
    "SerialExecutor",
    "StreamingResultStore",
    "TrialExecutor",
    "TrialResult",
    "TrialSpec",
    "VALUE_FUNCTIONS",
    "build_plan",
    "execute_trial",
    "executor_preset",
    "load_document",
    "make_executor",
    "resolve_executor",
    "run_plan",
    "stream_plan",
    "summarize_point",
    "validate_document",
    # engine telemetry
    "DEFAULT_RUNS_DIR",
    "RunManifest",
    "SPAN_KINDS",
    "Span",
    "SpanTracer",
    "TELEMETRY_SCHEMA",
    "TELEMETRY_SUFFIX",
    "TELEMETRY_VERSION",
    "TelemetryRecorder",
    "TelemetryTail",
    "WorkerHealth",
    "find_run",
    "load_telemetry",
    "plan_digest",
    "profile_slowest",
    "read_telemetry",
    "render_profiles",
    "run_status",
    "scan_runs",
    "span_tree",
    # crash safety: checkpoint/resume, self-healing pool, chaos
    "CHECKPOINT_SCHEMA",
    "CHECKPOINT_VERSION",
    "ChaosInterrupt",
    "CheckpointError",
    "CheckpointState",
    "CheckpointWriter",
    "ENOSPCAfter",
    "KillWorkerAtChunk",
    "SigintAfter",
    "WorkerPoolError",
    "load_checkpoint",
    "tear_file_tail",
    # observability
    "CheckingSink",
    "Counter",
    "CountingSink",
    "Gauge",
    "HappensBeforeDAG",
    "Histogram",
    "InfluenceReport",
    "InvariantChecker",
    "JsonlStreamSink",
    "MemorySink",
    "Metrics",
    "NullSink",
    "SINK_NAMES",
    "TRANSPORT_KINDS",
    "TraceSink",
    "Violation",
    "ascii_timeline",
    "check_trace",
    "default_checkers",
    "make_sink",
    "merge_engine_trace",
    "owners_of",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_engine_trace",
    # regression gating & provenance
    "BENCH_THRESHOLDS",
    "BOOTSTRAP_METHODS",
    "BenchDiff",
    "BootstrapCI",
    "DOCUMENT_THRESHOLDS",
    "MetricDiff",
    "PairedComparison",
    "SchemaVersionError",
    "bootstrap_mean_ci",
    "diff_documents",
    "diff_files",
    "package_version",
    "paired_differences",
    "paired_seed_compare",
    # declarative experiments
    "EXPERIMENT_SCHEMA",
    "EXPERIMENT_VERSION",
    "ExpectSpec",
    "ExperimentDef",
    "ExperimentRun",
    "RefineSpec",
    "VerdictCheck",
    "dump_experiment",
    "experiment_digest",
    "experiment_plan_digest",
    "load_experiment",
    "loads_experiment",
    "refine_experiment",
    "run_experiment",
    "save_experiment",
    # faults
    "FAULT_KINDS",
    "FAULT_PRESETS",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "fault_preset",
    "install_plan",
    "resolve_faults",
    # resilience
    "CoverageReport",
    "RESILIENCE_PRESETS",
    "ReliableTransport",
    "ResilienceSpec",
    "backoff_schedule",
    "install_resilience",
    "resilience_preset",
    "resolve_resilience",
    # churn
    "ArrivalDepartureChurn",
    "ChurnSpec",
    "ExponentialLifetime",
    "FiniteArrivalChurn",
    "ParetoLifetime",
    "PhasedChurn",
    "ReplacementChurn",
    "TraceReplayChurn",
    "defeat_ttl",
    "resolve_churn",
    "synthetic_sessions",
    "trace_statistics",
    # formal model
    "AGGREGATES",
    "AVG",
    "Aggregate",
    "COUNT",
    "DisseminationSpec",
    "FiniteArrival",
    "InfiniteArrivalBounded",
    "InfiniteArrivalFinite",
    "InfiniteArrivalUnbounded",
    "MAX",
    "MIN",
    "OneTimeQuerySpec",
    "Run",
    "SET",
    "SUM",
    "Solvable",
    "StaticArrival",
    "SystemClass",
    "complete",
    "extract_queries",
    "known_diameter",
    "known_size",
    "local",
    "one_time_query_solvability",
    "solvability_matrix",
    "standard_lattice",
    # simulator / topology / protocols
    "AntiEntropyNode",
    "BernoulliLoss",
    "ConstantDelay",
    "ExponentialDelay",
    "FloodNode",
    "HeartbeatNode",
    "KnowledgeFlood",
    "PushSumNode",
    "RequestCollectNode",
    "SeedSequence",
    "Simulator",
    "SynchronousSystem",
    "Topology",
    "TraceLog",
    "TreeAggregationNode",
    "UniformAttachment",
    "UniformDelay",
    "WaveNode",
    "build_from_topology",
    "false_suspicions",
    "generators",
    "mistake_recovery_count",
    "ring",
    # analysis & presets
    "SCENARIOS",
    "SweepPoint",
    "make_scenario",
    "message_cost",
    "relative_error",
    "render_matrix",
    "render_table",
    "sparkline",
    "sweep",
    "sweep_table",
]
