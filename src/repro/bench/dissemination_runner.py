"""Experiment runner for dissemination scenarios.

The dissemination counterpart of :func:`repro.bench.runner.run_query`: one
config in, one audited outcome out.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.metrics import message_cost
from repro.bench.runner import ChurnBuilder
from repro.core.dissemination_spec import (
    BroadcastRecord,
    DisseminationSpec,
    DisseminationVerdict,
    extract_broadcasts,
)
from repro.core.runs import Run
from repro.protocols.dissemination import AntiEntropyNode, FloodNode
from repro.sim import trace as tr
from repro.sim.errors import ConfigurationError
from repro.sim.latency import DelayModel, UniformDelay
from repro.sim.scheduler import Simulator
from repro.topology import generators
from repro.topology.graph import Topology


@dataclass
class DisseminationConfig:
    """A complete dissemination scenario.

    Attributes:
        n: initial population size.
        topology: a generator family name or a prebuilt topology.
        protocol: ``"flood"`` (one-shot) or ``"anti_entropy"`` (repairing).
        broadcast_at: when the origin publishes its value.
        audit_at: when coverage is measured.
        ae_period: reconciliation period for anti-entropy.
        seed, delay, churn: as in :class:`~repro.bench.runner.QueryConfig`.
        protect_origin: exempt the origin from random victim selection.
    """

    n: int = 24
    topology: str | Topology = "er"
    protocol: str = "anti_entropy"
    broadcast_at: float = 10.0
    audit_at: float = 80.0
    ae_period: float = 2.0
    seed: int = 0
    delay: DelayModel | None = None
    churn: ChurnBuilder | None = None
    protect_origin: bool = True
    value: object = "payload"


@dataclass
class DisseminationOutcome:
    """Everything measured about one dissemination scenario."""

    config: DisseminationConfig
    verdict: DisseminationVerdict
    record: BroadcastRecord
    messages: int
    run: Run
    trace: tr.TraceLog
    origin: int

    @property
    def coverage(self) -> float:
        return self.verdict.coverage

    @property
    def population_coverage(self) -> float:
        return self.verdict.population_coverage

    @property
    def ok(self) -> bool:
        return self.verdict.ok


def run_dissemination(config: DisseminationConfig) -> DisseminationOutcome:
    """Execute a dissemination scenario end to end and audit it."""
    if config.protocol not in ("flood", "anti_entropy"):
        raise ConfigurationError(
            f"unknown protocol {config.protocol!r}; use 'flood' or "
            "'anti_entropy'"
        )
    if config.audit_at <= config.broadcast_at:
        raise ConfigurationError(
            f"audit time {config.audit_at} must follow broadcast time "
            f"{config.broadcast_at}"
        )
    sim = Simulator(seed=config.seed, delay_model=config.delay or UniformDelay())

    def factory():
        if config.protocol == "flood":
            return FloodNode(1.0)
        return AntiEntropyNode(1.0, period=config.ae_period)

    if isinstance(config.topology, Topology):
        topo = config.topology
    else:
        topo = generators.make(config.topology, config.n, sim.rng_for("topology"))
    pids = []
    for node in sorted(topo.nodes()):
        neighbors = [p for p in topo.neighbors(node) if p < node]
        pids.append(sim.spawn(factory(), neighbors).pid)
    origin_pid = pids[0]

    if config.churn is not None:
        model = config.churn(factory)
        if config.protect_origin:
            model.immortal.add(origin_pid)
        model.install(sim)

    def publish() -> None:
        if sim.network.is_present(origin_pid):
            sim.network.process(origin_pid).broadcast_value(config.value)

    sim.at(config.broadcast_at, publish, label="experiment:broadcast")
    sim.run(until=config.audit_at)

    records = extract_broadcasts(sim.trace)
    if not records:
        raise ConfigurationError(
            "the broadcast never happened (origin departed first?)"
        )
    record = records[0]
    run = Run.from_trace(sim.trace, horizon=config.audit_at)
    verdict = DisseminationSpec().check_broadcast(
        sim.trace, record, at=config.audit_at, run=run
    )
    return DisseminationOutcome(
        config=config,
        verdict=verdict,
        record=record,
        messages=message_cost(sim.trace),
        run=run,
        trace=sim.trace,
        origin=origin_pid,
    )
