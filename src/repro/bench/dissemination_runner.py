"""Compatibility shim: the dissemination runner now lives in the engine.

The dissemination counterpart of :func:`repro.bench.runner.run_query`: one
config in, one audited outcome out.  The implementation moved to
:mod:`repro.engine.trials`; this module re-exports it so existing imports
keep working unchanged.  Dissemination trials can also be orchestrated
through the engine with ``build_plan(..., kind="dissemination")``.
"""

from __future__ import annotations

from repro.engine.trials import (  # noqa: F401
    DisseminationConfig,
    DisseminationOutcome,
    run_dissemination,
)

__all__ = [
    "DisseminationConfig",
    "DisseminationOutcome",
    "run_dissemination",
]
