"""Deprecated shim: the dissemination runner now lives in the engine.

The dissemination counterpart of the old ``repro.bench.runner.run_query``:
one config in, one audited outcome out.  The implementation moved to
:mod:`repro.engine.trials`; this module re-exports it so existing imports
keep working, but importing it now raises a :class:`DeprecationWarning` —
import from :mod:`repro.api` instead.  Dissemination trials can also be
orchestrated through the engine with ``build_plan(..., kind="dissemination")``.
"""

from __future__ import annotations

import warnings

warnings.warn(
    "repro.bench.dissemination_runner is deprecated; import "
    "DisseminationConfig/run_dissemination from repro.api instead",
    DeprecationWarning,
    stacklevel=2,
)

from repro.engine.trials import (  # noqa: E402,F401
    DisseminationConfig,
    DisseminationOutcome,
    run_dissemination,
)

__all__ = [
    "DisseminationConfig",
    "DisseminationOutcome",
    "run_dissemination",
]
