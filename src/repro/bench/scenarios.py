"""Named preset scenarios.

A downstream user exploring the definition space should not have to
assemble churn builders by hand; these presets cover the regimes the
experiments study, each returning a fresh :class:`QueryConfig` (so callers
can tweak fields before running).  Churn is expressed as declarative
:class:`~repro.churn.spec.ChurnSpec`s, so every preset config is picklable
and runs unchanged under the parallel executor.
"""

from __future__ import annotations

from typing import Callable

from repro.churn.spec import ChurnSpec
from repro.engine.trials import QueryConfig
from repro.sim.errors import ConfigurationError


def static_small(seed: int = 2007) -> QueryConfig:
    """A 16-process static random overlay — the trivial corner."""
    return QueryConfig(n=16, topology="er", aggregate="COUNT", seed=seed,
                       horizon=100.0)


def static_deep(seed: int = 2007) -> QueryConfig:
    """A 64-process line — the extremal topology for locality arguments."""
    return QueryConfig(n=64, topology="line", aggregate="COUNT", seed=seed,
                       horizon=500.0)


def steady_churn(rate: float = 1.0, seed: int = 2007) -> QueryConfig:
    """Constant-size replacement churn at the given rate (M_inf_bounded)."""
    if rate <= 0:
        raise ConfigurationError(f"rate must be > 0, got {rate}")
    return QueryConfig(
        n=32, topology="er", aggregate="COUNT", seed=seed, horizon=300.0,
        churn=ChurnSpec(kind="replacement", rate=rate),
    )


def p2p_heavy_tail(seed: int = 2007) -> QueryConfig:
    """Pareto session lengths over Poisson arrivals — the P2P shape."""
    return QueryConfig(
        n=24, topology="er", aggregate="COUNT", seed=seed,
        query_at=30.0, horizon=400.0,
        churn=ChurnSpec(
            kind="arrival-departure", rate=1.0,
            pareto_alpha=1.5, pareto_xm=4.0,
            cap=96, doom_initial=True,
        ),
    )


def flash_crowd(seed: int = 2007) -> QueryConfig:
    """A burst of arrivals that then settles (M_finite)."""
    return QueryConfig(
        n=8, topology="er", aggregate="COUNT", seed=seed,
        query_at=80.0, horizon=400.0,
        churn=ChurnSpec(
            kind="finite", total_arrivals=40, rate=2.0, lifetime_mean=60.0,
        ),
    )


def storm_and_calm(seed: int = 2007) -> QueryConfig:
    """Alternating churn storms and calm windows (bursty dynamics)."""
    return QueryConfig(
        n=24, topology="er", aggregate="COUNT", seed=seed,
        query_at=10.0, horizon=400.0,
        churn=ChurnSpec(
            kind="phased", rate=3.0, storm_length=40.0, calm_length=60.0,
        ),
    )


#: Scenario registry: name -> factory taking an optional seed.
SCENARIOS: dict[str, Callable[..., QueryConfig]] = {
    "static-small": static_small,
    "static-deep": static_deep,
    "steady-churn": steady_churn,
    "p2p-heavy-tail": p2p_heavy_tail,
    "flash-crowd": flash_crowd,
    "storm-and-calm": storm_and_calm,
}


def make_scenario(name: str, seed: int = 2007) -> QueryConfig:
    """Build a preset by name; raises with the known names on typos."""
    try:
        factory = SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise ConfigurationError(
            f"unknown scenario {name!r}; known: {known}"
        ) from None
    return factory(seed=seed)
