"""Deprecated shim: the experiment runner now lives in the engine.

One function call = one fully checked simulation, exactly as before: a
:class:`QueryConfig` in, a :class:`QueryOutcome` out.  The implementation
moved to :mod:`repro.engine.trials` when the layered experiment engine
(:mod:`repro.engine`) was introduced; this module re-exports it so existing
imports — tests, examples, benchmarks — keep working, but importing it now
raises a :class:`DeprecationWarning`.  Import from :mod:`repro.api`
instead::

    from repro.api import QueryConfig, run_query, build_plan, run_plan
"""

from __future__ import annotations

import warnings

warnings.warn(
    "repro.bench.runner is deprecated; import QueryConfig/run_query and "
    "friends from repro.api instead",
    DeprecationWarning,
    stacklevel=2,
)

from repro.engine.trials import (  # noqa: E402,F401
    ChurnBuilder,
    GossipConfig,
    GossipOutcome,
    QueryConfig,
    QueryOutcome,
    build_population,
    reachable_now,
    run_gossip,
    run_query,
)

__all__ = [
    "ChurnBuilder",
    "GossipConfig",
    "GossipOutcome",
    "QueryConfig",
    "QueryOutcome",
    "build_population",
    "reachable_now",
    "run_gossip",
    "run_query",
]
