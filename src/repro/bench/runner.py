"""Compatibility shim: the experiment runner now lives in the engine.

One function call = one fully checked simulation, exactly as before: a
:class:`QueryConfig` in, a :class:`QueryOutcome` out.  The implementation
moved to :mod:`repro.engine.trials` when the layered experiment engine
(:mod:`repro.engine`) was introduced; this module re-exports it so existing
imports — tests, examples, benchmarks — keep working unchanged.

For anything beyond a single trial, prefer the engine::

    from repro.engine import build_plan, run_plan

    store = run_plan(build_plan("sweep", grid={"churn_rate": [0, 2.0]}))
"""

from __future__ import annotations

from repro.engine.trials import (  # noqa: F401
    ChurnBuilder,
    GossipConfig,
    GossipOutcome,
    QueryConfig,
    QueryOutcome,
    build_population,
    reachable_now,
    run_gossip,
    run_query,
)

__all__ = [
    "ChurnBuilder",
    "GossipConfig",
    "GossipOutcome",
    "QueryConfig",
    "QueryOutcome",
    "build_population",
    "reachable_now",
    "run_gossip",
    "run_query",
]
