"""Parameter sweeps with repeated, independently seeded trials."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generic, Sequence, TypeVar

from repro.analysis.stats import Summary, summarize
from repro.analysis.tables import render_table
from repro.sim.rng import iter_seeds

P = TypeVar("P")
R = TypeVar("R")


@dataclass
class SweepPoint(Generic[P, R]):
    """All trial outcomes at one parameter value."""

    parameter: P
    outcomes: list[R]

    def metric(self, extract: Callable[[R], float]) -> Summary:
        """Summarise one numeric metric across the trials."""
        return summarize([extract(outcome) for outcome in self.outcomes])

    def fraction(self, predicate: Callable[[R], bool]) -> float:
        """Fraction of trials satisfying ``predicate``."""
        if not self.outcomes:
            return 0.0
        return sum(1 for o in self.outcomes if predicate(o)) / len(self.outcomes)


def sweep(
    parameters: Sequence[P],
    trial: Callable[[P, int], R],
    trials: int = 5,
    root_seed: int = 2007,
) -> list[SweepPoint[P, R]]:
    """Run ``trial(parameter, seed)`` for every parameter × trial seed.

    Seeds are derived deterministically from ``root_seed`` and shared across
    parameters, so parameter effects are measured against common randomness
    (paired comparisons).
    """
    seeds = list(iter_seeds(root_seed, trials))
    return [
        SweepPoint(parameter, [trial(parameter, seed) for seed in seeds])
        for parameter in parameters
    ]


def sweep_table(
    points: Sequence[SweepPoint[P, R]],
    columns: dict[str, Callable[[SweepPoint[P, R]], Any]],
    parameter_name: str = "param",
    title: str | None = None,
) -> str:
    """Render a sweep as an aligned table, one row per parameter value."""
    headers = [parameter_name, *columns]
    rows = [
        [str(point.parameter), *[extract(point) for extract in columns.values()]]
        for point in points
    ]
    return render_table(headers, rows, title=title)
