"""Parameter sweeps with repeated, independently seeded trials.

This harness predates the layered experiment engine and keeps its
callable-based interface (``trial(parameter, seed)``), but execution now
goes through the engine's executor layer: pass an
:class:`~repro.engine.executor.TrialExecutor` to fan the trials out, or
leave the default for the classic in-process behaviour.  Declarative
sweeps (grids of config fields) should use :func:`repro.engine.build_plan`
directly — specs built there are picklable, which arbitrary trial
callables generally are not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generic, Sequence, TypeVar

from repro.analysis.stats import Summary, summarize
from repro.analysis.tables import render_table
from repro.engine.executor import SerialExecutor, TrialExecutor
from repro.sim.rng import iter_seeds

P = TypeVar("P")
R = TypeVar("R")


class _SweepCall(Generic[P, R]):
    """Adapter making ``trial(parameter, seed)`` a one-argument callable.

    Module-level (not a closure) so a picklable ``trial`` stays picklable
    end to end and can cross the parallel backend's process boundary.
    """

    def __init__(self, trial: Callable[[P, int], R]) -> None:
        self.trial = trial

    def __call__(self, item: tuple[P, int]) -> R:
        parameter, seed = item
        return self.trial(parameter, seed)


@dataclass
class SweepPoint(Generic[P, R]):
    """All trial outcomes at one parameter value."""

    parameter: P
    outcomes: list[R]

    def metric(self, extract: Callable[[R], float]) -> Summary:
        """Summarise one numeric metric across the trials."""
        return summarize([extract(outcome) for outcome in self.outcomes])

    def fraction(self, predicate: Callable[[R], bool]) -> float:
        """Fraction of trials satisfying ``predicate``."""
        if not self.outcomes:
            return 0.0
        return sum(1 for o in self.outcomes if predicate(o)) / len(self.outcomes)


def sweep(
    parameters: Sequence[P],
    trial: Callable[[P, int], R],
    trials: int = 5,
    root_seed: int = 2007,
    executor: TrialExecutor | None = None,
) -> list[SweepPoint[P, R]]:
    """Run ``trial(parameter, seed)`` for every parameter × trial seed.

    Seeds are derived deterministically from ``root_seed`` and shared across
    parameters, so parameter effects are measured against common randomness
    (paired comparisons).

    ``executor`` selects the engine backend; the default
    :class:`SerialExecutor` preserves the classic in-process call order.
    A parallel backend requires ``trial`` (and its outcomes) to be
    picklable.
    """
    seeds = list(iter_seeds(root_seed, trials))
    backend = executor if executor is not None else SerialExecutor()
    items = [(parameter, seed) for parameter in parameters for seed in seeds]
    outcomes = backend.map(_SweepCall(trial), items)
    points: list[SweepPoint[P, R]] = []
    for i, parameter in enumerate(parameters):
        chunk = outcomes[i * len(seeds):(i + 1) * len(seeds)]
        points.append(SweepPoint(parameter, list(chunk)))
    return points


def sweep_table(
    points: Sequence[SweepPoint[P, R]],
    columns: dict[str, Callable[[SweepPoint[P, R]], Any]],
    parameter_name: str = "param",
    title: str | None = None,
) -> str:
    """Render a sweep as an aligned table, one row per parameter value."""
    headers = [parameter_name, *columns]
    rows = [
        [str(point.parameter), *[extract(point) for extract in columns.values()]]
        for point in points
    ]
    return render_table(headers, rows, title=title)
