"""Benchmark harness: experiment runner and parameter sweeps."""

from repro.bench.runner import (
    GossipConfig,
    GossipOutcome,
    QueryConfig,
    QueryOutcome,
    build_population,
    reachable_now,
    run_gossip,
    run_query,
)
from repro.bench.dissemination_runner import (
    DisseminationConfig,
    DisseminationOutcome,
    run_dissemination,
)
from repro.bench.scenarios import SCENARIOS, make_scenario
from repro.bench.sweep import SweepPoint, sweep, sweep_table

__all__ = [
    "DisseminationConfig",
    "DisseminationOutcome",
    "GossipConfig",
    "GossipOutcome",
    "QueryConfig",
    "QueryOutcome",
    "SCENARIOS",
    "SweepPoint",
    "build_population",
    "make_scenario",
    "reachable_now",
    "run_dissemination",
    "run_gossip",
    "run_query",
    "sweep",
    "sweep_table",
]
