"""Benchmark harness: preset scenarios and the callable-based sweep.

The trial runners re-exported here live in :mod:`repro.engine.trials`;
new code should import them from :mod:`repro.api`.  The submodules
``repro.bench.runner`` and ``repro.bench.dissemination_runner`` are
deprecated shims kept for old import sites — importing *them* warns,
importing this package does not.
"""

from repro.engine.trials import (
    DisseminationConfig,
    DisseminationOutcome,
    GossipConfig,
    GossipOutcome,
    QueryConfig,
    QueryOutcome,
    build_population,
    reachable_now,
    run_dissemination,
    run_gossip,
    run_query,
)
from repro.bench.scenarios import SCENARIOS, make_scenario
from repro.bench.sweep import SweepPoint, sweep, sweep_table

__all__ = [
    "DisseminationConfig",
    "DisseminationOutcome",
    "GossipConfig",
    "GossipOutcome",
    "QueryConfig",
    "QueryOutcome",
    "SCENARIOS",
    "SweepPoint",
    "build_population",
    "make_scenario",
    "reachable_now",
    "run_dissemination",
    "run_gossip",
    "run_query",
    "sweep",
    "sweep_table",
]
