"""Communication-topology substrate: graphs, generators and attachment rules."""

from repro.topology.partition import PartitionFault, isolate, random_bisection
from repro.topology.dynamic import (
    EdgeRewiringChurn,
    edge_timeline,
    interval_connectivity,
    snapshot,
)
from repro.topology.attachment import (
    AttachmentRule,
    ChainAttachment,
    DegreeProportionalAttachment,
    UniformAttachment,
)
from repro.topology.generators import (
    FAMILIES,
    barabasi_albert,
    binary_tree,
    complete_graph,
    erdos_renyi,
    geometric,
    grid,
    line,
    make,
    random_regular,
    ring,
    star,
    torus,
)
from repro.topology.graph import Topology

__all__ = [
    "AttachmentRule",
    "EdgeRewiringChurn",
    "edge_timeline",
    "interval_connectivity",
    "snapshot",
    "ChainAttachment",
    "DegreeProportionalAttachment",
    "FAMILIES",
    "PartitionFault",
    "Topology",
    "UniformAttachment",
    "barabasi_albert",
    "binary_tree",
    "complete_graph",
    "erdos_renyi",
    "geometric",
    "grid",
    "isolate",
    "line",
    "make",
    "random_bisection",
    "random_regular",
    "ring",
    "star",
    "torus",
]
