"""Attachment rules: how a joining entity picks its first neighbors.

Under churn, the overlay is maintained by the join procedure.  A rule sees
only the information a real bootstrap service would have — the ids of the
currently present processes and, for degree-aware rules, their degrees — and
returns the attachment points for the newcomer.
"""

from __future__ import annotations

import abc
import random
from typing import TYPE_CHECKING

from repro.sim.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.network import Network


class AttachmentRule(abc.ABC):
    """Chooses neighbors for a joining process."""

    @abc.abstractmethod
    def choose(self, network: "Network", rng: random.Random) -> list[int]:
        """Return the attachment points among the present processes."""


class UniformAttachment(AttachmentRule):
    """Attach to ``k`` present processes chosen uniformly at random.

    With ``k >= 2`` the overlay stays well connected under moderate churn;
    ``k = 1`` grows a tree (fragile: one departure can split it).
    """

    def __init__(self, k: int = 2) -> None:
        if k < 1:
            raise ConfigurationError(f"attachment degree must be >= 1, got {k}")
        self.k = k

    def choose(self, network: "Network", rng: random.Random) -> list[int]:
        present = sorted(network.present())
        if not present:
            return []
        count = min(self.k, len(present))
        return rng.sample(present, count)

    def __repr__(self) -> str:
        return f"UniformAttachment(k={self.k})"


class DegreeProportionalAttachment(AttachmentRule):
    """Preferential attachment: pick ``k`` neighbors with probability
    proportional to (degree + 1); produces heavy-tailed overlays."""

    def __init__(self, k: int = 2) -> None:
        if k < 1:
            raise ConfigurationError(f"attachment degree must be >= 1, got {k}")
        self.k = k

    def choose(self, network: "Network", rng: random.Random) -> list[int]:
        present = sorted(network.present())
        if not present:
            return []
        weights = [len(network.neighbors(pid)) + 1 for pid in present]
        chosen: list[int] = []
        candidates = list(present)
        cand_weights = list(weights)
        for _ in range(min(self.k, len(present))):
            total = sum(cand_weights)
            pick = rng.random() * total
            acc = 0.0
            index = 0
            for index, weight in enumerate(cand_weights):
                acc += weight
                if pick < acc:
                    break
            chosen.append(candidates.pop(index))
            cand_weights.pop(index)
        return chosen

    def __repr__(self) -> str:
        return f"DegreeProportionalAttachment(k={self.k})"


class ChainAttachment(AttachmentRule):
    """Attach to the most recently joined process only.

    This is the adversarially bad rule: it grows a path, stretching the
    network diameter by one per arrival — the engine behind the E6
    impossibility construction.
    """

    def choose(self, network: "Network", rng: random.Random) -> list[int]:
        present = network.present()
        if not present:
            return []
        # Ids are allocated monotonically, so the newest process has the
        # largest id.
        return [max(present)]

    def __repr__(self) -> str:
        return "ChainAttachment()"
