"""Dynamic-edge models: the geography dimension made time-varying.

Entity churn changes *who* is in the system; edge churn changes *who can
talk to whom* among a fixed population.  The two are orthogonal stresses on
a protocol, and the paper's geography dimension covers both: neighbor
knowledge is only ever knowledge of the *current* neighbors.

:class:`EdgeRewiringChurn` rewires the overlay at a configurable rate while
(optionally) preserving connectivity; :func:`interval_connectivity` checks
the classical T-interval-connectivity property over a recorded trace.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING

from repro.sim.errors import ConfigurationError, SimulationError
from repro.sim.events import PRIORITY_MEMBERSHIP
from repro.sim.trace import TraceLog
from repro.topology.graph import Topology

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.scheduler import Simulator

#: Populations up to this size take the seed code path on every rewiring
#: tick: enumerate all pairs and draw the absent edge from the sorted
#: enumeration.  That path makes exactly the same RNG draws as the seed
#: implementation, so every existing experiment (n ≤ 128) stays
#: byte-identical.  Larger populations rejection-sample the absent edge
#: instead — O(edges) per tick rather than O(n²).
LEGACY_PAIR_ENUMERATION_LIMIT = 256

#: Rejection-sampling attempts for an absent pair on large populations.
#: Overlays at that scale are sparse, so acceptance is near-certain; on a
#: pathologically dense graph the tick may skip the addition.
_ABSENT_SAMPLE_TRIES = 64


class EdgeRewiringChurn:
    """Rewires the communication graph at Poisson rate ``rate``.

    Each event removes one uniformly random existing edge and adds one
    uniformly random absent edge among the present processes.  With
    ``preserve_connectivity`` (the default) a removal that would disconnect
    the graph is skipped (the addition still happens), so the overlay stays
    usable while its shape drifts — the regime in which a wave's route can
    vanish mid-flight without anyone leaving.
    """

    def __init__(self, rate: float, preserve_connectivity: bool = True) -> None:
        if rate < 0:
            raise ConfigurationError(f"rewiring rate must be >= 0, got {rate}")
        self.rate = rate
        self.preserve_connectivity = preserve_connectivity
        self._sim: "Simulator | None" = None
        self._stop_at: float | None = None
        self.rewires = 0
        self.skipped_removals = 0

    def install(self, sim: "Simulator", stop_at: float | None = None) -> None:
        """Attach to ``sim`` and start rewiring."""
        if self._sim is not None:
            raise SimulationError("edge churn is already installed")
        self._sim = sim
        self._stop_at = stop_at
        if self.rate > 0:
            self._schedule_next()

    @property
    def sim(self) -> "Simulator":
        if self._sim is None:
            raise SimulationError("edge churn is not installed")
        return self._sim

    @property
    def rng(self) -> random.Random:
        return self.sim.rng_for("edge-churn")

    def _schedule_next(self) -> None:
        gap = self.rng.expovariate(self.rate)
        self.sim.schedule(
            gap, self._rewire, priority=PRIORITY_MEMBERSHIP, label="edge-churn"
        )

    def _rewire(self) -> None:
        if self._stop_at is not None and self.sim.now >= self._stop_at:
            return
        self._do_rewire()
        self._schedule_next()

    def _do_rewire(self) -> None:
        network = self.sim.network
        if network.population() < 3:
            return
        if network.population() > LEGACY_PAIR_ENUMERATION_LIMIT:
            self._do_rewire_sampled(network)
            return
        present = sorted(network.present())
        edges = sorted(network.edges())
        all_pairs = {
            (a, b) for i, a in enumerate(present) for b in present[i + 1:]
        }
        absent = sorted(all_pairs - set(edges))
        if edges:
            a, b = self.rng.choice(edges)
            if self.preserve_connectivity and self._is_bridge(network, a, b):
                self.skipped_removals += 1
            else:
                network.remove_edge(a, b)
        if absent:
            a, b = self.rng.choice(absent)
            network.add_edge(a, b)
        self.rewires += 1

    def _do_rewire_sampled(self, network) -> None:
        """Large-population tick: no all-pairs enumeration.

        The removed edge still comes from the sorted edge list (O(E log E),
        E ≪ n² on real overlays); the added edge is rejection-sampled
        uniformly from the absent pairs.
        """
        rng = self.rng
        edges = sorted(network.edges())
        if edges:
            a, b = rng.choice(edges)
            if self.preserve_connectivity and self._is_bridge(network, a, b):
                self.skipped_removals += 1
            else:
                network.remove_edge(a, b)
        for _ in range(_ABSENT_SAMPLE_TRIES):
            a = network.sample_present(rng)
            b = network.sample_present(rng, exclude=a)
            if a is None or b is None:
                break
            if b < a:
                a, b = b, a
            if not network.has_edge(a, b):
                network.add_edge(a, b)
                break
        self.rewires += 1

    @staticmethod
    def _is_bridge(network, a: int, b: int) -> bool:
        """Would removing (a, b) disconnect a from b?"""
        seen = {a}
        frontier = [a]
        while frontier:
            node = frontier.pop()
            for nbr in network.neighbors(node):
                if node == a and nbr == b:
                    continue  # pretend the edge is gone
                if nbr not in seen:
                    if nbr == b:
                        return False
                    seen.add(nbr)
                    frontier.append(nbr)
        return True

    def __repr__(self) -> str:
        return f"EdgeRewiringChurn(rate={self.rate})"


def edge_timeline(log: TraceLog) -> list[tuple[float, str, tuple[int, int]]]:
    """Extract the (time, 'up'|'down', edge) sequence from a trace.

    Only edges changed through :meth:`Network.add_edge` / ``remove_edge``
    appear; join-time attachments are reconstructed from join degrees by
    :func:`graph_at` instead.
    """
    timeline = []
    for event in log:
        if event.kind == "edge_up":
            timeline.append((event.time, "up", (event["a"], event["b"])))
        elif event.kind == "edge_down":
            timeline.append((event.time, "down", (event["a"], event["b"])))
    return timeline


def interval_connectivity(
    snapshots: list[Topology], window: int
) -> bool:
    """Check T-interval connectivity over a sequence of graph snapshots.

    The sequence is T-interval connected if every ``window`` consecutive
    snapshots share a connected spanning subgraph over their common nodes.
    ``window = 1`` degenerates to "each snapshot is connected".
    """
    if window < 1:
        raise ConfigurationError(f"window must be >= 1, got {window}")
    if not snapshots:
        return True
    for start in range(0, max(1, len(snapshots) - window + 1)):
        group = snapshots[start:start + window]
        common_nodes = set(group[0].nodes())
        for snap in group[1:]:
            common_nodes &= set(snap.nodes())
        if len(common_nodes) <= 1:
            continue
        common_edges = set(group[0].edges())
        for snap in group[1:]:
            common_edges &= set(snap.edges())
        core = Topology(nodes=common_nodes)
        for a, b in common_edges:
            if a in common_nodes and b in common_nodes:
                core.add_edge(a, b)
        if not core.is_connected():
            return False
    return True


def snapshot(network) -> Topology:
    """Capture the current communication graph as a Topology."""
    topo = Topology(nodes=network.present())
    for a, b in network.edges():
        topo.add_edge(a, b)
    return topo
