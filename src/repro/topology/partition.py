"""Network partitions: the geography dimension's sharpest failure.

A partition splits the population into groups and severs every edge
between them; healing restores the severed edges whose endpoints survived.
During the partition each side is a legal dynamic system of its own — a
querier can only ever be complete with respect to its side, which is why
the specification checker scopes obligations to reachability.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Callable, Sequence

from repro.sim.errors import ConfigurationError, SimulationError
from repro.sim.events import PRIORITY_MEMBERSHIP

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.network import Network
    from repro.sim.scheduler import Simulator

#: Maps the present pids to a group label; edges between different labels
#: are severed.
GroupAssignment = Callable[[Sequence[int], random.Random], dict[int, int]]


def random_bisection(fraction: float = 0.5) -> GroupAssignment:
    """Assign roughly ``fraction`` of the population to group 0."""
    if not 0 < fraction < 1:
        raise ConfigurationError(f"fraction must be in (0, 1), got {fraction}")

    def assign(present: Sequence[int], rng: random.Random) -> dict[int, int]:
        pids = list(present)
        rng.shuffle(pids)
        cut = max(1, min(len(pids) - 1, round(len(pids) * fraction)))
        return {pid: (0 if i < cut else 1) for i, pid in enumerate(pids)}

    return assign


def isolate(pids: Sequence[int]) -> GroupAssignment:
    """Cut the given pids (group 1) away from everyone else (group 0)."""
    island = set(pids)

    def assign(present: Sequence[int], rng: random.Random) -> dict[int, int]:
        return {pid: (1 if pid in island else 0) for pid in present}

    return assign


class PartitionFault:
    """Severs cross-group edges at ``at``; optionally heals at ``heal_at``.

    While the partition holds, *new* cross-group edges (from joins or
    rewiring) are also severed on a fast watchdog, so the sides stay
    disjoint even under churn.

    Args:
        at: partition time.
        heal_at: healing time (``None`` = never heals).
        groups: group-assignment policy (default: random bisection).
        watchdog_period: how often new cross edges are swept while split.
    """

    def __init__(
        self,
        at: float,
        heal_at: float | None = None,
        groups: GroupAssignment | None = None,
        watchdog_period: float = 1.0,
    ) -> None:
        if heal_at is not None and heal_at <= at:
            raise ConfigurationError(
                f"heal time {heal_at} must follow partition time {at}"
            )
        if watchdog_period <= 0:
            raise ConfigurationError(
                f"watchdog period must be > 0, got {watchdog_period}"
            )
        self.at = at
        self.heal_at = heal_at
        self.groups = groups or random_bisection()
        self.watchdog_period = watchdog_period
        self._sim: "Simulator | None" = None
        self._assignment: dict[int, int] = {}
        self._severed: list[tuple[int, int]] = []
        self.active = False
        # Incremental watchdog state: instead of rescanning every present
        # pid and every edge each tick (O(n + E)), the watchdog subscribes
        # to the network's topology journal and tracks only what it has
        # not yet resolved — unadopted newcomers and edges with at least
        # one unassigned endpoint.
        self._journal_token: int | None = None
        self._pending_adoption: set[int] = set()
        self._watch_edges: set[tuple[int, int]] = set()

    def install(self, sim: "Simulator") -> None:
        if self._sim is not None:
            raise SimulationError("partition fault is already installed")
        self._sim = sim
        sim.at(self.at, self._split, priority=PRIORITY_MEMBERSHIP,
               label="partition:split")
        if self.heal_at is not None:
            sim.at(self.heal_at, self._heal, priority=PRIORITY_MEMBERSHIP,
                   label="partition:heal")

    @property
    def sim(self) -> "Simulator":
        if self._sim is None:
            raise SimulationError("partition fault is not installed")
        return self._sim

    def side_of(self, pid: int) -> int | None:
        """Group label of ``pid`` (``None`` if it joined after the split)."""
        return self._assignment.get(pid)

    def group_members(self, label: int) -> frozenset[int]:
        """Present members assigned to ``label``."""
        network = self.sim.network
        return frozenset(
            pid for pid, group in self._assignment.items()
            if group == label and network.is_present(pid)
        )

    # ------------------------------------------------------------------
    # Fault actions
    # ------------------------------------------------------------------

    def _split(self) -> None:
        network = self.sim.network
        present = sorted(network.present())
        if len(present) < 2:
            return
        rng = self.sim.rng_for("partition")
        self._assignment = self.groups(present, rng)
        self.active = True
        self._journal_token = network.open_topology_journal()
        self._pending_adoption = {
            pid for pid in network.present() if pid not in self._assignment
        }
        for a, b in sorted(network.edges()):
            side_a = self._assignment.get(a)
            side_b = self._assignment.get(b)
            if side_a is None or side_b is None:
                # An endpoint has no side yet (custom assignments may skip
                # pids); re-examine once it gets adopted.
                self._watch_edges.add((a, b))
            elif side_a != side_b:
                network.remove_edge(a, b)
                self._severed.append((a, b))
        self.sim.trace.record(
            self.sim.now, "partition_split",
            sides=tuple(
                sorted(self._assignment.values()).count(label)
                for label in sorted(set(self._assignment.values()))
            ),
        )
        self.sim.schedule(self.watchdog_period, self._watchdog,
                          label="partition:watchdog")

    def _watchdog(self) -> None:
        """Incremental sweep: adopt newcomers, sever new cross edges.

        Cost is O(changes since the last tick + unresolved backlog), not
        O(population + edges).  Assignments never change once made, so an
        edge between two assigned pids needs examining exactly once; only
        edges waiting on an adoption stay on the watch list.  The adoption
        rule and the per-tick ordering (sorted pids, then sorted edges)
        match the original full-scan implementation exactly.
        """
        if not self.active:
            return
        network = self.sim.network
        if self._journal_token is not None:
            for kind, a, b in network.drain_topology_journal(self._journal_token):
                if kind == "join":
                    if a not in self._assignment:
                        self._pending_adoption.add(a)
                else:
                    self._watch_edges.add((a, b))
        # Adopt newcomers into the side they attached to (their first
        # surviving neighbor's side); ambiguous ones retry next tick.
        for pid in sorted(self._pending_adoption):
            if not network.is_present(pid):
                self._pending_adoption.discard(pid)
                continue
            sides = {
                self._assignment[nbr]
                for nbr in network.neighbors(pid)
                if nbr in self._assignment
            }
            if len(sides) == 1:
                self._assignment[pid] = next(iter(sides))
                self._pending_adoption.discard(pid)
        # Sweep the watched edges.
        for a, b in sorted(self._watch_edges):
            if not network.has_edge(a, b):
                self._watch_edges.discard((a, b))
                continue
            side_a = self._assignment.get(a)
            side_b = self._assignment.get(b)
            if side_a is None or side_b is None:
                continue  # keep watching until both endpoints take sides
            self._watch_edges.discard((a, b))
            if side_a != side_b:
                network.remove_edge(a, b)
                self._severed.append((a, b))
        self.sim.schedule(self.watchdog_period, self._watchdog,
                          label="partition:watchdog")

    def _heal(self) -> None:
        if not self.active:
            return
        self.active = False
        network = self.sim.network
        if self._journal_token is not None:
            network.close_topology_journal(self._journal_token)
            self._journal_token = None
        self._pending_adoption.clear()
        self._watch_edges.clear()
        restored = 0
        for a, b in self._severed:
            if network.is_present(a) and network.is_present(b):
                network.add_edge(a, b)
                restored += 1
        self.sim.trace.record(self.sim.now, "partition_heal", restored=restored)
        self._severed.clear()
