"""A small undirected-graph type for communication topologies.

The simulator only needs adjacency; this class keeps that explicit and adds
the handful of structural queries experiments use (connectivity, diameter,
components).  :mod:`networkx` interop is provided for the generators that
lean on it.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Iterator

import networkx as nx

from repro.sim.errors import TopologyError


class Topology:
    """An undirected simple graph over integer node ids."""

    def __init__(self, nodes: Iterable[int] = (), edges: Iterable[tuple[int, int]] = ()) -> None:
        self._adj: dict[int, set[int]] = {node: set() for node in nodes}
        for a, b in edges:
            self.add_edge(a, b)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add_node(self, node: int) -> None:
        self._adj.setdefault(node, set())

    def add_edge(self, a: int, b: int) -> None:
        if a == b:
            raise TopologyError(f"self-loop on node {a}")
        self._adj.setdefault(a, set()).add(b)
        self._adj.setdefault(b, set()).add(a)

    def remove_edge(self, a: int, b: int) -> None:
        self._adj.get(a, set()).discard(b)
        self._adj.get(b, set()).discard(a)

    def remove_node(self, node: int) -> None:
        for other in self._adj.pop(node, set()):
            self._adj[other].discard(node)

    def relabel(self, mapping: dict[int, int]) -> "Topology":
        """Return a copy with node ids replaced via ``mapping``."""
        missing = set(self._adj) - set(mapping)
        if missing:
            raise TopologyError(f"relabel mapping misses nodes {sorted(missing)}")
        return Topology(
            nodes=(mapping[n] for n in self._adj),
            edges=((mapping[a], mapping[b]) for a, b in self.edges()),
        )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    def nodes(self) -> list[int]:
        return sorted(self._adj)

    def __len__(self) -> int:
        return len(self._adj)

    def __contains__(self, node: int) -> bool:
        return node in self._adj

    def __iter__(self) -> Iterator[int]:
        return iter(sorted(self._adj))

    def neighbors(self, node: int) -> frozenset[int]:
        try:
            return frozenset(self._adj[node])
        except KeyError:
            raise TopologyError(f"node {node} not in topology") from None

    def degree(self, node: int) -> int:
        return len(self.neighbors(node))

    def edges(self) -> list[tuple[int, int]]:
        """All edges as sorted pairs, deterministically ordered."""
        return sorted(
            {(min(a, b), max(a, b)) for a, nbrs in self._adj.items() for b in nbrs}
        )

    def edge_count(self) -> int:
        return len(self.edges())

    def has_edge(self, a: int, b: int) -> bool:
        return b in self._adj.get(a, set())

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    def bfs_distances(self, source: int) -> dict[int, int]:
        """Hop distances from ``source`` to every reachable node."""
        if source not in self._adj:
            raise TopologyError(f"node {source} not in topology")
        dist = {source: 0}
        frontier = deque([source])
        while frontier:
            node = frontier.popleft()
            for nbr in self._adj[node]:
                if nbr not in dist:
                    dist[nbr] = dist[node] + 1
                    frontier.append(nbr)
        return dist

    def reachable_from(self, source: int) -> frozenset[int]:
        """Connected component containing ``source``."""
        return frozenset(self.bfs_distances(source))

    def is_connected(self) -> bool:
        if not self._adj:
            return True
        first = next(iter(self._adj))
        return len(self.reachable_from(first)) == len(self._adj)

    def components(self) -> list[frozenset[int]]:
        """Connected components, largest first (ties by smallest member)."""
        seen: set[int] = set()
        comps: list[frozenset[int]] = []
        for node in sorted(self._adj):
            if node in seen:
                continue
            comp = self.reachable_from(node)
            seen |= comp
            comps.append(comp)
        return sorted(comps, key=lambda c: (-len(c), min(c)))

    def eccentricity(self, node: int) -> int:
        """Greatest hop distance from ``node`` to any reachable node."""
        return max(self.bfs_distances(node).values())

    def diameter(self) -> int:
        """Largest eccentricity.

        Raises:
            TopologyError: if the graph is disconnected (the diameter is
                infinite) or empty.
        """
        if not self._adj:
            raise TopologyError("diameter of an empty topology is undefined")
        if not self.is_connected():
            raise TopologyError("diameter of a disconnected topology is infinite")
        return max(self.eccentricity(node) for node in self._adj)

    def average_degree(self) -> float:
        if not self._adj:
            return 0.0
        return sum(len(nbrs) for nbrs in self._adj.values()) / len(self._adj)

    # ------------------------------------------------------------------
    # Interop
    # ------------------------------------------------------------------

    def to_networkx(self) -> "nx.Graph":
        graph = nx.Graph()
        graph.add_nodes_from(self._adj)
        graph.add_edges_from(self.edges())
        return graph

    @classmethod
    def from_networkx(cls, graph: "nx.Graph") -> "Topology":
        return cls(nodes=graph.nodes(), edges=graph.edges())

    def copy(self) -> "Topology":
        return Topology(nodes=self._adj, edges=self.edges())

    def __repr__(self) -> str:
        return f"Topology(n={len(self)}, m={self.edge_count()})"
