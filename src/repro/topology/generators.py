"""Topology generators.

Each generator returns a :class:`~repro.topology.graph.Topology` over node
ids ``0 .. n-1`` and is deterministic given its ``rng``.  The families cover
the regimes the experiments sweep: constant-diameter (complete, star),
low-diameter expanders (random regular, Erdős–Rényi), lattice topologies
with large diameter (ring, torus, line) and heavy-tailed degree
(Barabási–Albert).
"""

from __future__ import annotations

import random

import networkx as nx

from repro.sim.errors import ConfigurationError
from repro.topology.graph import Topology


def _require_positive(n: int) -> None:
    if n < 1:
        raise ConfigurationError(f"need n >= 1 node, got {n}")


def complete_graph(n: int) -> Topology:
    """Every pair of nodes connected."""
    _require_positive(n)
    return Topology(
        nodes=range(n),
        edges=((i, j) for i in range(n) for j in range(i + 1, n)),
    )


def line(n: int) -> Topology:
    """A path 0 - 1 - ... - (n-1); diameter n - 1 (worst case for waves)."""
    _require_positive(n)
    return Topology(nodes=range(n), edges=((i, i + 1) for i in range(n - 1)))


def ring(n: int) -> Topology:
    """A cycle; diameter ⌊n/2⌋."""
    _require_positive(n)
    if n == 1:
        return Topology(nodes=[0])
    if n == 2:
        return Topology(nodes=range(2), edges=[(0, 1)])
    edges = [(i, (i + 1) % n) for i in range(n)]
    return Topology(nodes=range(n), edges=edges)


def star(n: int) -> Topology:
    """Node 0 connected to everyone; diameter 2."""
    _require_positive(n)
    return Topology(nodes=range(n), edges=((0, i) for i in range(1, n)))


def torus(rows: int, cols: int) -> Topology:
    """A 2-D grid with wraparound; diameter ⌊rows/2⌋ + ⌊cols/2⌋."""
    if rows < 1 or cols < 1:
        raise ConfigurationError(f"torus needs rows, cols >= 1, got {rows}x{cols}")
    topo = Topology(nodes=range(rows * cols))

    def node(r: int, c: int) -> int:
        return (r % rows) * cols + (c % cols)

    for r in range(rows):
        for c in range(cols):
            if cols > 1:
                topo.add_edge(node(r, c), node(r, c + 1))
            if rows > 1:
                topo.add_edge(node(r, c), node(r + 1, c))
    return topo


def grid(rows: int, cols: int) -> Topology:
    """A 2-D grid without wraparound."""
    if rows < 1 or cols < 1:
        raise ConfigurationError(f"grid needs rows, cols >= 1, got {rows}x{cols}")
    topo = Topology(nodes=range(rows * cols))
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                topo.add_edge(r * cols + c, r * cols + c + 1)
            if r + 1 < rows:
                topo.add_edge(r * cols + c, (r + 1) * cols + c)
    return topo


def binary_tree(n: int) -> Topology:
    """A complete binary tree shape over n nodes; diameter O(log n)."""
    _require_positive(n)
    return Topology(
        nodes=range(n),
        edges=((child, (child - 1) // 2) for child in range(1, n)),
    )


def erdos_renyi(n: int, p: float, rng: random.Random, connected: bool = True) -> Topology:
    """G(n, p) random graph.

    With ``connected=True`` (the default) isolated components are stitched
    to the giant component with one extra edge each, so the result is usable
    as a communication topology without changing its statistics much.
    """
    _require_positive(n)
    if not 0 <= p <= 1:
        raise ConfigurationError(f"edge probability must be in [0, 1], got {p}")
    topo = Topology(nodes=range(n))
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < p:
                topo.add_edge(i, j)
    if connected and n > 1:
        comps = topo.components()
        anchor = min(comps[0])
        for comp in comps[1:]:
            topo.add_edge(anchor, rng.choice(sorted(comp)))
    return topo


def random_regular(n: int, d: int, rng: random.Random) -> Topology:
    """A random d-regular graph (low diameter, uniform degree)."""
    _require_positive(n)
    if d >= n or (n * d) % 2 != 0:
        raise ConfigurationError(
            f"random regular graph needs d < n and n*d even, got n={n}, d={d}"
        )
    graph = nx.random_regular_graph(d, n, seed=rng.randint(0, 2**31 - 1))
    return Topology.from_networkx(graph)


def geometric(n: int, radius: float, rng: random.Random, connected: bool = True) -> Topology:
    """A random geometric graph on the unit square (sensor-network shape)."""
    _require_positive(n)
    if radius <= 0:
        raise ConfigurationError(f"radius must be > 0, got {radius}")
    graph = nx.random_geometric_graph(n, radius, seed=rng.randint(0, 2**31 - 1))
    topo = Topology.from_networkx(graph)
    if connected and n > 1:
        comps = topo.components()
        anchor = min(comps[0])
        for comp in comps[1:]:
            topo.add_edge(anchor, min(comp))
    return topo


def barabasi_albert(n: int, m: int, rng: random.Random) -> Topology:
    """Preferential-attachment graph (heavy-tailed degrees, tiny diameter)."""
    _require_positive(n)
    if m < 1 or m >= n:
        raise ConfigurationError(f"barabasi_albert needs 1 <= m < n, got m={m}, n={n}")
    graph = nx.barabasi_albert_graph(n, m, seed=rng.randint(0, 2**31 - 1))
    return Topology.from_networkx(graph)


#: Named topology families used by the benchmark sweeps; every callable
#: takes ``(n, rng)`` and returns a connected Topology.
FAMILIES = {
    "complete": lambda n, rng: complete_graph(n),
    "line": lambda n, rng: line(n),
    "ring": lambda n, rng: ring(n),
    "star": lambda n, rng: star(n),
    "torus": lambda n, rng: _square_torus(n),
    "tree": lambda n, rng: binary_tree(n),
    "er": lambda n, rng: erdos_renyi(n, min(1.0, 2.0 * _log2(n) / n), rng),
    "regular": lambda n, rng: random_regular(n, _regular_degree(n), rng),
    "ba": lambda n, rng: barabasi_albert(n, min(2, n - 1), rng),
}


def _log2(n: int) -> float:
    import math

    return max(1.0, math.log2(max(2, n)))


def _regular_degree(n: int) -> int:
    d = min(4, n - 1)
    if (n * d) % 2 != 0:
        d = max(1, d - 1)
    return d


def _square_torus(n: int) -> Topology:
    import math

    side = max(1, int(math.isqrt(n)))
    rows = side
    cols = (n + side - 1) // side
    topo = torus(rows, cols)
    # Trim to exactly n nodes while keeping connectivity: drop the highest
    # ids and stitch any dangling fragments back.
    for node in range(rows * cols - 1, n - 1, -1):
        topo.remove_node(node)
    if len(topo) > 1:
        comps = topo.components()
        anchor = min(comps[0])
        for comp in comps[1:]:
            topo.add_edge(anchor, min(comp))
    return topo


def make(family: str, n: int, rng: random.Random) -> Topology:
    """Build a named family member; raises with the known names on typos."""
    try:
        builder = FAMILIES[family]
    except KeyError:
        known = ", ".join(sorted(FAMILIES))
        raise ConfigurationError(f"unknown topology family {family!r}; known: {known}") from None
    return builder(n, rng)
