"""Time-varying graphs and journeys.

The formal backbone of the geography dimension when it varies over time.
A *journey* is a time-respecting path: a sequence of hops each of which
traverses an edge while that edge (and both its endpoints) exist.  A wave
can only inform the querier about a process if a journey from the querier
reaches it within the query window — so journey reachability is the exact
*upper bound* on what any protocol can achieve in a given run, and the
tool that turns "the query was incomplete" into "…because no journey
existed" (or "…although one did — protocol inefficiency").

The dynamic graph is reconstructed from a simulation trace: join events
carry the newcomer's attachment edges, ``edge_up``/``edge_down`` events
record rewiring, and a leave event ends every edge at the departed process.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Iterator

from repro.core.runs import FOREVER, Interval
from repro.sim import trace as tr
from repro.sim.trace import TraceLog
from repro.topology.graph import Topology


def _edge_key(a: int, b: int) -> tuple[int, int]:
    return (min(a, b), max(a, b))


class DynamicGraph:
    """Edge-presence intervals reconstructed from a trace."""

    def __init__(self, presence: dict[tuple[int, int], list[Interval]]) -> None:
        self._presence = presence
        self._incident: dict[int, set[tuple[int, int]]] = {}
        for edge in presence:
            self._incident.setdefault(edge[0], set()).add(edge)
            self._incident.setdefault(edge[1], set()).add(edge)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_trace(cls, log: TraceLog) -> "DynamicGraph":
        """Rebuild the edge timeline from membership and edge events."""
        open_edges: dict[tuple[int, int], float] = {}
        presence: dict[tuple[int, int], list[Interval]] = {}
        present: set[int] = set()

        def open_edge(a: int, b: int, when: float) -> None:
            key = _edge_key(a, b)
            if key not in open_edges:
                open_edges[key] = when

        def close_edge(key: tuple[int, int], when: float) -> None:
            started = open_edges.pop(key, None)
            if started is not None:
                presence.setdefault(key, []).append(Interval(started, when))

        for event in log:
            if event.kind == tr.JOIN:
                entity = event["entity"]
                present.add(entity)
                for neighbor in event.get("neighbors", ()):
                    if neighbor in present:
                        open_edge(entity, neighbor, event.time)
            elif event.kind == tr.LEAVE:
                entity = event["entity"]
                present.discard(entity)
                for key in [k for k in open_edges if entity in k]:
                    close_edge(key, event.time)
            elif event.kind == "edge_up":
                open_edge(event["a"], event["b"], event.time)
            elif event.kind == "edge_down":
                close_edge(_edge_key(event["a"], event["b"]), event.time)
        for key, started in list(open_edges.items()):
            presence.setdefault(key, []).append(Interval(started, FOREVER))
        return cls(presence)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def edges(self) -> list[tuple[int, int]]:
        """Every edge that ever existed."""
        return sorted(self._presence)

    def presence(self, a: int, b: int) -> list[Interval]:
        """Presence intervals of the edge (a, b)."""
        return list(self._presence.get(_edge_key(a, b), ()))

    def edge_present(self, a: int, b: int, t: float) -> bool:
        return any(iv.contains(t) for iv in self.presence(a, b))

    def edges_at(self, t: float) -> list[tuple[int, int]]:
        return [
            edge
            for edge, intervals in self._presence.items()
            if any(iv.contains(t) for iv in intervals)
        ]

    def snapshot(self, t: float) -> Topology:
        """The static graph at instant ``t`` (nodes = edge endpoints)."""
        topo = Topology()
        for a, b in self.edges_at(t):
            topo.add_edge(a, b)
        return topo

    def incident(self, node: int) -> Iterator[tuple[int, int]]:
        return iter(sorted(self._incident.get(node, ())))

    # ------------------------------------------------------------------
    # Journeys
    # ------------------------------------------------------------------

    def earliest_arrivals(
        self,
        source: int,
        start: float,
        deadline: float = FOREVER,
        hop_time: float = 0.0,
    ) -> dict[int, float]:
        """Earliest-arrival times of journeys from ``(source, start)``.

        A hop over edge ``(u, v)`` departing at time ``d`` requires the edge
        to be continuously present over ``[d, d + hop_time]`` and arrives at
        ``d + hop_time``.  Departure may wait for an edge to appear.  Only
        arrivals at or before ``deadline`` count.

        Returns a map ``{node: earliest arrival time}`` (the source maps to
        ``start``).
        """
        if hop_time < 0:
            raise ValueError(f"hop time must be >= 0, got {hop_time}")
        best: dict[int, float] = {source: start}
        heap: list[tuple[float, int]] = [(start, source)]
        while heap:
            arrival, node = heapq.heappop(heap)
            if arrival > best.get(node, FOREVER):
                continue  # stale entry
            for edge in self.incident(node):
                other = edge[0] if edge[1] == node else edge[1]
                for interval in self._presence[edge]:
                    departure = max(arrival, interval.join)
                    arrives = departure + hop_time
                    if arrives > deadline:
                        continue
                    # The edge must survive the whole hop.  ``covers`` is
                    # strict at the right end (half-open interval).
                    if not interval.covers(departure, arrives):
                        continue
                    if arrives < best.get(other, FOREVER):
                        best[other] = arrives
                        heapq.heappush(heap, (arrives, other))
                    break  # later intervals cannot improve on this one
        return best

    def journey_exists(
        self,
        source: int,
        target: int,
        start: float,
        deadline: float,
        hop_time: float = 0.0,
    ) -> bool:
        """Is there a journey from ``(source, start)`` to ``target`` by
        ``deadline``?"""
        arrivals = self.earliest_arrivals(source, start, deadline, hop_time)
        return arrivals.get(target, FOREVER) <= deadline

    def reachable(
        self,
        source: int,
        start: float,
        deadline: float,
        hop_time: float = 0.0,
    ) -> frozenset[int]:
        """Every node journey-reachable from ``(source, start)`` by
        ``deadline`` (the information-flow upper bound for any protocol)."""
        arrivals = self.earliest_arrivals(source, start, deadline, hop_time)
        return frozenset(
            node for node, when in arrivals.items() if when <= deadline
        )


@dataclass
class JourneyAudit:
    """Cross-check of a query verdict against journey reachability.

    ``unexplained_misses`` are stable-core members the protocol missed even
    though a journey existed — protocol inefficiency rather than topological
    impossibility.  ``impossible`` members had no journey: *no* protocol
    could have counted them.
    """

    reachable: frozenset[int]
    impossible: frozenset[int] = field(default_factory=frozenset)
    unexplained_misses: frozenset[int] = field(default_factory=frozenset)


def audit_query_misses(
    log: TraceLog,
    querier: int,
    issue_time: float,
    return_time: float,
    missing: frozenset[int],
    hop_time: float = 0.0,
) -> JourneyAudit:
    """Classify a query's missed stable-core members.

    ``hop_time`` should be a lower bound on the per-hop message delay: with
    a lower bound the reachable set over-approximates what any protocol
    could do, so members outside it were *provably* uncountable.
    """
    graph = DynamicGraph.from_trace(log)
    reachable = graph.reachable(querier, issue_time, return_time, hop_time)
    impossible = frozenset(m for m in missing if m not in reachable)
    unexplained = missing - impossible
    return JourneyAudit(
        reachable=reachable,
        impossible=impossible,
        unexplained_misses=unexplained,
    )
