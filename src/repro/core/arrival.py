"""The entity (arrival) dimension of dynamic distributed systems.

The paper's first orthogonal dimension: *how the set of entities evolves*.
Following the infinite-arrival taxonomy the dimension is a strict hierarchy
of run-set classes:

    M_static(n)  ⊂  M_finite  ⊂  M_inf_bounded(c)  ⊂  M_inf_finite  ⊂  M_inf_unbounded

Each class here is both a *label* (used by the solvability table) and an
*executable predicate*: :meth:`ArrivalClass.admits` checks whether an
observed finite run is consistent with the class.  Because any simulated run
is finite, "infinitely many arrivals" can never be observed directly;
``admits`` therefore checks the *constraints* the class imposes (e.g. the
concurrency bound), while consistency with a declared generative churn model
is checked by the churn modules themselves.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.core.runs import Run


class ArrivalClass(abc.ABC):
    """A class of runs along the entity dimension.

    Subclasses carry a ``rank`` placing them in the containment hierarchy:
    a class with a smaller rank is contained in every class with a larger
    rank (after parameter widening).
    """

    #: Position in the containment chain (smaller = more constrained).
    rank: int = -1
    #: Short name used in tables (``M_static`` etc.).
    name: str = ""

    @abc.abstractmethod
    def admits(self, run: Run) -> bool:
        """Is the observed ``run`` consistent with this class?"""

    def __le__(self, other: "ArrivalClass") -> bool:
        """Containment: every run of ``self`` is a run of ``other``."""
        if not isinstance(other, ArrivalClass):
            return NotImplemented
        if self.rank != other.rank:
            return self.rank < other.rank
        return self._le_same_rank(other)

    def _le_same_rank(self, other: "ArrivalClass") -> bool:
        """Parameter-level containment within the same rank (override)."""
        return self == other

    def __lt__(self, other: "ArrivalClass") -> bool:
        return self <= other and self != other


@dataclass(frozen=True)
class StaticArrival(ArrivalClass):
    """``M_static(n)``: the same ``n`` entities, present forever.

    The classical static-system assumption: membership is known, fixed, and
    every entity is up for the whole run.
    """

    n: int
    rank = 0
    name = "M_static"

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError(f"a static system needs n >= 1, got {self.n}")

    def admits(self, run: Run) -> bool:
        if len(run) != self.n:
            return False
        return all(
            run.interval(e).join == 0.0 and run.interval(e).leave == float("inf")
            for e in run.entities()
        )

    def _le_same_rank(self, other: ArrivalClass) -> bool:
        # M_static(n) and M_static(m) are incomparable for n != m: their
        # run sets are disjoint.
        return isinstance(other, StaticArrival) and other.n == self.n

    def __str__(self) -> str:
        return f"M_static({self.n})"


@dataclass(frozen=True)
class FiniteArrival(ArrivalClass):
    """``M_finite``: finitely many entities ever enter; churn eventually stops.

    Args:
        max_total: optional bound on the total number of entities (``None``
            means "finite but unknown").
    """

    max_total: int | None = None
    rank = 1
    name = "M_finite"

    def admits(self, run: Run) -> bool:
        if self.max_total is not None and len(run) > self.max_total:
            return False
        # Any finite run has finitely many arrivals; the distinguishing
        # observable constraint is that the run must become quiescent
        # strictly before the horizon (arrivals cease).
        return run.quiescent_from() < run.horizon

    def _le_same_rank(self, other: ArrivalClass) -> bool:
        if not isinstance(other, FiniteArrival):
            return False
        if other.max_total is None:
            return True
        return self.max_total is not None and self.max_total <= other.max_total

    def __str__(self) -> str:
        if self.max_total is None:
            return "M_finite"
        return f"M_finite(≤{self.max_total})"


@dataclass(frozen=True)
class InfiniteArrivalBounded(ArrivalClass):
    """``M_inf_bounded(c)``: unboundedly many arrivals over time, but at any
    instant at most ``c`` entities are concurrently present."""

    c: int
    rank = 2
    name = "M_inf_bounded"

    def __post_init__(self) -> None:
        if self.c < 1:
            raise ValueError(f"concurrency bound must be >= 1, got {self.c}")

    def admits(self, run: Run) -> bool:
        return run.max_concurrency() <= self.c

    def _le_same_rank(self, other: ArrivalClass) -> bool:
        return isinstance(other, InfiniteArrivalBounded) and self.c <= other.c

    def __str__(self) -> str:
        return f"M_inf_bounded({self.c})"


@dataclass(frozen=True)
class InfiniteArrivalFinite(ArrivalClass):
    """``M_inf_finite``: in each run concurrency stays finite, but no bound
    holds across runs.

    Every finite observed run trivially has finite concurrency, so
    ``admits`` is always true; the class differs from
    :class:`InfiniteArrivalBounded` in what a *protocol may assume*: no
    constant ``c`` is available to it.
    """

    rank = 3
    name = "M_inf_finite"

    def admits(self, run: Run) -> bool:
        return True

    def __str__(self) -> str:
        return "M_inf_finite"


@dataclass(frozen=True)
class InfiniteArrivalUnbounded(ArrivalClass):
    """``M_inf_unbounded``: no constraint at all — concurrency may grow
    without bound even within a single run."""

    rank = 4
    name = "M_inf_unbounded"

    def admits(self, run: Run) -> bool:
        return True

    def __str__(self) -> str:
        return "M_inf_unbounded"


def arrival_chain(n: int = 16, c: int = 64) -> list[ArrivalClass]:
    """A representative ascending chain through the hierarchy."""
    return [
        StaticArrival(n),
        FiniteArrival(),
        InfiniteArrivalBounded(c),
        InfiniteArrivalFinite(),
        InfiniteArrivalUnbounded(),
    ]


def classify_run(run: Run, n: int | None = None) -> ArrivalClass:
    """Return the most constrained arrival class an observed run fits.

    This is the *observational* classification: a finite run cannot witness
    infinitely many arrivals, so the answer is the tightest class whose
    constraints the run satisfies.
    """
    if n is not None and StaticArrival(n).admits(run):
        return StaticArrival(n)
    if len(run) > 0 and StaticArrival(len(run)).admits(run):
        return StaticArrival(len(run))
    if FiniteArrival().admits(run):
        return FiniteArrival()
    return InfiniteArrivalBounded(run.max_concurrency())
