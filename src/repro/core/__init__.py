"""The paper's contribution, executable.

Two orthogonal dimensions define the space of dynamic distributed systems:

* the **entity dimension** (:mod:`repro.core.arrival`) — how the population
  evolves, from static through finite arrival to infinite arrival with
  unbounded concurrency;
* the **geography dimension** (:mod:`repro.core.geography`) — what each
  entity can know, from complete membership down to pure neighbor knowledge.

A :class:`~repro.core.classes.SystemClass` is a point of the product space.
:mod:`repro.core.runs` gives the run formalism the classes quantify over,
:mod:`repro.core.spec` makes the canonical one-time query problem checkable
against simulation traces, and :mod:`repro.core.solvability` encodes the
paper's solvability landscape as an executable decision table.
"""

from repro.core.aggregates import AGGREGATES, AVG, COUNT, MAX, MIN, SET, SUM, Aggregate, by_name
from repro.core.arrival import (
    ArrivalClass,
    FiniteArrival,
    InfiniteArrivalBounded,
    InfiniteArrivalFinite,
    InfiniteArrivalUnbounded,
    StaticArrival,
    arrival_chain,
    classify_run,
)
from repro.core.classes import SystemClass, standard_lattice
from repro.core.dissemination_spec import (
    BCAST_DELIVERED,
    BCAST_ISSUED,
    BroadcastRecord,
    DisseminationSpec,
    DisseminationVerdict,
    extract_broadcasts,
)
from repro.core.geography import (
    KnowledgeClass,
    complete,
    knowledge_chain,
    known_diameter,
    known_size,
    local,
)
from repro.core.journeys import DynamicGraph, JourneyAudit, audit_query_misses
from repro.core.runs import FOREVER, Interval, Run
from repro.core.solvability import (
    Solvable,
    SolvabilityResult,
    one_time_query_solvability,
    solvability_matrix,
)
from repro.core.spec import (
    OneTimeQuerySpec,
    QUERY_ISSUED,
    QUERY_RETURNED,
    QueryRecord,
    Verdict,
    extract_queries,
)

__all__ = [
    "AGGREGATES",
    "AVG",
    "Aggregate",
    "ArrivalClass",
    "BCAST_DELIVERED",
    "BCAST_ISSUED",
    "BroadcastRecord",
    "COUNT",
    "DisseminationSpec",
    "DisseminationVerdict",
    "DynamicGraph",
    "JourneyAudit",
    "FOREVER",
    "FiniteArrival",
    "InfiniteArrivalBounded",
    "InfiniteArrivalFinite",
    "InfiniteArrivalUnbounded",
    "Interval",
    "KnowledgeClass",
    "MAX",
    "MIN",
    "OneTimeQuerySpec",
    "QUERY_ISSUED",
    "QUERY_RETURNED",
    "QueryRecord",
    "Run",
    "SET",
    "SUM",
    "Solvable",
    "SolvabilityResult",
    "StaticArrival",
    "SystemClass",
    "Verdict",
    "arrival_chain",
    "audit_query_misses",
    "extract_broadcasts",
    "by_name",
    "classify_run",
    "complete",
    "extract_queries",
    "knowledge_chain",
    "known_diameter",
    "known_size",
    "local",
    "one_time_query_solvability",
    "solvability_matrix",
    "standard_lattice",
]
