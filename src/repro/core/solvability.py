"""Executable solvability results for the one-time query problem.

This module encodes, as a decision procedure over :class:`SystemClass`, the
claims the paper's framework yields for its canonical data-aggregation
problem.  Each answer carries the argument sketch, so the table doubles as
documentation; the benchmark suite (E1–E10) validates every entry
empirically by simulation.

The results, in brief:

* With complete knowledge (``G_complete``) the problem is solvable whenever
  churn leaves a non-empty stable core to talk to — in particular always in
  static and finite-arrival systems (direct request/collect).
* With a known diameter bound (``G_known_diameter``) a wave (flooding/echo)
  protocol with TTL = D terminates and reaches the whole stable core, so the
  problem is solvable in static systems, in finite-arrival systems, and —
  *conditionally* — under infinite arrival with bounded concurrency: the
  wave must outrun topology change (slow-enough churn / long-enough
  sessions).  This is the quantitative crossover explored by E4/E5.
* With only a population bound (``G_known_size``) termination can be forced
  (stop after counting N responses or timing out against N) but
  completeness is only conditional as well.
* With pure local knowledge (``G_local``): solvable only if churn eventually
  ceases (finite arrival) — any flooding protocol stabilises after
  quiescence; under infinite arrival no protocol can pick a safe
  termination point, and with unbounded concurrency an adversary grows the
  system faster than any wave explores it (E6).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.core.arrival import (
    ArrivalClass,
    FiniteArrival,
    InfiniteArrivalBounded,
    InfiniteArrivalFinite,
    InfiniteArrivalUnbounded,
    StaticArrival,
)
from repro.core.classes import SystemClass


class Solvable(Enum):
    """Three-valued solvability answer."""

    YES = "solvable"
    CONDITIONAL = "conditionally solvable"
    NO = "not solvable"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class SolvabilityResult:
    """A solvability answer with its justification.

    Attributes:
        answer: YES / CONDITIONAL / NO.
        argument: one-paragraph sketch of why.
        condition: for CONDITIONAL answers, the quantitative condition.
        witness_protocol: the protocol (module path) that achieves the
            positive answer, when one exists.
        experiment: the benchmark id validating this entry.
    """

    answer: Solvable
    argument: str
    condition: str = ""
    witness_protocol: str = ""
    experiment: str = ""

    @property
    def solvable(self) -> bool:
        return self.answer is Solvable.YES


def _arrival_is_static(arrival: ArrivalClass) -> bool:
    return isinstance(arrival, StaticArrival)


def _arrival_is_finite(arrival: ArrivalClass) -> bool:
    return isinstance(arrival, (StaticArrival, FiniteArrival))


def one_time_query_solvability(system: SystemClass) -> SolvabilityResult:
    """Decide solvability of the one-time query problem in ``system``.

    The decision follows the product structure: fix the knowledge class and
    walk up the arrival hierarchy until the problem stops being solvable.
    """
    arrival = system.arrival
    knowledge = system.knowledge

    if knowledge.knows_members:
        return _solvability_complete(arrival)
    if knowledge.diameter_bound is not None:
        return _solvability_known_diameter(arrival)
    if knowledge.size_bound is not None:
        return _solvability_known_size(arrival)
    return _solvability_local(arrival)


def _solvability_complete(arrival: ArrivalClass) -> SolvabilityResult:
    if _arrival_is_finite(arrival):
        return SolvabilityResult(
            Solvable.YES,
            "The querier knows the membership: it requests every member's "
            "value directly and collects responses; in a static or "
            "finite-arrival system the membership eventually stops changing "
            "so the collected set stabilises.",
            witness_protocol="repro.protocols.request_collect",
            experiment="E1",
        )
    if isinstance(arrival, InfiniteArrivalBounded):
        return SolvabilityResult(
            Solvable.CONDITIONAL,
            "Membership is known at each instant but keeps changing; the "
            "request/collect exchange succeeds for every stable-core member "
            "provided sessions outlast one round-trip.",
            condition="minimum session length > query round-trip time",
            witness_protocol="repro.protocols.request_collect",
            experiment="E10",
        )
    return SolvabilityResult(
        Solvable.CONDITIONAL,
        "Even with complete knowledge, unbounded concurrency means the "
        "membership snapshot the querier acts on can be outdated arbitrarily "
        "fast; completeness holds only for runs whose churn is slower than "
        "the round-trip.",
        condition="churn slower than one round-trip",
        witness_protocol="repro.protocols.request_collect",
        experiment="E10",
    )


def _solvability_known_diameter(arrival: ArrivalClass) -> SolvabilityResult:
    if _arrival_is_static(arrival):
        return SolvabilityResult(
            Solvable.YES,
            "A flooding/echo wave with TTL = D visits every process within D "
            "hops and the echo aggregates all values back; the TTL gives a "
            "deterministic termination point.",
            witness_protocol="repro.protocols.one_time_query",
            experiment="E2",
        )
    if isinstance(arrival, FiniteArrival):
        return SolvabilityResult(
            Solvable.YES,
            "After arrivals cease the network is static; a wave launched (or "
            "re-launched) after quiescence behaves as in the static case. "
            "Before quiescence completeness over the stable core still holds "
            "because stable members never move out of wave range.",
            witness_protocol="repro.protocols.one_time_query",
            experiment="E3",
        )
    if isinstance(arrival, InfiniteArrivalBounded):
        return SolvabilityResult(
            Solvable.CONDITIONAL,
            "The wave terminates (TTL bound) but completeness requires that "
            "the route between the querier and every stable-core member is "
            "never severed faster than the wave traverses it: the crossover "
            "between wave latency and session length / churn rate.",
            condition="wave latency (≈ D hops) < time for churn to disconnect "
            "a stable member",
            witness_protocol="repro.protocols.one_time_query",
            experiment="E4/E5",
        )
    return SolvabilityResult(
        Solvable.NO,
        "With unbounded concurrency the diameter bound itself is forfeit: "
        "arrivals can stretch distances beyond any advertised D while the "
        "query is in flight, so either the TTL truncates the wave (losing "
        "stable members) or termination is lost.",
        experiment="E6",
    )


def _solvability_known_size(arrival: ArrivalClass) -> SolvabilityResult:
    if _arrival_is_static(arrival):
        return SolvabilityResult(
            Solvable.YES,
            "A population bound N bounds the diameter by N - 1, so a wave "
            "with TTL = N - 1 terminates and is complete (at higher message "
            "cost than with a tight diameter bound).",
            witness_protocol="repro.protocols.one_time_query",
            experiment="E7",
        )
    if isinstance(arrival, FiniteArrival):
        return SolvabilityResult(
            Solvable.YES,
            "As in the static case once churn ceases; the size bound keeps "
            "holding because finite arrival cannot exceed it after "
            "quiescence if it held before.",
            witness_protocol="repro.protocols.one_time_query",
            experiment="E7",
        )
    if isinstance(arrival, InfiniteArrivalBounded):
        return SolvabilityResult(
            Solvable.CONDITIONAL,
            "The concurrency bound c caps the instantaneous diameter, so "
            "TTL = c - 1 gives termination; completeness again hinges on the "
            "wave outrunning churn.",
            condition="wave latency < churn disconnection time",
            witness_protocol="repro.protocols.one_time_query",
            experiment="E7",
        )
    return SolvabilityResult(
        Solvable.NO,
        "No finite size bound exists to exploit (the class violates every "
        "advertised bound in some run), so this knowledge class degenerates "
        "to G_local, where the problem is unsolvable under infinite arrival.",
        experiment="E6",
    )


def _solvability_local(arrival: ArrivalClass) -> SolvabilityResult:
    if _arrival_is_static(arrival):
        return SolvabilityResult(
            Solvable.CONDITIONAL,
            "Closed-loop protocols (flooding with echo acknowledgments over "
            "reliable channels) terminate and are complete without any "
            "global parameter. Open-loop protocols — one-shot waves that "
            "must pick their reach up front, the paper's synchronous-rounds "
            "framing — provably need a diameter bound: for every fixed TTL "
            "there is a longer line on which a stable member sits just out "
            "of reach (the E7 diagonalisation).",
            condition="closed-loop operation: reliable channels plus "
            "neighbor-leave notifications; open-loop protocols require a "
            "known diameter bound",
            witness_protocol="repro.protocols.one_time_query (echo mode)",
            experiment="E7",
        )
    if isinstance(arrival, FiniteArrival):
        return SolvabilityResult(
            Solvable.CONDITIONAL,
            "Eventually churn ceases and repeated flooding stabilises on the "
            "final population: the problem is solvable in the eventual sense "
            "(the returned result is correct from some point on) though no "
            "process ever knows stabilisation has happened.",
            condition="eventual (non-terminating confirmation) semantics",
            witness_protocol="repro.protocols.one_time_query (quiescence mode)",
            experiment="E3",
        )
    if isinstance(arrival, (InfiniteArrivalBounded, InfiniteArrivalFinite)):
        return SolvabilityResult(
            Solvable.NO,
            "Infinitely many arrivals with only neighbor knowledge: any "
            "stopping rule is defeated by a run that keeps the system "
            "quiet until the rule fires and reveals a stable member just "
            "out of explored range afterwards.",
            experiment="E6",
        )
    return SolvabilityResult(
        Solvable.NO,
        "The hardest point of the space: unbounded concurrency and no "
        "global knowledge. The adversary grows a path faster than any wave "
        "explores it, so termination and stable-core completeness cannot "
        "both hold.",
        experiment="E6",
    )


def solvability_matrix(
    classes: list[SystemClass],
) -> dict[SystemClass, SolvabilityResult]:
    """Decide the whole table at once (used by E10 and the docs)."""
    return {system: one_time_query_solvability(system) for system in classes}
