"""System classes: the product of the two dimensions.

The paper's central proposal is that "dynamic distributed system" is not one
model but a *space* of models indexed by (entity dimension, geography
dimension).  A :class:`SystemClass` is one point of that space; the product
partial order captures "at least as dynamic / at most as knowledgeable".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.arrival import (
    ArrivalClass,
    FiniteArrival,
    InfiniteArrivalBounded,
    InfiniteArrivalFinite,
    InfiniteArrivalUnbounded,
    StaticArrival,
)
from repro.core.geography import (
    KnowledgeClass,
    complete,
    known_diameter,
    known_size,
    local,
)


@dataclass(frozen=True)
class SystemClass:
    """One point of the definition space: (arrival class, knowledge class)."""

    arrival: ArrivalClass
    knowledge: KnowledgeClass

    @property
    def name(self) -> str:
        return f"({self.arrival}, {self.knowledge})"

    def __str__(self) -> str:
        return self.name

    def is_harder_than(self, other: "SystemClass") -> bool:
        """``self`` is at least as hard as ``other``: its arrival class
        contains the other's runs and it knows no more.

        Any impossibility in ``other`` therefore transfers to ``self``, and
        any algorithm for ``self`` works in ``other``.
        """
        return other.arrival <= self.arrival and self.knowledge <= other.knowledge

    def describe(self) -> str:
        """One-paragraph human description of the model point."""
        arrival_text = {
            "M_static": "a fixed, known population present for the whole run",
            "M_finite": "finitely many entities ever; churn eventually ceases",
            "M_inf_bounded": "unboundedly many entities over time with a "
            "bound on how many are concurrently present",
            "M_inf_finite": "unboundedly many entities; concurrency finite "
            "in each run but unbounded across runs",
            "M_inf_unbounded": "no constraint on arrivals or concurrency",
        }[self.arrival.name]
        knowledge_text = {
            "G_complete": "every entity knows the complete membership",
            "G_known_diameter": "entities know only their neighbors plus a "
            "bound on the network diameter",
            "G_known_size": "entities know only their neighbors plus a bound "
            "on the concurrent population",
            "G_local": "entities know only their neighbors — no global "
            "parameter is ever available",
        }[self.knowledge.name]
        return f"Entity dimension: {arrival_text}. Geography dimension: {knowledge_text}."


def standard_lattice(
    n: int = 16, c: int = 64, diameter: int = 8, size_bound: int = 64
) -> list[SystemClass]:
    """The 5 × 4 = 20 representative points used by the solvability matrix
    experiment (E10), ordered from easiest to hardest arrival class."""
    arrivals: list[ArrivalClass] = [
        StaticArrival(n),
        FiniteArrival(),
        InfiniteArrivalBounded(c),
        InfiniteArrivalFinite(),
        InfiniteArrivalUnbounded(),
    ]
    knowledges = [complete(), known_diameter(diameter), known_size(size_bound), local()]
    return [SystemClass(a, k) for a in arrivals for k in knowledges]
