"""Temporal-connectivity classes: refining the geography dimension.

The paper's geography dimension says what an entity *knows*; orthogonally,
the communication graph's behaviour *over time* determines what information
flow is possible at all.  This module classifies observed runs along the
standard temporal-connectivity hierarchy:

    always connected  ⊂  T-interval connected  ⊂  recurrently connected
                                               ⊂  eventually connected

* **always connected** — every snapshot is connected;
* **T-interval connected** — every window of ``T`` consecutive snapshots
  shares a connected spanning subgraph (Kuhn–Lynch–Oshman); ``T = 1`` is
  "always connected" with per-snapshot freedom;
* **recurrently connected** — disconnections occur but every one heals:
  between any two times there is a connected snapshot;
* **eventually connected** — connected from some point on.

Classification is *observational*, over a finite list of snapshots sampled
from a simulation; like the arrival classes, the verdicts state consistency
with the class over the observation window.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Sequence

from repro.core.journeys import DynamicGraph
from repro.sim.errors import ConfigurationError
from repro.topology.dynamic import interval_connectivity
from repro.topology.graph import Topology


class ConnectivityClass(Enum):
    """The temporal-connectivity hierarchy, strongest first."""

    ALWAYS = "always connected"
    T_INTERVAL = "T-interval connected"
    RECURRENT = "recurrently connected"
    EVENTUAL = "eventually connected"
    DISCONNECTED = "not eventually connected"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class ConnectivityVerdict:
    """Result of classifying a snapshot sequence."""

    klass: ConnectivityClass
    #: Largest T for which the sequence is T-interval connected (0 if none).
    max_interval: int
    connected_fraction: float
    first_connected_suffix: int | None

    def __str__(self) -> str:
        return (
            f"{self.klass} (max T={self.max_interval}, "
            f"{self.connected_fraction:.0%} of snapshots connected)"
        )


def _is_connected_over(snapshot: Topology, nodes: frozenset[int]) -> bool:
    """Connectivity of ``snapshot`` restricted to ``nodes``."""
    if len(nodes) <= 1:
        return True
    missing = nodes - set(snapshot.nodes())
    if missing:
        return False
    start = min(nodes)
    return nodes <= snapshot.reachable_from(start)


def classify_snapshots(snapshots: Sequence[Topology]) -> ConnectivityVerdict:
    """Classify a snapshot sequence along the temporal hierarchy."""
    if not snapshots:
        raise ConfigurationError("cannot classify an empty snapshot sequence")
    connected = [snap.is_connected() and len(snap) > 0 for snap in snapshots]
    fraction = sum(connected) / len(connected)

    # Largest T-interval connectivity (0 when even T=1 fails).
    max_interval = 0
    for window in range(1, len(snapshots) + 1):
        if interval_connectivity(list(snapshots), window):
            max_interval = window
        else:
            break

    # First index from which every snapshot is connected.
    suffix_start: int | None = None
    for i in range(len(connected), 0, -1):
        if connected[i - 1]:
            suffix_start = i - 1
        else:
            break
    if suffix_start is None and all(connected):
        suffix_start = 0

    if all(connected):
        # ALWAYS implies the weaker classes; the stronger structural fact
        # (shared subgraphs across windows) is reported via max_interval.
        return ConnectivityVerdict(
            ConnectivityClass.ALWAYS, max_interval, fraction, 0
        )

    if suffix_start is not None and suffix_start < len(connected):
        # Disconnections happened but the run ends connected.
        healed_everywhere = _every_gap_heals(connected)
        if healed_everywhere:
            klass = ConnectivityClass.RECURRENT
        else:
            klass = ConnectivityClass.EVENTUAL
        return ConnectivityVerdict(klass, max_interval, fraction, suffix_start)

    if any(connected):
        if _every_gap_heals(connected):
            return ConnectivityVerdict(
                ConnectivityClass.RECURRENT, max_interval, fraction, None
            )
    return ConnectivityVerdict(
        ConnectivityClass.DISCONNECTED, max_interval, fraction, None
    )


def _every_gap_heals(connected: Sequence[bool]) -> bool:
    """Every disconnected stretch is followed by a connected snapshot."""
    for i, ok in enumerate(connected):
        if not ok and not any(connected[i + 1:]):
            return False
    return True


def snapshots_from_trace(
    log, times: Sequence[float]
) -> list[Topology]:
    """Sample communication-graph snapshots from a trace at given times.

    Isolated (edge-less) present entities are included as isolated nodes so
    the connectivity verdicts account for them.
    """
    if not times:
        raise ConfigurationError("need at least one sample time")
    graph = DynamicGraph.from_trace(log)
    from repro.core.runs import Run

    run = Run.from_trace(log, horizon=max(times))
    result = []
    for t in sorted(times):
        snap = graph.snapshot(t)
        for entity in run.present_at(t):
            snap.add_node(entity)
        result.append(snap)
    return result


def classify_trace(log, times: Sequence[float]) -> ConnectivityVerdict:
    """Convenience: sample snapshots from a trace and classify them."""
    return classify_snapshots(snapshots_from_trace(log, times))
