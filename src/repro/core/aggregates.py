"""Aggregate functions for the one-time query problem.

The canonical problem asks for an aggregate ``f`` over the values held by
system members.  Aggregates are modelled as commutative monoids over
*multisets of contributions* so protocols can combine partial results in any
order; duplicate-sensitivity is recorded explicitly because it determines
which protocols can compute an aggregate correctly (gossip protocols, for
instance, can only handle duplicate-insensitive aggregates or must carry
contributor identities).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable


@dataclass(frozen=True)
class Aggregate:
    """A named aggregate function.

    Attributes:
        name: canonical name (``COUNT``, ``SUM``, ...).
        of: computes the aggregate of an iterable of values.
        duplicate_sensitive: whether counting a value twice changes the
            result (True for COUNT/SUM/AVG, False for MIN/MAX/SET).
    """

    name: str
    of: Callable[[Iterable[Any]], Any]
    duplicate_sensitive: bool

    def __str__(self) -> str:
        return self.name


def _avg(values: Iterable[Any]) -> float:
    items = list(values)
    if not items:
        raise ValueError("AVG of an empty collection is undefined")
    return sum(items) / len(items)


def _set(values: Iterable[Any]) -> frozenset[Any]:
    return frozenset(values)


def _min(values: Iterable[Any]) -> Any:
    items = list(values)
    if not items:
        raise ValueError("MIN of an empty collection is undefined")
    return min(items)


def _max(values: Iterable[Any]) -> Any:
    items = list(values)
    if not items:
        raise ValueError("MAX of an empty collection is undefined")
    return max(items)


COUNT = Aggregate("COUNT", lambda values: sum(1 for _ in values), True)
SUM = Aggregate("SUM", lambda values: sum(values), True)
AVG = Aggregate("AVG", _avg, True)
MIN = Aggregate("MIN", _min, False)
MAX = Aggregate("MAX", _max, False)
SET = Aggregate("SET", _set, False)

#: All standard aggregates, by name.
AGGREGATES: dict[str, Aggregate] = {
    agg.name: agg for agg in (COUNT, SUM, AVG, MIN, MAX, SET)
}


def by_name(name: str) -> Aggregate:
    """Look up a standard aggregate; raises ``KeyError`` with guidance."""
    try:
        return AGGREGATES[name.upper()]
    except KeyError:
        known = ", ".join(sorted(AGGREGATES))
        raise KeyError(f"unknown aggregate {name!r}; known: {known}") from None
