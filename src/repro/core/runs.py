"""Runs: the formal object the paper's definitions quantify over.

A *run* records, for every entity that ever existed, the interval during
which it was present in the system.  All of the paper's classes (the entity
dimension) are sets of runs, and all solvability claims are statements about
what protocols can achieve over every run of a class.  Here a run is built
from a simulation :class:`~repro.sim.trace.TraceLog` observed up to a finite
horizon.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

from repro.sim import trace as tr
from repro.sim.trace import TraceLog

#: Stand-in for "still present at the end of the observation window".
FOREVER = math.inf


@dataclass(frozen=True)
class Interval:
    """A half-open presence interval ``[join, leave)``.

    ``leave`` is :data:`FOREVER` when the entity never left within the
    observation horizon.
    """

    join: float
    leave: float = FOREVER

    def __post_init__(self) -> None:
        if self.leave < self.join:
            raise ValueError(f"leave {self.leave} before join {self.join}")

    def contains(self, t: float) -> bool:
        """Is the entity present at instant ``t``?"""
        return self.join <= t < self.leave

    def covers(self, t0: float, t1: float) -> bool:
        """Is the entity present throughout ``[t0, t1]``?"""
        return self.join <= t0 and t1 < self.leave

    def overlaps(self, t0: float, t1: float) -> bool:
        """Is the entity present at some instant of ``[t0, t1]``?"""
        return self.join <= t1 and t0 < self.leave

    @property
    def length(self) -> float:
        return self.leave - self.join


class Run:
    """Presence intervals of every entity, over a finite horizon.

    Args:
        intervals: mapping from entity id to its presence interval.
        horizon: the end of the observation window.  Properties such as
            "finite arrival" are judged *relative to the horizon*: a
            simulation can only ever exhibit finitely many arrivals, so the
            class predicates in :mod:`repro.core.arrival` test consistency
            with the declared generative model, not the model itself.
    """

    def __init__(self, intervals: dict[int, Interval], horizon: float) -> None:
        self._intervals = dict(intervals)
        self.horizon = float(horizon)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_trace(cls, log: TraceLog, horizon: float | None = None) -> "Run":
        """Build a run from the join/leave events of a trace.

        Raises:
            ValueError: on malformed membership sequences (leave without
                join, double join — entity ids are never reused).
        """
        joins: dict[int, float] = {}
        intervals: dict[int, Interval] = {}
        last_time = 0.0
        for event in log.membership_events():
            entity = event["entity"]
            last_time = max(last_time, event.time)
            if event.kind == tr.JOIN:
                if entity in joins or entity in intervals:
                    raise ValueError(f"entity {entity} joined twice")
                joins[entity] = event.time
            else:  # LEAVE
                if entity not in joins:
                    raise ValueError(f"entity {entity} left without joining")
                intervals[entity] = Interval(joins.pop(entity), event.time)
        for entity, join_time in joins.items():
            intervals[entity] = Interval(join_time, FOREVER)
        if horizon is None:
            horizon = last_time
        return cls(intervals, horizon)

    @classmethod
    def static(cls, n: int, horizon: float) -> "Run":
        """A run of ``n`` entities present from time 0 forever."""
        return cls({pid: Interval(0.0) for pid in range(n)}, horizon)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    def entities(self) -> frozenset[int]:
        """Every entity that was ever present."""
        return frozenset(self._intervals)

    def interval(self, entity: int) -> Interval:
        """Presence interval of ``entity``."""
        return self._intervals[entity]

    def __len__(self) -> int:
        return len(self._intervals)

    def __contains__(self, entity: int) -> bool:
        return entity in self._intervals

    # ------------------------------------------------------------------
    # Membership queries
    # ------------------------------------------------------------------

    def present_at(self, t: float) -> frozenset[int]:
        """Entities present at instant ``t``."""
        return frozenset(
            e for e, iv in self._intervals.items() if iv.contains(t)
        )

    def stable_core(self, t0: float, t1: float) -> frozenset[int]:
        """Entities present throughout ``[t0, t1]``.

        This is the set the one-time query problem's validity clause
        quantifies over: values of stable-core members *must* be accounted
        for; transients may or may not be.
        """
        if t1 < t0:
            raise ValueError(f"empty window [{t0}, {t1}]")
        return frozenset(
            e for e, iv in self._intervals.items() if iv.covers(t0, t1)
        )

    def transients(self, t0: float, t1: float) -> frozenset[int]:
        """Entities present at some, but not every, instant of ``[t0, t1]``."""
        return frozenset(
            e
            for e, iv in self._intervals.items()
            if iv.overlaps(t0, t1) and not iv.covers(t0, t1)
        )

    # ------------------------------------------------------------------
    # Dynamics measures
    # ------------------------------------------------------------------

    def concurrency(self, t: float) -> int:
        """Number of entities present at instant ``t``."""
        return len(self.present_at(t))

    def max_concurrency(self) -> int:
        """Peak number of simultaneously present entities.

        Computed by sweeping the sorted join/leave instants.
        """
        deltas: list[tuple[float, int, int]] = []
        for iv in self._intervals.values():
            # Leaves sort before joins at the same instant because the
            # interval is half-open: [join, leave).
            deltas.append((iv.join, 1, +1))
            if iv.leave is not FOREVER and not math.isinf(iv.leave):
                deltas.append((iv.leave, 0, -1))
        deltas.sort(key=lambda d: (d[0], d[1]))
        peak = count = 0
        for _, _, delta in deltas:
            count += delta
            peak = max(peak, count)
        return peak

    def arrival_count(self, up_to: float | None = None) -> int:
        """Number of joins in ``[0, up_to]`` (default: whole horizon)."""
        limit = self.horizon if up_to is None else up_to
        return sum(1 for iv in self._intervals.values() if iv.join <= limit)

    def last_arrival_time(self) -> float:
        """Time of the latest join, or 0.0 if the run is empty."""
        if not self._intervals:
            return 0.0
        return max(iv.join for iv in self._intervals.values())

    def quiescent_from(self) -> float:
        """Earliest time after which membership never changes again."""
        latest = 0.0
        for iv in self._intervals.values():
            latest = max(latest, iv.join)
            if not math.isinf(iv.leave):
                latest = max(latest, iv.leave)
        return latest

    def churn_events(self, t0: float, t1: float) -> int:
        """Joins plus leaves occurring within ``[t0, t1]``."""
        count = 0
        for iv in self._intervals.values():
            if t0 <= iv.join <= t1:
                count += 1
            if not math.isinf(iv.leave) and t0 <= iv.leave <= t1:
                count += 1
        return count

    def churn_rate(self, t0: float, t1: float) -> float:
        """Membership events per time unit over ``[t0, t1]``."""
        if t1 <= t0:
            raise ValueError(f"empty window [{t0}, {t1}]")
        return self.churn_events(t0, t1) / (t1 - t0)

    def mean_session_length(self) -> float:
        """Mean lifetime of entities that departed within the horizon."""
        lengths = [
            iv.length for iv in self._intervals.values() if not math.isinf(iv.leave)
        ]
        if not lengths:
            return FOREVER
        return sum(lengths) / len(lengths)

    def __repr__(self) -> str:
        return (
            f"Run(entities={len(self)}, horizon={self.horizon}, "
            f"max_concurrency={self.max_concurrency()})"
        )


def union_entities(runs: Iterable[Run]) -> frozenset[int]:
    """Entities appearing in any of the given runs."""
    result: set[int] = set()
    for run in runs:
        result |= run.entities()
    return frozenset(result)
