"""The geography (knowledge) dimension of dynamic distributed systems.

The paper's second orthogonal dimension: *what each entity can know about
the system*.  Each entity directly knows only its neighbors; the classes
below differ in which global parameter, if any, is additionally available to
every entity.  More knowledge makes more problems solvable, so the classes
form a partial order by information content:

    G_local  <  G_known_size   <  G_complete
    G_local  <  G_known_diameter  <  G_complete

``G_known_diameter`` and ``G_known_size`` are incomparable: a bound on the
diameter does not give a bound on the population and vice versa.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class KnowledgeClass:
    """A point of the geography dimension.

    Attributes:
        name: canonical short name used in tables.
        knows_members: every entity knows the full membership (complete graph).
        diameter_bound: a bound on the network diameter known to every
            entity, or ``None``.
        size_bound: a bound on the number of concurrently present entities
            known to every entity, or ``None``.
    """

    name: str
    knows_members: bool = False
    diameter_bound: int | None = None
    size_bound: int | None = None

    def __post_init__(self) -> None:
        if self.diameter_bound is not None and self.diameter_bound < 0:
            raise ValueError(f"diameter bound must be >= 0, got {self.diameter_bound}")
        if self.size_bound is not None and self.size_bound < 1:
            raise ValueError(f"size bound must be >= 1, got {self.size_bound}")

    # ------------------------------------------------------------------
    # Information-content partial order
    # ------------------------------------------------------------------

    def information(self) -> frozenset[str]:
        """The set of global facts this class grants each entity."""
        facts = set()
        if self.knows_members:
            facts |= {"members", "diameter", "size"}
        if self.diameter_bound is not None:
            facts.add("diameter")
        if self.size_bound is not None:
            facts.add("size")
        return frozenset(facts)

    def __le__(self, other: "KnowledgeClass") -> bool:
        """``self <= other`` iff ``other`` knows at least as much."""
        if not isinstance(other, KnowledgeClass):
            return NotImplemented
        return self.information() <= other.information()

    def __lt__(self, other: "KnowledgeClass") -> bool:
        return self.information() < other.information()

    def __str__(self) -> str:
        return self.name


def complete() -> KnowledgeClass:
    """``G_complete``: everybody knows everybody (classical assumption)."""
    return KnowledgeClass(name="G_complete", knows_members=True)


def known_diameter(bound: int) -> KnowledgeClass:
    """``G_known_diameter``: neighbor knowledge plus a diameter bound."""
    return KnowledgeClass(name="G_known_diameter", diameter_bound=bound)


def known_size(bound: int) -> KnowledgeClass:
    """``G_known_size``: neighbor knowledge plus a population bound."""
    return KnowledgeClass(name="G_known_size", size_bound=bound)


def local() -> KnowledgeClass:
    """``G_local``: pure neighbor knowledge, no global parameter ever."""
    return KnowledgeClass(name="G_local")


def knowledge_chain(diameter: int = 8, size: int = 64) -> list[KnowledgeClass]:
    """A representative list covering the dimension, weakest first."""
    return [local(), known_diameter(diameter), known_size(size), complete()]
