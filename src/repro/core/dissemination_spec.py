"""Specification of the dissemination (one-to-all) problem.

The dual of the one-time query: instead of folding values *up* to one
process, one process must push a value *out* to everyone.  In the paper's
framework the same two dimensions decide solvability, and the problem makes
the "eventual semantics" escape hatch concrete: one-shot dissemination (a
single flood) fails under churn exactly like the one-shot query, while
*continuous* dissemination (anti-entropy repair) achieves coverage in the
eventual sense even though no process ever knows it is done.

Protocols advertise broadcasts through two trace events:

* ``bcast_issued``    with ``entity`` (origin), ``bid`` and ``value``;
* ``bcast_delivered`` with ``entity`` and ``bid`` — written by each process
  the first time it learns the value (the origin included).

The checker measures, for an audit time ``T``:

* **coverage(T)** — the fraction of the obligation set holding the value at
  ``T``; the obligation set is the stable core of ``[issue, T]`` (optionally
  intersected with a reachability set supplied by the caller);
* **integrity** — no process delivered a broadcast before it was issued,
  and no process delivered the same broadcast twice.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.runs import Run
from repro.sim.trace import TraceLog

BCAST_ISSUED = "bcast_issued"
BCAST_DELIVERED = "bcast_delivered"


@dataclass(frozen=True)
class BroadcastRecord:
    """The observable facts about one broadcast."""

    bid: int
    origin: int
    issue_time: float
    value: object = None
    deliveries: tuple[tuple[int, float], ...] = ()

    def delivered_by(self, t: float) -> frozenset[int]:
        """Entities that had delivered by time ``t``."""
        return frozenset(pid for pid, when in self.deliveries if when <= t)


@dataclass(frozen=True)
class DisseminationVerdict:
    """The outcome of auditing one broadcast at time ``T``.

    Two coverage notions are reported:

    * :attr:`coverage` — over the *obligation set* (stable core of the
      audit window): what a one-shot protocol can be held to;
    * :attr:`population_coverage` — over the population present at the
      audit instant, late joiners included: what a *continuous*
      dissemination service owes its users.  One-shot floods degrade here
      as the population turns over; anti-entropy repair does not.
    """

    covered: frozenset[int]
    obligation: frozenset[int]
    missing: frozenset[int]
    integral: bool
    present: frozenset[int] = frozenset()
    notes: tuple[str, ...] = ()

    @property
    def coverage(self) -> float:
        """Fraction of the obligation set covered (1.0 if it is empty)."""
        if not self.obligation:
            return 1.0
        return len(self.obligation & self.covered) / len(self.obligation)

    @property
    def population_coverage(self) -> float:
        """Fraction of the audit-time population holding the value."""
        if not self.present:
            return 1.0
        return len(self.present & self.covered) / len(self.present)

    @property
    def complete(self) -> bool:
        return not self.missing

    @property
    def ok(self) -> bool:
        return self.complete and self.integral

    def __str__(self) -> str:
        status = "OK" if self.ok else "FAIL"
        return (
            f"DisseminationVerdict[{status}] coverage={self.coverage:.2f} "
            f"({len(self.obligation & self.covered)}/{len(self.obligation)}) "
            f"integral={self.integral}"
        )


def extract_broadcasts(log: TraceLog) -> list[BroadcastRecord]:
    """Collect every broadcast recorded in a trace."""
    issued: dict[int, tuple[int, float, object]] = {}
    deliveries: dict[int, list[tuple[int, float]]] = {}
    for event in log:
        if event.kind == BCAST_ISSUED:
            issued[event["bid"]] = (event["entity"], event.time, event.get("value"))
        elif event.kind == BCAST_DELIVERED:
            deliveries.setdefault(event["bid"], []).append(
                (event["entity"], event.time)
            )
    return [
        BroadcastRecord(
            bid=bid,
            origin=origin,
            issue_time=when,
            value=value,
            deliveries=tuple(deliveries.get(bid, ())),
        )
        for bid, (origin, when, value) in sorted(issued.items())
    ]


class DisseminationSpec:
    """Audits broadcasts against the dissemination specification.

    Args:
        restrict_to: optionally intersect the obligation set with a given
            entity set (e.g. the origin's connected component at issue).
    """

    def __init__(self, restrict_to: frozenset[int] | None = None) -> None:
        self.restrict_to = restrict_to

    def check_broadcast(
        self,
        log: TraceLog,
        record: BroadcastRecord,
        at: float,
        run: Run | None = None,
    ) -> DisseminationVerdict:
        """Audit one broadcast at time ``at``."""
        if run is None:
            run = Run.from_trace(log, horizon=at)
        if at < record.issue_time:
            raise ValueError(
                f"audit time {at} precedes issue time {record.issue_time}"
            )
        notes: list[str] = []
        obligation = run.stable_core(record.issue_time, at)
        if self.restrict_to is not None:
            obligation = obligation & self.restrict_to
        covered = record.delivered_by(at)
        missing = obligation - covered

        integral = True
        early = [
            (pid, when)
            for pid, when in record.deliveries
            if when < record.issue_time
        ]
        if early:
            integral = False
            notes.append(f"deliveries before issue: {early}")
        entities = [pid for pid, _ in record.deliveries]
        duplicates = {pid for pid in entities if entities.count(pid) > 1}
        if duplicates:
            integral = False
            notes.append(f"duplicate deliveries: {sorted(duplicates)}")
        phantom = covered - (
            run.stable_core(record.issue_time, at)
            | run.transients(record.issue_time, at)
        )
        # Entities may legitimately deliver and later leave (transients), or
        # deliver having joined mid-broadcast; only never-present entities
        # are phantoms.
        if phantom:
            integral = False
            notes.append(f"phantom deliverers: {sorted(phantom)}")

        return DisseminationVerdict(
            covered=covered,
            obligation=obligation,
            missing=missing,
            integral=integral,
            present=run.present_at(at),
            notes=tuple(notes),
        )

    def check(self, log: TraceLog, at: float) -> list[DisseminationVerdict]:
        """Audit every broadcast in the trace at time ``at``."""
        run = Run.from_trace(log, horizon=at)
        return [
            self.check_broadcast(log, record, at, run)
            for record in extract_broadcasts(log)
        ]
