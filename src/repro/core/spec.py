"""Machine-checkable specification of the one-time query problem.

The paper's canonical problem, made executable.  A process (the *querier*)
issues a query for an aggregate over the values held by system members.  A
protocol solves the problem in a run iff:

* **Termination** — the querier returns a result in finite time.
* **Stable-core validity** — the result accounts for the value of *every*
  entity present throughout the query interval (the stable core); entities
  that join or leave mid-query may or may not be counted.
* **Integrity** — every counted contribution comes from an entity that was
  actually present at some instant of the query interval, no entity is
  counted twice, no value is fabricated, and the returned aggregate equals
  the aggregate of the counted values.

Protocols advertise queries through two trace events:

* ``query_issued``  with ``entity`` (querier), ``qid`` and ``aggregate``;
* ``query_returned`` with ``entity``, ``qid``, ``result`` and
  ``contributors`` (tuple of entity ids whose values were counted).

The checker cross-references those events against the membership record of
the same trace, so a protocol cannot claim completeness it did not achieve.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import aggregates as agg
from repro.core.runs import Run
from repro.sim import trace as tr
from repro.sim.trace import TraceLog

QUERY_ISSUED = "query_issued"
QUERY_RETURNED = "query_returned"


@dataclass(frozen=True)
class QueryRecord:
    """The observable facts about one query occurrence."""

    qid: int
    querier: int
    aggregate: str
    issue_time: float
    return_time: float | None
    result: object = None
    contributors: tuple[int, ...] = ()

    @property
    def terminated(self) -> bool:
        return self.return_time is not None


@dataclass(frozen=True)
class Verdict:
    """The outcome of checking one query against the specification.

    ``ok`` holds iff all three clauses hold.  ``missing_core`` lists the
    stable-core entities whose values were not counted (the completeness
    failures); ``phantom`` lists counted entities that were never present
    during the query interval (integrity failures).
    """

    terminated: bool
    complete: bool
    integral: bool
    stable_core: frozenset[int] = frozenset()
    contributors: frozenset[int] = frozenset()
    missing_core: frozenset[int] = frozenset()
    phantom: frozenset[int] = frozenset()
    duplicates: frozenset[int] = frozenset()
    notes: tuple[str, ...] = field(default=())

    @property
    def ok(self) -> bool:
        return self.terminated and self.complete and self.integral

    @property
    def completeness_ratio(self) -> float:
        """Fraction of the stable core whose values were counted (1.0 for an
        empty core)."""
        if not self.stable_core:
            return 1.0
        return len(self.stable_core & self.contributors) / len(self.stable_core)

    def __str__(self) -> str:
        status = "OK" if self.ok else "FAIL"
        return (
            f"Verdict[{status}] terminated={self.terminated} "
            f"complete={self.complete} integral={self.integral} "
            f"core={len(self.stable_core)} counted={len(self.contributors)}"
        )


def extract_queries(log: TraceLog) -> list[QueryRecord]:
    """Collect every query occurrence recorded in a trace."""
    issued: dict[int, tr.TraceEvent] = {}
    returned: dict[int, tr.TraceEvent] = {}
    for event in log:
        if event.kind == QUERY_ISSUED:
            issued[event["qid"]] = event
        elif event.kind == QUERY_RETURNED:
            returned.setdefault(event["qid"], event)
    records = []
    for qid, issue in sorted(issued.items()):
        ret = returned.get(qid)
        records.append(
            QueryRecord(
                qid=qid,
                querier=issue["entity"],
                aggregate=issue.get("aggregate", "SET"),
                issue_time=issue.time,
                return_time=ret.time if ret is not None else None,
                result=ret.get("result") if ret is not None else None,
                contributors=tuple(ret.get("contributors", ())) if ret is not None else (),
            )
        )
    return records


def _value_map(log: TraceLog) -> dict[int, object]:
    """Map every entity to the value it held when it joined."""
    return {
        event["entity"]: event.get("value")
        for event in log.events(tr.JOIN)
    }


class OneTimeQuerySpec:
    """Checks one-time-query occurrences in a trace against the spec.

    Args:
        restrict_core_to: optionally intersect the stable core with a given
            entity set before checking completeness.  The analysis layer
            uses this to scope the obligation to the querier's connected
            component (an entity no path ever reaches cannot be counted by
            *any* protocol, so the paper's validity clause quantifies over
            reachable stable members).
        check_result: also verify the returned aggregate value equals the
            aggregate of the contributors' actual values.
    """

    def __init__(
        self,
        restrict_core_to: frozenset[int] | None = None,
        check_result: bool = True,
    ) -> None:
        self.restrict_core_to = restrict_core_to
        self.check_result = check_result

    def check_query(self, log: TraceLog, record: QueryRecord, run: Run | None = None) -> Verdict:
        """Check a single query occurrence; see module docstring for clauses."""
        if run is None:
            run = Run.from_trace(log)
        notes: list[str] = []
        if not record.terminated:
            return Verdict(
                terminated=False,
                complete=False,
                integral=False,
                notes=("query never returned",),
            )
        assert record.return_time is not None
        core = run.stable_core(record.issue_time, record.return_time)
        if self.restrict_core_to is not None:
            core = core & self.restrict_core_to
        contributors = frozenset(record.contributors)
        duplicates = frozenset(
            pid
            for pid in contributors
            if record.contributors.count(pid) > 1
        )
        window_present = run.stable_core(record.issue_time, record.return_time) | run.transients(
            record.issue_time, record.return_time
        )
        phantom = contributors - window_present
        missing = core - contributors
        integral = not duplicates and not phantom
        if self.check_result and integral:
            integral = self._result_consistent(log, record, notes)
        return Verdict(
            terminated=True,
            complete=not missing,
            integral=integral,
            stable_core=core,
            contributors=contributors,
            missing_core=missing,
            phantom=phantom,
            duplicates=duplicates,
            notes=tuple(notes),
        )

    def _result_consistent(
        self, log: TraceLog, record: QueryRecord, notes: list[str]
    ) -> bool:
        values = _value_map(log)
        unknown = [pid for pid in record.contributors if pid not in values]
        if unknown:
            notes.append(f"contributors with unknown values: {unknown}")
            return False
        try:
            aggregate = agg.by_name(record.aggregate)
        except KeyError:
            notes.append(f"unknown aggregate {record.aggregate!r}; result unchecked")
            return True
        expected = aggregate.of(values[pid] for pid in record.contributors)
        if expected != record.result:
            notes.append(
                f"result {record.result!r} != {aggregate.name} of contributions "
                f"({expected!r})"
            )
            return False
        return True

    def check(self, log: TraceLog, horizon: float | None = None) -> list[Verdict]:
        """Check every query in the trace; returns one verdict per query."""
        run = Run.from_trace(log, horizon)
        return [self.check_query(log, record, run) for record in extract_queries(log)]
