"""Failure detection substrate."""

from repro.failure.detector import (
    HEARTBEAT,
    HeartbeatNode,
    RESTORE,
    SUSPECT,
    detection_latency,
    false_suspicions,
    mistake_recovery_count,
)

__all__ = [
    "HEARTBEAT",
    "HeartbeatNode",
    "RESTORE",
    "SUSPECT",
    "detection_latency",
    "false_suspicions",
    "mistake_recovery_count",
]
