"""Heartbeat failure detection.

The simulator's neighbor-leave notifications model a *perfect* failure
detector — departures are announced instantly.  Real dynamic systems must
infer departures from silence, and the quality of that inference depends on
timing knowledge: with a known bound on message delay a heartbeat detector
is eventually perfect; with unbounded delay every timeout choice either
reacts slowly or suspects live processes.  This module provides the
heartbeat machinery and the metrics to quantify that trade-off (the
synchrony analogue of the paper's knowledge dimension, explored by the
failure-detection ablation bench).

Trace events written:

* ``suspect``  — ``entity`` began suspecting ``target``;
* ``restore``  — ``entity`` unsuspected ``target`` (a late heartbeat).
"""

from __future__ import annotations

from typing import Any

from repro.protocols.base import AggregatingProcess
from repro.sim.errors import ConfigurationError
from repro.sim.messages import Message
from repro.sim.trace import TraceLog

HEARTBEAT = "FD_HEARTBEAT"
SUSPECT = "suspect"
RESTORE = "restore"


class HeartbeatNode(AggregatingProcess):
    """A process that monitors its neighbors with heartbeats.

    Args:
        value: local value (the class composes with aggregation protocols).
        period: time between heartbeat broadcasts.
        timeout: silence threshold after which a neighbor is suspected.

    Subclasses may override :meth:`on_suspect` / :meth:`on_restore` to react
    to detector output; the detector itself never removes anyone.
    """

    def __init__(self, value: Any = None, period: float = 1.0, timeout: float = 3.0) -> None:
        super().__init__(value)
        if period <= 0:
            raise ConfigurationError(f"heartbeat period must be > 0, got {period}")
        if timeout <= period:
            raise ConfigurationError(
                f"timeout ({timeout}) must exceed the period ({period})"
            )
        self.period = period
        self.timeout = timeout
        self._last_heard: dict[int, float] = {}
        self._suspected: set[int] = set()
        self.suspicions_raised = 0
        self.suspicions_retracted = 0

    # ------------------------------------------------------------------
    # Detector output
    # ------------------------------------------------------------------

    def suspects(self) -> frozenset[int]:
        """The neighbors this process currently suspects."""
        return frozenset(self._suspected)

    def trusts(self) -> frozenset[int]:
        """Current neighbors not under suspicion."""
        return self.neighbors() - self._suspected

    def on_suspect(self, pid: int) -> None:
        """Hook: called when ``pid`` becomes suspected."""

    def on_restore(self, pid: int) -> None:
        """Hook: called when a suspicion on ``pid`` is retracted."""

    # ------------------------------------------------------------------
    # Machinery
    # ------------------------------------------------------------------

    def on_start(self) -> None:
        for neighbor in self.neighbors():
            self._last_heard[neighbor] = self.now
        # Random initial phase desynchronises heartbeats across processes.
        self.set_timer(self.rng.uniform(0, self.period), "fd-beat", None)
        self.set_timer(self.timeout, "fd-check", None)

    def on_timer(self, name: str, payload: Any) -> None:
        if name == "fd-beat":
            self.broadcast(HEARTBEAT)
            self.set_timer(self.period, "fd-beat", None)
        elif name == "fd-check":
            self._check_silences()
            self.set_timer(self.period, "fd-check", None)

    def _check_silences(self) -> None:
        # Monitor everyone we hold heartbeat state for, not just the
        # current neighbor set: under *silent* departures
        # (``notify_leaves=False``) a crashed neighbor vanishes from the
        # adjacency without a callback, and its lingering ``_last_heard``
        # entry is precisely how its silence is noticed.
        for target in sorted(self._last_heard):
            heard = self._last_heard[target]
            if target not in self._suspected and self.now - heard > self._timeout_for(target):
                self._suspected.add(target)
                self.suspicions_raised += 1
                self.sim.metrics.inc("detector.suspicions")
                self.record(SUSPECT, target=target)
                self.on_suspect(target)

    def _timeout_for(self, target: int) -> float:
        """The silence threshold for ``target``.

        With a resilience layer in adaptive-detector mode the threshold is
        derived from the link's RTT estimate (see
        :meth:`repro.resilience.transport.ReliableTransport.detector_timeout`);
        otherwise the static ``timeout`` applies.
        """
        transport = getattr(self.sim.network, "resilience", None)
        if transport is not None and transport.spec.adaptive_detector:
            return transport.detector_timeout(
                self.pid, target, fallback=self.timeout, period=self.period
            )
        return self.timeout

    def _restore(self, pid: int) -> None:
        """Retract a suspicion on ``pid`` (no-op if not suspected)."""
        if pid not in self._suspected:
            return
        self._suspected.discard(pid)
        self.suspicions_retracted += 1
        self.sim.metrics.inc("detector.restorals")
        self.record(RESTORE, target=pid)
        self.on_restore(pid)

    def on_message(self, message: Message) -> None:
        if message.kind == HEARTBEAT:
            self._last_heard[message.sender] = self.now
            self._restore(message.sender)

    def on_neighbor_join(self, pid: int) -> None:
        self._last_heard[pid] = self.now
        # A rejoining entity (crash_rejoin under the same pid) is live by
        # definition: clear any standing suspicion immediately rather than
        # waiting for its first heartbeat, so coverage reports never
        # permanently exclude entities that came back.
        self._restore(pid)

    def on_neighbor_leave(self, pid: int) -> None:
        # The perfect notification clears detector state; heartbeat-only
        # deployments would instead rely on the timeout path that already
        # suspected (or will suspect) the silent neighbor.
        self._last_heard.pop(pid, None)
        self._suspected.discard(pid)


# ----------------------------------------------------------------------
# Detector-quality metrics
# ----------------------------------------------------------------------


def detection_latency(log: TraceLog, departed: int) -> float | None:
    """Time from ``departed``'s leave to the first suspicion naming it.

    Returns ``None`` if it was never suspected after leaving (a miss —
    possible when its monitors also left).
    """
    leave_time = None
    for event in log:
        if event.kind == "leave" and event["entity"] == departed:
            leave_time = event.time
        elif (
            leave_time is not None
            and event.kind == SUSPECT
            and event["target"] == departed
            and event.time >= leave_time
        ):
            return event.time - leave_time
    return None


def false_suspicions(log: TraceLog) -> int:
    """Count suspicions raised against processes that had not left.

    A suspicion is false if the target had no earlier ``leave`` event.
    """
    departed: set[int] = set()
    count = 0
    for event in log:
        if event.kind == "leave":
            departed.add(event["entity"])
        elif event.kind == SUSPECT and event["target"] not in departed:
            count += 1
    return count


def mistake_recovery_count(log: TraceLog) -> int:
    """Number of retracted suspicions (restores) — the 'eventually' in
    eventually-perfect."""
    return log.count(RESTORE)
