"""Synthetic session traces.

The paper motivates dynamic systems with deployed peer-to-peer networks but
reports no traces (it is a position paper).  As the documented substitution,
this module generates synthetic session traces with the empirically observed
statistics — Poisson arrivals with optional diurnal modulation, and
heavy-tailed (Pareto) session lengths — and a churn model that replays any
trace.  Protocols only ever observe join/leave events, so replaying a
synthetic trace exercises exactly the code paths a measured trace would.
"""

from __future__ import annotations

import json
import math
import random
from dataclasses import dataclass
from pathlib import Path

from repro.churn.lifetimes import LifetimeModel, ParetoLifetime
from repro.churn.models import ChurnModel, ProcessFactory
from repro.core.arrival import ArrivalClass, InfiniteArrivalFinite
from repro.sim.errors import ConfigurationError
from repro.sim.events import PRIORITY_MEMBERSHIP
from repro.topology.attachment import AttachmentRule


@dataclass(frozen=True)
class Session:
    """One entity's visit: arrives at ``arrival``, stays ``duration``."""

    arrival: float
    duration: float

    def __post_init__(self) -> None:
        if self.arrival < 0 or self.duration <= 0:
            raise ValueError(f"invalid session ({self.arrival}, {self.duration})")

    @property
    def departure(self) -> float:
        return self.arrival + self.duration


def synthetic_sessions(
    rng: random.Random,
    horizon: float,
    arrival_rate: float,
    lifetimes: LifetimeModel | None = None,
    diurnal_amplitude: float = 0.0,
    diurnal_period: float = 100.0,
) -> list[Session]:
    """Generate a session trace over ``[0, horizon]``.

    Arrivals form a (possibly modulated) Poisson process.  With
    ``diurnal_amplitude`` in ``(0, 1]`` the instantaneous rate oscillates as
    ``rate * (1 + A sin(2πt/period))`` via thinning, reproducing day/night
    population swings.

    Args:
        rng: random stream.
        horizon: generate arrivals in ``[0, horizon]``.
        arrival_rate: base arrivals per time unit.
        lifetimes: session-length model (default Pareto(1.5), heavy tail).
        diurnal_amplitude: modulation depth ``A`` (0 disables).
        diurnal_period: modulation period.
    """
    if horizon <= 0:
        raise ConfigurationError(f"horizon must be > 0, got {horizon}")
    if arrival_rate <= 0:
        raise ConfigurationError(f"arrival rate must be > 0, got {arrival_rate}")
    if not 0 <= diurnal_amplitude <= 1:
        raise ConfigurationError(
            f"diurnal amplitude must be in [0, 1], got {diurnal_amplitude}"
        )
    lifetimes = lifetimes or ParetoLifetime(alpha=1.5, xm=1.0)
    peak_rate = arrival_rate * (1 + diurnal_amplitude)
    sessions = []
    t = 0.0
    while True:
        t += rng.expovariate(peak_rate)
        if t > horizon:
            break
        if diurnal_amplitude > 0:
            instantaneous = arrival_rate * (
                1 + diurnal_amplitude * math.sin(2 * math.pi * t / diurnal_period)
            )
            if rng.random() >= instantaneous / peak_rate:
                continue  # thinned out
        sessions.append(Session(arrival=t, duration=lifetimes.sample(rng)))
    return sessions


def trace_statistics(sessions: list[Session]) -> dict[str, float]:
    """Summary statistics of a trace (used in tests and reports)."""
    if not sessions:
        return {"count": 0.0, "mean_duration": 0.0, "median_duration": 0.0, "max_concurrency": 0.0}
    durations = sorted(s.duration for s in sessions)
    mid = len(durations) // 2
    median = (
        durations[mid]
        if len(durations) % 2 == 1
        else (durations[mid - 1] + durations[mid]) / 2
    )
    deltas = []
    for s in sessions:
        deltas.append((s.arrival, 1))
        deltas.append((s.departure, -1))
    deltas.sort()
    peak = count = 0
    for _, delta in deltas:
        count += delta
        peak = max(peak, count)
    return {
        "count": float(len(sessions)),
        "mean_duration": sum(durations) / len(durations),
        "median_duration": median,
        "max_concurrency": float(peak),
    }


def save_sessions(sessions: list[Session], path: "str | Path") -> int:
    """Write a session trace as JSON Lines; returns the session count."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        for session in sessions:
            handle.write(json.dumps(
                {"arrival": session.arrival, "duration": session.duration}
            ) + "\n")
    return len(sessions)


def load_sessions(path: "str | Path") -> list[Session]:
    """Read a session trace written by :func:`save_sessions`."""
    sessions = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            sessions.append(
                Session(arrival=record["arrival"], duration=record["duration"])
            )
    return sessions


class TraceReplayChurn(ChurnModel):
    """Replays a session trace: one join per session, one leave per end."""

    def __init__(
        self,
        factory: ProcessFactory,
        sessions: list[Session],
        attachment: AttachmentRule | None = None,
    ) -> None:
        super().__init__(factory, attachment)
        self.sessions = sorted(sessions, key=lambda s: s.arrival)

    def _start(self) -> None:
        for session in self.sessions:
            self.sim.at(
                session.arrival,
                lambda duration=session.duration: self._replay_join(duration),
                priority=PRIORITY_MEMBERSHIP,
                label="churn:trace-join",
            )

    def _replay_join(self, duration: float) -> None:
        if not self.active_at(self.sim.now):
            return
        self._join_now(lifetime=duration)

    def arrival_class(self) -> ArrivalClass:
        return InfiniteArrivalFinite()

    def __repr__(self) -> str:
        return f"TraceReplayChurn(sessions={len(self.sessions)})"
