"""Churn substrate: generative churn models, lifetimes, traces, adversaries."""

from repro.churn.adversary import (
    GrowthAdversary,
    build_chain,
    defeat_quiescence,
    defeat_ttl,
    diagonalise,
)
from repro.churn.composition import CompositeChurn, SequentialChurn
from repro.churn.lifetimes import (
    ConstantLifetime,
    ExponentialLifetime,
    LifetimeModel,
    ParetoLifetime,
    UniformLifetime,
)
from repro.churn.models import (
    ArrivalDepartureChurn,
    ChurnModel,
    FiniteArrivalChurn,
    NoChurn,
    PhasedChurn,
    ProcessFactory,
    ReplacementChurn,
    ScheduledChurn,
)
from repro.churn.traces import (
    Session,
    TraceReplayChurn,
    load_sessions,
    save_sessions,
    synthetic_sessions,
    trace_statistics,
)

__all__ = [
    "ArrivalDepartureChurn",
    "ChurnModel",
    "CompositeChurn",
    "ConstantLifetime",
    "ExponentialLifetime",
    "FiniteArrivalChurn",
    "GrowthAdversary",
    "LifetimeModel",
    "NoChurn",
    "ParetoLifetime",
    "PhasedChurn",
    "ProcessFactory",
    "ReplacementChurn",
    "ScheduledChurn",
    "SequentialChurn",
    "Session",
    "TraceReplayChurn",
    "UniformLifetime",
    "build_chain",
    "defeat_quiescence",
    "defeat_ttl",
    "load_sessions",
    "save_sessions",
    "diagonalise",
    "synthetic_sessions",
    "trace_statistics",
]
