"""Declarative churn specifications.

:class:`ChurnSpec` is the picklable description of a churn process: plain
data that crosses process boundaries intact, materialised into a live
:class:`~repro.churn.models.ChurnModel` only inside the worker that runs
the trial.  Trial configs (:class:`~repro.engine.trials.QueryConfig` and
friends) accept a ``ChurnSpec`` directly, which is what lets a config
built in a script run unchanged under ``--jobs N``; the legacy callable
(``factory -> ChurnModel``) form remains accepted for one release.

This module used to live inside :mod:`repro.engine.plan`; it moved here so
the trial layer can resolve specs without importing the plan layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.churn.lifetimes import ExponentialLifetime, ParetoLifetime
from repro.churn.models import (
    ArrivalDepartureChurn,
    ChurnModel,
    FiniteArrivalChurn,
    PhasedChurn,
    ProcessFactory,
    ReplacementChurn,
)
from repro.sim.errors import ConfigurationError

#: Builds a churn model from a process factory (the runner owns the factory
#: so arrivals get fresh values).
ChurnBuilder = Callable[[ProcessFactory], ChurnModel]


@dataclass(frozen=True)
class ChurnSpec:
    """A declarative, picklable churn description.

    ``kind`` selects the generative model; the remaining fields parameterise
    it.  :meth:`builder` produces the ``ChurnBuilder`` the trial layer
    expects — the closure is created *after* unpickling, inside the worker,
    so the spec itself stays plain data.

    Kinds:
        ``"replacement"``: constant-population turnover at ``rate``.
        ``"arrival-departure"``: Poisson arrivals at ``rate`` with
            exponential (``lifetime_mean``) or Pareto
            (``pareto_alpha``/``pareto_xm``) lifetimes, optional ``cap``.
        ``"finite"``: ``total_arrivals`` arrivals at ``rate``, then quiet.
        ``"phased"``: storms at ``rate`` of length ``storm_length``
            alternating with ``calm_length`` calm.
    """

    kind: str = "replacement"
    rate: float = 1.0
    lifetime_mean: float | None = None
    pareto_alpha: float | None = None
    pareto_xm: float | None = None
    cap: int | None = None
    total_arrivals: int | None = None
    storm_length: float = 40.0
    calm_length: float = 60.0
    doom_initial: bool = False

    def _lifetimes(self):
        if self.pareto_alpha is not None:
            return ParetoLifetime(alpha=self.pareto_alpha, xm=self.pareto_xm or 1.0)
        if self.lifetime_mean is not None:
            return ExponentialLifetime(self.lifetime_mean)
        return None

    def builder(self) -> ChurnBuilder:
        """Materialise the churn builder this spec describes."""
        if self.kind == "replacement":
            return lambda factory: ReplacementChurn(factory, rate=self.rate)
        if self.kind == "arrival-departure":
            lifetimes = self._lifetimes() or ExponentialLifetime(30.0)
            return lambda factory: ArrivalDepartureChurn(
                factory,
                arrival_rate=self.rate,
                lifetimes=lifetimes,
                concurrency_cap=self.cap,
                doom_initial=self.doom_initial,
            )
        if self.kind == "finite":
            return lambda factory: FiniteArrivalChurn(
                factory,
                total_arrivals=self.total_arrivals or 20,
                arrival_rate=self.rate,
                lifetimes=self._lifetimes(),
            )
        if self.kind == "phased":
            return lambda factory: PhasedChurn(
                factory,
                storm_rate=self.rate,
                storm_length=self.storm_length,
                calm_length=self.calm_length,
            )
        raise ConfigurationError(
            f"unknown churn kind {self.kind!r}; use 'replacement', "
            "'arrival-departure', 'finite' or 'phased'"
        )


def resolve_churn(
    churn: "ChurnSpec | ChurnBuilder | None",
) -> ChurnBuilder | None:
    """Normalise a config's ``churn`` field to a builder (or ``None``).

    Accepts the declarative :class:`ChurnSpec` (preferred — picklable) and
    the legacy callable form.
    """
    if churn is None:
        return None
    if isinstance(churn, ChurnSpec):
        return churn.builder()
    if callable(churn):
        return churn
    raise ConfigurationError(
        f"'churn' must be a ChurnSpec or a builder callable, "
        f"got {type(churn).__name__}"
    )
