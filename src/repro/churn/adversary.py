"""Adversarial constructions.

The paper's negative results are of the form "for every protocol there is a
run of the class on which the protocol fails".  This module makes those
arguments executable as *diagonalisations*: given the protocol's parameter
(its TTL, or its quiescence timeout), construct a legal run of the target
class that defeats it.  The E6 benchmark sweeps the parameter and verifies
the constructed run wins every time.
"""

from __future__ import annotations

from typing import Callable

from repro.churn.models import ChurnModel, ProcessFactory
from repro.core.arrival import ArrivalClass, InfiniteArrivalUnbounded
from repro.sim.errors import ConfigurationError
from repro.sim.latency import ConstantDelay
from repro.sim.node import Process
from repro.sim.scheduler import Simulator
from repro.topology.attachment import ChainAttachment


def build_chain(
    sim: Simulator, factory: ProcessFactory, length: int
) -> list[int]:
    """Spawn a line of ``length`` processes 0 - 1 - ... - (length-1).

    Returns the pids in chain order.  The line is the extremal topology for
    locality arguments: information needs ``length - 1`` hops end to end.
    """
    if length < 1:
        raise ConfigurationError(f"chain length must be >= 1, got {length}")
    pids: list[int] = []
    for i in range(length):
        neighbors = [pids[-1]] if pids else []
        proc = sim.spawn(factory(), neighbors)
        pids.append(proc.pid)
    return pids


def defeat_ttl(
    ttl: int,
    factory: ProcessFactory,
    seed: int = 0,
    hop_delay: float = 1.0,
) -> tuple[Simulator, list[int]]:
    """A static run on which any wave protocol with the given TTL is
    incomplete.

    The run is a line of ``ttl + 2`` permanently present processes; the far
    endpoint is ``ttl + 1`` hops from the querier (pid 0), one hop beyond
    the wave's reach, yet it belongs to the stable core.  This is a legal
    run of *every* arrival class (even ``M_static``), which is exactly the
    paper's point about ``G_local``: without a diameter bound, no TTL is
    safe even in a static world.
    """
    if ttl < 0:
        raise ConfigurationError(f"ttl must be >= 0, got {ttl}")
    sim = Simulator(seed=seed, delay_model=ConstantDelay(hop_delay))
    pids = build_chain(sim, factory, ttl + 2)
    return sim, pids


def defeat_quiescence(
    timeout: float,
    factory: ProcessFactory,
    seed: int = 0,
    hop_delay: float = 1.0,
) -> tuple[Simulator, list[int]]:
    """A run on which a quiescence rule with the given timeout fails.

    A three-process line whose far link is slower than the timeout: the
    querier hears nothing for ``timeout`` after its neighbor's echo and
    declares the wave finished, while the far (stable) process's response is
    still in flight.  Legal under unbounded message delay — the asynchrony
    half of the impossibility.
    """
    if timeout <= 0:
        raise ConfigurationError(f"timeout must be > 0, got {timeout}")
    sim = Simulator(seed=seed, delay_model=ConstantDelay(hop_delay))
    pids = build_chain(sim, factory, 3)
    sim.network.set_edge_delay(pids[1], pids[2], ConstantDelay(timeout + 2 * hop_delay + 1.0))
    return sim, pids


class GrowthAdversary(ChurnModel):
    """Witnesses ``M_inf_unbounded``: the population grows without bound.

    Arrivals come ever faster (the inter-arrival gap shrinks geometrically)
    and nobody ever leaves; with :class:`ChainAttachment` each newcomer
    extends a path, so the network diameter also grows without bound while
    a query is in flight.  Used to defeat protocols that adapt their TTL to
    the population they have seen so far.
    """

    def __init__(
        self,
        factory: ProcessFactory,
        initial_gap: float = 1.0,
        acceleration: float = 0.9,
        min_gap: float = 1e-3,
        max_joins: int = 10_000,
    ) -> None:
        super().__init__(factory, attachment=ChainAttachment())
        if initial_gap <= 0:
            raise ConfigurationError(f"initial gap must be > 0, got {initial_gap}")
        if not 0 < acceleration <= 1:
            raise ConfigurationError(
                f"acceleration must be in (0, 1], got {acceleration}"
            )
        self.initial_gap = initial_gap
        self.acceleration = acceleration
        self.min_gap = min_gap
        self.max_joins = max_joins
        self._gap = initial_gap

    def _start(self) -> None:
        self._schedule(self._gap, self._grow, "churn:growth")

    def _grow(self) -> None:
        if self.joins >= self.max_joins or not self.active_at(self.sim.now):
            return
        self._join_now()
        self._gap = max(self.min_gap, self._gap * self.acceleration)
        self._schedule(self._gap, self._grow, "churn:growth")

    def arrival_class(self) -> ArrivalClass:
        return InfiniteArrivalUnbounded()

    def __repr__(self) -> str:
        return (
            f"GrowthAdversary(gap={self.initial_gap}, "
            f"acceleration={self.acceleration})"
        )


def diagonalise(
    parameters: list[float],
    construct: Callable[[float], tuple[Simulator, list[int]]],
    run_protocol: Callable[[Simulator, list[int]], bool],
) -> dict[float, bool]:
    """Run the diagonalisation: for each protocol parameter, construct the
    adversarial run and report whether the protocol failed on it.

    Returns ``{parameter: protocol_failed}``; the impossibility claim is
    validated when every value is ``True``.
    """
    outcomes = {}
    for parameter in parameters:
        sim, pids = construct(parameter)
        outcomes[parameter] = not run_protocol(sim, pids)
    return outcomes
