"""Churn models: generative processes over joins and leaves.

A churn model, installed on a simulator, schedules the membership events
that make the system *dynamic*.  Each model declares which arrival class
(:mod:`repro.core.arrival`) its runs belong to, tying the generative
substrate to the paper's taxonomy.
"""

from __future__ import annotations

import abc
import random
from typing import Callable

from repro.churn.lifetimes import LifetimeModel
from repro.core.arrival import (
    ArrivalClass,
    FiniteArrival,
    InfiniteArrivalBounded,
    InfiniteArrivalFinite,
    StaticArrival,
)
from repro.sim.errors import ConfigurationError, SimulationError
from repro.sim.events import PRIORITY_MEMBERSHIP
from repro.sim.node import Process
from repro.sim.scheduler import Simulator
from repro.topology.attachment import AttachmentRule, UniformAttachment

#: Creates a fresh process (with its local value) for each arriving entity.
ProcessFactory = Callable[[], Process]


class ChurnModel(abc.ABC):
    """Base class for generative churn processes.

    Args:
        factory: builds the process object for each arriving entity.
        attachment: how newcomers pick their first neighbors.
    """

    def __init__(
        self,
        factory: ProcessFactory,
        attachment: AttachmentRule | None = None,
    ) -> None:
        self.factory = factory
        self.attachment = attachment or UniformAttachment(2)
        self._sim: Simulator | None = None
        self._stop_at: float | None = None
        self.joins = 0
        self.leaves = 0
        #: Pids that random-victim selection must never remove (e.g. the
        #: querier, when an experiment studies completeness rather than
        #: querier mortality).
        self.immortal: set[int] = set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def install(self, sim: Simulator, stop_at: float | None = None) -> None:
        """Attach to ``sim`` and begin generating membership events.

        ``stop_at`` freezes churn from that time on (useful to observe the
        quiescent phase of finite-arrival runs).
        """
        if self._sim is not None:
            raise SimulationError("churn model is already installed")
        self._sim = sim
        self._stop_at = stop_at
        self._start()

    @property
    def sim(self) -> Simulator:
        if self._sim is None:
            raise SimulationError("churn model is not installed")
        return self._sim

    @property
    def rng(self) -> random.Random:
        return self.sim.rng_for("churn")

    def active_at(self, time: float) -> bool:
        """Whether churn is still running at ``time``."""
        return self._stop_at is None or time < self._stop_at

    @abc.abstractmethod
    def _start(self) -> None:
        """Schedule the model's first event(s)."""

    @abc.abstractmethod
    def arrival_class(self) -> ArrivalClass:
        """The entity-dimension class this model's runs belong to."""

    # ------------------------------------------------------------------
    # Helpers for subclasses
    # ------------------------------------------------------------------

    def _join_now(self, lifetime: float | None = None) -> Process:
        """Create, attach and (optionally) doom a new process."""
        proc = self.factory()
        neighbors = self.attachment.choose(self.sim.network, self.rng)
        self.sim.spawn(proc, neighbors)
        self.joins += 1
        self.sim.metrics.inc("churn.joins")
        if lifetime is not None:
            pid = proc.pid

            def _depart() -> None:
                if self.sim.network.is_present(pid):
                    self.sim.kill(pid)
                    self.leaves += 1
                    self.sim.metrics.inc("churn.leaves")

            self._schedule(lifetime, _depart, f"churn:lifetime-leave:{pid}")
        return proc

    def _leave_random(self) -> int | None:
        """Remove a uniformly random present, non-immortal process."""
        present = sorted(self.sim.network.present() - self.immortal)
        if not present:
            return None
        victim = self.rng.choice(present)
        self.sim.kill(victim)
        self.leaves += 1
        self.sim.metrics.inc("churn.leaves")
        return victim

    def _schedule(self, delay: float, action: Callable[[], None], label: str) -> None:
        self.sim.schedule(delay, action, priority=PRIORITY_MEMBERSHIP, label=label)


class NoChurn(ChurnModel):
    """The static system: whatever population exists at install time stays."""

    def __init__(self, n: int | None = None) -> None:
        super().__init__(factory=Process, attachment=UniformAttachment(1))
        self._n = n

    def _start(self) -> None:
        if self._n is None:
            self._n = len(self.sim.network.present())

    def arrival_class(self) -> ArrivalClass:
        return StaticArrival(max(1, self._n or 1))

    def __repr__(self) -> str:
        return f"NoChurn(n={self._n})"


class ArrivalDepartureChurn(ChurnModel):
    """Poisson arrivals, independent session lifetimes.

    The general infinite-arrival model: entities arrive at rate
    ``arrival_rate`` and each stays for a lifetime drawn from ``lifetimes``.
    With no ``concurrency_cap`` the stationary population is
    ``arrival_rate * mean_lifetime`` (finite in each run, unbounded across
    runs — ``M_inf_finite``); with a cap, arrivals finding the system full
    are rejected and the model realises ``M_inf_bounded(cap)``.
    """

    def __init__(
        self,
        factory: ProcessFactory,
        arrival_rate: float,
        lifetimes: LifetimeModel,
        attachment: AttachmentRule | None = None,
        concurrency_cap: int | None = None,
        doom_initial: bool = False,
    ) -> None:
        super().__init__(factory, attachment)
        if arrival_rate <= 0:
            raise ConfigurationError(f"arrival rate must be > 0, got {arrival_rate}")
        if concurrency_cap is not None and concurrency_cap < 1:
            raise ConfigurationError(f"concurrency cap must be >= 1, got {concurrency_cap}")
        self.arrival_rate = arrival_rate
        self.lifetimes = lifetimes
        self.concurrency_cap = concurrency_cap
        #: If true, the population present at install time also receives
        #: session lifetimes (instead of staying forever): the whole system
        #: churns, not just the newcomers.
        self.doom_initial = doom_initial
        self.rejected = 0

    def _start(self) -> None:
        if self.doom_initial:
            for pid in sorted(self.sim.network.present() - self.immortal):
                self._doom(pid, self.lifetimes.sample(self.rng))
        self._schedule_next_arrival()

    def _doom(self, pid: int, lifetime: float) -> None:
        def _depart() -> None:
            if self.sim.network.is_present(pid):
                self.sim.kill(pid)
                self.leaves += 1

        self._schedule(lifetime, _depart, f"churn:lifetime-leave:{pid}")

    def _schedule_next_arrival(self) -> None:
        gap = self.rng.expovariate(self.arrival_rate)
        self._schedule(gap, self._arrive, "churn:arrival")

    def _arrive(self) -> None:
        if not self.active_at(self.sim.now):
            return
        population = len(self.sim.network.present())
        if self.concurrency_cap is not None and population >= self.concurrency_cap:
            self.rejected += 1
        else:
            self._join_now(lifetime=self.lifetimes.sample(self.rng))
        self._schedule_next_arrival()

    def arrival_class(self) -> ArrivalClass:
        if self.concurrency_cap is not None:
            return InfiniteArrivalBounded(self.concurrency_cap)
        return InfiniteArrivalFinite()

    def __repr__(self) -> str:
        return (
            f"ArrivalDepartureChurn(rate={self.arrival_rate}, "
            f"lifetimes={self.lifetimes!r}, cap={self.concurrency_cap})"
        )


class ReplacementChurn(ChurnModel):
    """Constant-population churn: at rate ``rate`` a random member leaves
    and a fresh entity immediately joins in its place.

    This is the classical "churn rate c" model: the population size never
    changes but its composition turns over.  Runs belong to
    ``M_inf_bounded(n)`` where ``n`` is the installed population.
    """

    def __init__(
        self,
        factory: ProcessFactory,
        rate: float,
        attachment: AttachmentRule | None = None,
    ) -> None:
        super().__init__(factory, attachment)
        if rate < 0:
            raise ConfigurationError(f"churn rate must be >= 0, got {rate}")
        self.rate = rate
        self._n = 0

    def _start(self) -> None:
        self._n = len(self.sim.network.present())
        if self.rate > 0 and self._n > 0:
            self._schedule_next()

    def _schedule_next(self) -> None:
        gap = self.rng.expovariate(self.rate)
        self._schedule(gap, self._replace, "churn:replace")

    def _replace(self) -> None:
        if not self.active_at(self.sim.now):
            return
        if self._leave_random() is not None:
            self._join_now()
        self._schedule_next()

    def arrival_class(self) -> ArrivalClass:
        return InfiniteArrivalBounded(max(1, self._n))

    def __repr__(self) -> str:
        return f"ReplacementChurn(rate={self.rate})"


class FiniteArrivalChurn(ChurnModel):
    """Finitely many arrivals, then quiescence (``M_finite``).

    ``total_arrivals`` entities join at Poisson rate ``arrival_rate``; each
    may optionally leave after a session lifetime.  Once the last scheduled
    departure fires the membership never changes again.
    """

    def __init__(
        self,
        factory: ProcessFactory,
        total_arrivals: int,
        arrival_rate: float,
        lifetimes: LifetimeModel | None = None,
        attachment: AttachmentRule | None = None,
    ) -> None:
        super().__init__(factory, attachment)
        if total_arrivals < 0:
            raise ConfigurationError(f"total arrivals must be >= 0, got {total_arrivals}")
        if arrival_rate <= 0:
            raise ConfigurationError(f"arrival rate must be > 0, got {arrival_rate}")
        self.total_arrivals = total_arrivals
        self.arrival_rate = arrival_rate
        self.lifetimes = lifetimes
        self._remaining = total_arrivals

    def _start(self) -> None:
        if self._remaining > 0:
            self._schedule_next_arrival()

    def _schedule_next_arrival(self) -> None:
        gap = self.rng.expovariate(self.arrival_rate)
        self._schedule(gap, self._arrive, "churn:finite-arrival")

    def _arrive(self) -> None:
        if self._remaining <= 0 or not self.active_at(self.sim.now):
            return
        lifetime = self.lifetimes.sample(self.rng) if self.lifetimes else None
        self._join_now(lifetime=lifetime)
        self._remaining -= 1
        if self._remaining > 0:
            self._schedule_next_arrival()

    def arrival_class(self) -> ArrivalClass:
        return FiniteArrival()

    def __repr__(self) -> str:
        return (
            f"FiniteArrivalChurn(total={self.total_arrivals}, "
            f"rate={self.arrival_rate})"
        )


class PhasedChurn(ChurnModel):
    """Bursty churn: alternating storm and calm phases.

    During a storm, replacement churn runs at ``storm_rate``; during a calm
    phase nothing changes.  The phase structure models diurnal or flash-
    crowd population dynamics and is the regime in which *adaptive* query
    timing (defer until calm) beats fixed timing — the E15 experiment.
    """

    def __init__(
        self,
        factory: ProcessFactory,
        storm_rate: float,
        storm_length: float,
        calm_length: float,
        attachment: AttachmentRule | None = None,
        start_calm: bool = False,
    ) -> None:
        super().__init__(factory, attachment)
        if storm_rate <= 0:
            raise ConfigurationError(f"storm rate must be > 0, got {storm_rate}")
        if storm_length <= 0 or calm_length <= 0:
            raise ConfigurationError("phase lengths must be > 0")
        self.storm_rate = storm_rate
        self.storm_length = storm_length
        self.calm_length = calm_length
        self.start_calm = start_calm
        self._in_storm = not start_calm
        self._phase_ends = 0.0

    def in_storm(self) -> bool:
        """Whether a storm phase is currently active (omniscient view)."""
        return self._in_storm

    def _start(self) -> None:
        self._phase_ends = self.sim.now + (
            self.calm_length if self.start_calm else self.storm_length
        )
        self._schedule_phase_flip()
        if self._in_storm:
            self._schedule_next_replacement()

    def _schedule_phase_flip(self) -> None:
        delay = self._phase_ends - self.sim.now
        self._schedule(max(0.0, delay), self._flip_phase, "churn:phase-flip")

    def _flip_phase(self) -> None:
        if not self.active_at(self.sim.now):
            return
        self._in_storm = not self._in_storm
        length = self.storm_length if self._in_storm else self.calm_length
        self._phase_ends = self.sim.now + length
        self._schedule_phase_flip()
        if self._in_storm:
            self._schedule_next_replacement()

    def _schedule_next_replacement(self) -> None:
        gap = self.rng.expovariate(self.storm_rate)
        self._schedule(gap, self._replace, "churn:storm-replace")

    def _replace(self) -> None:
        if not self._in_storm or not self.active_at(self.sim.now):
            return
        if self._leave_random() is not None:
            self._join_now()
        self._schedule_next_replacement()

    def arrival_class(self) -> ArrivalClass:
        return InfiniteArrivalBounded(
            max(1, len(self.sim.network.present())) if self._sim else 1
        )

    def __repr__(self) -> str:
        return (
            f"PhasedChurn(storm_rate={self.storm_rate}, "
            f"storm={self.storm_length}, calm={self.calm_length})"
        )


class ScheduledChurn(ChurnModel):
    """Replays an explicit schedule of membership actions.

    The schedule is a list of ``(time, action)`` pairs where ``action`` is
    ``"join"`` (a fresh entity joins) or ``("leave", pid)``.  Used by unit
    tests and by adversary constructions that need exact control.
    """

    def __init__(
        self,
        factory: ProcessFactory,
        schedule: list[tuple[float, object]],
        attachment: AttachmentRule | None = None,
        arrival: ArrivalClass | None = None,
    ) -> None:
        super().__init__(factory, attachment)
        self.schedule = sorted(schedule, key=lambda item: item[0])
        self._declared_arrival = arrival

    def _start(self) -> None:
        for time, action in self.schedule:
            if time < self.sim.now:
                raise ConfigurationError(
                    f"scheduled churn action at {time} is in the past"
                )
            if action == "join":
                self.sim.at(
                    time,
                    lambda: self._join_now(),
                    priority=PRIORITY_MEMBERSHIP,
                    label="churn:scheduled-join",
                )
            elif isinstance(action, tuple) and action[0] == "leave":
                pid = action[1]
                self.sim.at(
                    time,
                    lambda pid=pid: self._scheduled_leave(pid),
                    priority=PRIORITY_MEMBERSHIP,
                    label="churn:scheduled-leave",
                )
            else:
                raise ConfigurationError(f"unknown churn action {action!r}")

    def _scheduled_leave(self, pid: int) -> None:
        if self.sim.network.is_present(pid):
            self.sim.kill(pid)
            self.leaves += 1

    def arrival_class(self) -> ArrivalClass:
        if self._declared_arrival is not None:
            return self._declared_arrival
        return FiniteArrival()

    def __repr__(self) -> str:
        return f"ScheduledChurn(actions={len(self.schedule)})"
