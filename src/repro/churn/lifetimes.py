"""Session-lifetime distributions.

The time an entity spends in the system before leaving.  Exponential
lifetimes give the memoryless baseline; Pareto lifetimes reproduce the
heavy-tailed sessions measured in deployed peer-to-peer systems (many brief
visitors, a few near-permanent members) — the shape the paper's motivation
appeals to.
"""

from __future__ import annotations

import abc
import random

from repro.sim.errors import ConfigurationError


class LifetimeModel(abc.ABC):
    """Draws a session length for each joining entity."""

    @abc.abstractmethod
    def sample(self, rng: random.Random) -> float:
        """Return a positive session length."""

    @abc.abstractmethod
    def mean(self) -> float:
        """The distribution mean (``inf`` if undefined)."""


class ConstantLifetime(LifetimeModel):
    """Every session lasts exactly ``length`` time units."""

    def __init__(self, length: float) -> None:
        if length <= 0:
            raise ConfigurationError(f"lifetime must be > 0, got {length}")
        self.length = length

    def sample(self, rng: random.Random) -> float:
        return self.length

    def mean(self) -> float:
        return self.length

    def __repr__(self) -> str:
        return f"ConstantLifetime({self.length})"


class ExponentialLifetime(LifetimeModel):
    """Memoryless sessions with the given mean."""

    def __init__(self, mean: float) -> None:
        if mean <= 0:
            raise ConfigurationError(f"mean lifetime must be > 0, got {mean}")
        self._mean = mean

    def sample(self, rng: random.Random) -> float:
        return rng.expovariate(1.0 / self._mean)

    def mean(self) -> float:
        return self._mean

    def __repr__(self) -> str:
        return f"ExponentialLifetime({self._mean})"


class UniformLifetime(LifetimeModel):
    """Sessions uniform in ``[low, high]``."""

    def __init__(self, low: float, high: float) -> None:
        if not 0 < low <= high:
            raise ConfigurationError(f"need 0 < low <= high, got [{low}, {high}]")
        self.low = low
        self.high = high

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)

    def mean(self) -> float:
        return (self.low + self.high) / 2

    def __repr__(self) -> str:
        return f"UniformLifetime({self.low}, {self.high})"


class ParetoLifetime(LifetimeModel):
    """Heavy-tailed sessions: ``P(L > x) = (xm / x)^alpha`` for ``x >= xm``.

    With ``alpha <= 1`` the mean is infinite — a small population of
    effectively permanent members, the empirically observed P2P shape.
    """

    def __init__(self, alpha: float, xm: float = 1.0) -> None:
        if alpha <= 0:
            raise ConfigurationError(f"alpha must be > 0, got {alpha}")
        if xm <= 0:
            raise ConfigurationError(f"scale xm must be > 0, got {xm}")
        self.alpha = alpha
        self.xm = xm

    def sample(self, rng: random.Random) -> float:
        # Inverse-CDF sampling; guard the (measure-zero) u == 0 draw.
        u = rng.random()
        while u <= 0.0:
            u = rng.random()
        return self.xm / u ** (1.0 / self.alpha)

    def mean(self) -> float:
        if self.alpha <= 1:
            return float("inf")
        return self.alpha * self.xm / (self.alpha - 1)

    def __repr__(self) -> str:
        return f"ParetoLifetime(alpha={self.alpha}, xm={self.xm})"
