"""Churn-model composition.

Real populations rarely follow one clean process: arrivals may be Poisson
while an operator also removes batches, or a flash crowd precedes steady
replacement.  These combinators build such schedules from the primitive
models without touching their internals.
"""

from __future__ import annotations

from repro.churn.models import ChurnModel
from repro.core.arrival import ArrivalClass
from repro.sim.errors import ConfigurationError
from repro.sim.scheduler import Simulator


class CompositeChurn(ChurnModel):
    """Runs several churn models concurrently on the same system.

    The composite's arrival class is the least upper bound of the parts'
    (the most dynamic part dominates).
    """

    def __init__(self, parts: list[ChurnModel]) -> None:
        if not parts:
            raise ConfigurationError("composite churn needs at least one part")
        # The composite never spawns by itself; factory/attachment are the
        # first part's (unused, but keeps the base-class contract).
        super().__init__(parts[0].factory, parts[0].attachment)
        self.parts = list(parts)

    def install(self, sim: Simulator, stop_at: float | None = None) -> None:
        super().install(sim, stop_at)
        for part in self.parts:
            part.immortal = self.immortal  # share the protected set
            part.install(sim, stop_at=stop_at)

    def _start(self) -> None:
        """The parts schedule themselves; nothing to do here."""

    @property
    def joins_total(self) -> int:
        return sum(part.joins for part in self.parts)

    @property
    def leaves_total(self) -> int:
        return sum(part.leaves for part in self.parts)

    def arrival_class(self) -> ArrivalClass:
        """A *sound* class for the concurrent composition.

        A part's concurrency bound does not survive composition (another
        part's arrivals raise the peak), so bounded parts degrade to
        ``M_inf_finite``; only compositions of finite-arrival parts stay
        finite, and any unbounded part makes the whole unbounded.
        """
        from repro.core.arrival import (
            FiniteArrival,
            InfiniteArrivalBounded,
            InfiniteArrivalFinite,
            InfiniteArrivalUnbounded,
            StaticArrival,
        )

        classes = [part.arrival_class() for part in self.parts]
        if any(isinstance(c, InfiniteArrivalUnbounded) for c in classes):
            return InfiniteArrivalUnbounded()
        if any(
            isinstance(c, (InfiniteArrivalBounded, InfiniteArrivalFinite))
            for c in classes
        ):
            return InfiniteArrivalFinite()
        if all(isinstance(c, (StaticArrival, FiniteArrival)) for c in classes):
            return FiniteArrival()
        return InfiniteArrivalUnbounded()

    def __repr__(self) -> str:
        return f"CompositeChurn({self.parts!r})"


class SequentialChurn(ChurnModel):
    """Runs churn models one after another, each for a fixed duration.

    ``phases`` is a list of ``(model, duration)`` pairs; each model is
    installed when its phase starts and frozen (via ``stop_at``) when the
    phase ends.  The last phase may have ``duration=None`` (runs forever).
    """

    def __init__(self, phases: list[tuple[ChurnModel, float | None]]) -> None:
        if not phases:
            raise ConfigurationError("sequential churn needs at least one phase")
        for index, (_, duration) in enumerate(phases):
            last = index == len(phases) - 1
            if duration is None and not last:
                raise ConfigurationError(
                    "only the final phase may be open-ended"
                )
            if duration is not None and duration <= 0:
                raise ConfigurationError(
                    f"phase duration must be > 0, got {duration}"
                )
        super().__init__(phases[0][0].factory, phases[0][0].attachment)
        self.phases = list(phases)
        self.current_phase = -1

    def _start(self) -> None:
        self._begin_phase(0)

    def _begin_phase(self, index: int) -> None:
        if index >= len(self.phases):
            return
        self.current_phase = index
        model, duration = self.phases[index]
        model.immortal = self.immortal
        stop = None if duration is None else self.sim.now + duration
        if self._stop_at is not None:
            stop = self._stop_at if stop is None else min(stop, self._stop_at)
        model.install(self.sim, stop_at=stop)
        if duration is not None:
            self._schedule(duration, lambda: self._begin_phase(index + 1),
                           f"churn:phase-{index + 1}")

    def arrival_class(self) -> ArrivalClass:
        classes = [model.arrival_class() for model, _ in self.phases]
        top = classes[0]
        for candidate in classes[1:]:
            if top <= candidate:
                top = candidate
            elif not candidate <= top:
                from repro.core.arrival import InfiniteArrivalUnbounded

                return InfiniteArrivalUnbounded()
        return top

    def __repr__(self) -> str:
        return f"SequentialChurn(phases={len(self.phases)})"
