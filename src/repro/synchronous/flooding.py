"""Knowledge flooding in the synchronous model.

The paper's one-shot framing of the query problem, undressed: every round,
every process tells its neighbors everything it knows; after ``R`` rounds
the querier aggregates what it has heard.  In a static graph the querier
knows exactly the values within ``R`` hops, so the query is complete iff
``R >= eccentricity(querier)`` — the knowledge-of-the-diameter requirement
in its purest form (E20a).

Between-round churn restates the impossibility natively: an adversary that
extends a chain by one process per round keeps the frontier exactly one
hop ahead of the flood forever (E20b).
"""

from __future__ import annotations

from typing import Any

from repro.core.aggregates import Aggregate
from repro.synchronous.runner import RoundMessage, SyncProcess


class KnowledgeFlood(SyncProcess):
    """Floods (pid, value) knowledge to all neighbors every round.

    ``send_deltas`` sends only newly learned pairs (the practical variant);
    turning it off re-sends everything (the textbook variant).  Both learn
    identical knowledge; only the message complexity differs.
    """

    def __init__(self, value: Any = None, send_deltas: bool = True) -> None:
        super().__init__(value)
        self.send_deltas = send_deltas
        self.known: dict[int, Any] = {}
        self._fresh: dict[int, Any] = {}

    def on_init(self) -> None:
        self.known = {self.pid: self.value}
        self._fresh = dict(self.known)

    def send(self, round_no: int) -> dict[int, Any]:
        if self.send_deltas:
            outgoing = sorted(self._fresh.items())
            self._fresh = {}
        else:
            outgoing = sorted(self.known.items())
        if not outgoing:
            return {}
        return {neighbor: outgoing for neighbor in self.neighbors}

    def receive(self, round_no: int, inbox: list[RoundMessage]) -> None:
        for message in inbox:
            for pid, value in message.payload:
                if pid not in self.known:
                    self.known[pid] = value
                    self._fresh[pid] = value

    def aggregate(self, aggregate: Aggregate) -> Any:
        """Aggregate everything this process currently knows."""
        return aggregate.of(
            self.known[pid] for pid in sorted(self.known)
        )

    def coverage_of(self, population: frozenset[int]) -> float:
        """Fraction of ``population`` whose values this process knows."""
        if not population:
            return 1.0
        return len(population & set(self.known)) / len(population)
