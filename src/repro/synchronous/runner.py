"""The synchronous-rounds execution model.

The paper's native framing: computation proceeds in lock-step rounds with
the textbook two-phase structure — every process first *sends* messages
computed from its pre-round state, then *receives* everything its
neighbors sent in the same round.  Information therefore travels exactly
one hop per round.  Between rounds the adversary may change the system —
add or remove processes, rewire edges — which is exactly the "dynamic
network" round model the impossibility arguments live in.

This runner is independent of the discrete-event simulator: no clocks, no
delays — a round *is* the unit of time.  Use it when a claim is about
round counts (e.g. "R rounds of flooding reach everything within R hops");
use the DES (:mod:`repro.sim`) when it is about real time, latency or
asynchrony.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass
from typing import Any, Callable

from repro.sim.errors import ConfigurationError, MembershipError
from repro.topology.graph import Topology


@dataclass(frozen=True)
class RoundMessage:
    """A message delivered at the start of a round."""

    sender: int
    payload: Any


class SyncProcess(abc.ABC):
    """A process in the synchronous model.

    Each round the runner calls :meth:`send` (compute outgoing payloads
    from the pre-round state) on every process, then :meth:`receive` with
    everything the neighbors sent this round.  ``self.neighbors`` is
    refreshed before the send phase, reflecting between-round topology
    changes.
    """

    def __init__(self, value: Any = None) -> None:
        self.pid: int = -1
        self.value = value
        self.neighbors: frozenset[int] = frozenset()

    def on_init(self) -> None:
        """Called once when the process enters the system."""

    @abc.abstractmethod
    def send(self, round_no: int) -> dict[int, Any]:
        """Return ``{neighbor: payload}`` computed from pre-round state."""

    @abc.abstractmethod
    def receive(self, round_no: int, inbox: list[RoundMessage]) -> None:
        """Update state with this round's incoming messages."""


#: Between-round adversary hook: may mutate the system before the round.
RoundHook = Callable[[int, "SynchronousSystem"], None]


class SynchronousSystem:
    """Runs :class:`SyncProcess` objects in lock-step rounds."""

    def __init__(self, seed: int = 0) -> None:
        self._processes: dict[int, SyncProcess] = {}
        self._topology = Topology()
        self._pid_counter = 0
        self.round_no = 0
        self.rng = random.Random(seed)
        self.messages_sent = 0

    # ------------------------------------------------------------------
    # Construction / adversary actions
    # ------------------------------------------------------------------

    def add_process(self, proc: SyncProcess, neighbors: list[int] = ()) -> int:
        """Insert a process connected to ``neighbors``; returns its pid."""
        pid = self._pid_counter
        self._pid_counter += 1
        proc.pid = pid
        self._topology.add_node(pid)
        for neighbor in neighbors:
            if neighbor not in self._processes:
                raise MembershipError(f"cannot attach to absent {neighbor}")
            self._topology.add_edge(pid, neighbor)
        self._processes[pid] = proc
        proc.neighbors = self._topology.neighbors(pid)
        proc.on_init()
        return pid

    def remove_process(self, pid: int) -> None:
        """Remove ``pid``; its queued messages vanish with it."""
        if pid not in self._processes:
            raise MembershipError(f"process {pid} is not present")
        del self._processes[pid]
        self._topology.remove_node(pid)

    def add_edge(self, a: int, b: int) -> None:
        if a not in self._processes or b not in self._processes:
            raise MembershipError(f"both endpoints of ({a}, {b}) must exist")
        self._topology.add_edge(a, b)

    def remove_edge(self, a: int, b: int) -> None:
        self._topology.remove_edge(a, b)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    def present(self) -> frozenset[int]:
        return frozenset(self._processes)

    def process(self, pid: int) -> SyncProcess:
        try:
            return self._processes[pid]
        except KeyError:
            raise MembershipError(f"process {pid} is not present") from None

    def topology(self) -> Topology:
        return self._topology.copy()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run_round(self, before_round: RoundHook | None = None) -> None:
        """Execute one lock-step round (send phase, then receive phase)."""
        self.round_no += 1
        if before_round is not None:
            before_round(self.round_no, self)
        # Refresh neighbor views after any adversary mutation.
        for pid, proc in self._processes.items():
            proc.neighbors = self._topology.neighbors(pid)
        # Send phase: all outboxes computed from pre-round state.
        inboxes: dict[int, list[RoundMessage]] = {
            pid: [] for pid in self._processes
        }
        for pid in sorted(self._processes):
            proc = self._processes[pid]
            sends = proc.send(self.round_no) or {}
            for dest, payload in sends.items():
                if dest not in proc.neighbors:
                    raise ConfigurationError(
                        f"process {pid} sent to non-neighbor {dest}"
                    )
                inboxes[dest].append(RoundMessage(sender=pid, payload=payload))
                self.messages_sent += 1
        # Receive phase: everyone consumes this round's messages.
        for pid in sorted(self._processes):
            self._processes[pid].receive(self.round_no, inboxes[pid])

    def run(self, rounds: int, before_round: RoundHook | None = None) -> None:
        """Execute ``rounds`` lock-step rounds."""
        if rounds < 0:
            raise ConfigurationError(f"rounds must be >= 0, got {rounds}")
        for _ in range(rounds):
            self.run_round(before_round)


def build_from_topology(
    system: SynchronousSystem,
    topo: Topology,
    make_process: Callable[[int], SyncProcess],
) -> list[int]:
    """Populate a system from a static topology over nodes 0..n-1."""
    pids = []
    for node in sorted(topo.nodes()):
        neighbors = [p for p in topo.neighbors(node) if p < node]
        pids.append(system.add_process(make_process(node), neighbors))
    return pids
