"""Synchronous-rounds execution model (the paper's native framing)."""

from repro.synchronous.flooding import KnowledgeFlood
from repro.synchronous.runner import (
    RoundMessage,
    SyncProcess,
    SynchronousSystem,
    build_from_topology,
)

__all__ = [
    "KnowledgeFlood",
    "RoundMessage",
    "SyncProcess",
    "SynchronousSystem",
    "build_from_topology",
]
