"""Message objects exchanged by simulated processes."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

#: Global message id counter; ids are unique within a Python process, which
#: is sufficient because a Simulator never mixes messages across simulations.
_message_ids = itertools.count()


@dataclass(frozen=True, slots=True)
class Message:
    """An immutable protocol message.

    Attributes:
        sender: entity id of the sending process.
        receiver: entity id of the destination process.
        kind: protocol-level message type tag (e.g. ``"QUERY"``).
        payload: arbitrary immutable protocol data (dict by convention).
        msg_id: unique id, used for tracing and duplicate accounting.
    """

    sender: int
    receiver: int
    kind: str
    payload: dict[str, Any] = field(default_factory=dict)
    msg_id: int = field(default_factory=lambda: next(_message_ids))

    def reply(self, kind: str, payload: dict[str, Any] | None = None) -> "Message":
        """Build a response message addressed back to the sender."""
        return Message(
            sender=self.receiver,
            receiver=self.sender,
            kind=kind,
            payload=payload or {},
        )

    def __str__(self) -> str:
        return f"{self.kind}#{self.msg_id} {self.sender}->{self.receiver}"
