"""Exception hierarchy for the simulation substrate.

Every error raised by :mod:`repro.sim` derives from :class:`SimulationError`
so callers can catch simulator trouble without masking unrelated bugs.
"""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for all simulator errors."""


class SchedulingError(SimulationError):
    """An event was scheduled incorrectly (e.g. in the past)."""


class MembershipError(SimulationError):
    """An operation referenced a process that is not (or already is) present."""


class TopologyError(SimulationError):
    """An operation violated the communication topology (e.g. sending to a
    process that is not a neighbor under neighbor-only knowledge)."""


class ProtocolError(SimulationError):
    """A protocol implementation violated the node API contract."""


class ConfigurationError(SimulationError):
    """A simulation component was configured with invalid parameters."""
