"""Event queues for the discrete-event simulator.

Ordering is total and deterministic: events fire by ``(time, priority,
sequence)``, so two events scheduled for the same instant fire in
scheduling order and simulations are exactly reproducible for a given
seed.

Two interchangeable implementations honour that contract:

* :class:`HeapEventQueue` — a binary heap, O(log n) per operation.  Best
  at the population sizes the seed experiments run at (n ≈ 32).
* :class:`CalendarEventQueue` — a bucketed calendar queue, O(1) amortised
  per operation.  Wins once the pending-event population reaches the
  thousands (n ≈ 10⁴–10⁵ entities with one timer each).

:class:`EventQueue` — the type the simulator actually uses — starts as a
heap and migrates to a calendar queue when the live-event count crosses
:data:`CALENDAR_THRESHOLD`.  The switch is unobservable: both backends
pop in the identical total order (proven by the differential suite in
``tests/sim/test_event_ordering_differential.py``).

Cancellation is cooperative and lazy (:meth:`Event.cancel` just sets a
flag), but not leaky: both backends count tombstones and compact their
storage once cancelled-but-unpopped entries outnumber live ones, so
memory stays proportional to the live event count.
"""

from __future__ import annotations

import heapq
import itertools
from bisect import insort
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.sim.errors import SchedulingError

#: Default priority for ordinary events.
PRIORITY_NORMAL = 0
#: Priority for membership changes; they fire before message deliveries
#: scheduled at the same instant so a leave at time t suppresses deliveries
#: at time t (the adversary controls ties).
PRIORITY_MEMBERSHIP = -1
#: Priority for bookkeeping that must run after everything else at an instant.
PRIORITY_LATE = 1

#: Live-event count above which the adaptive :class:`EventQueue` migrates
#: from the binary heap to the calendar queue.  Seed-scale experiments
#: (n ≈ 32, a few hundred pending events) never cross it, so their
#: execution path — and therefore their result documents — are untouched.
CALENDAR_THRESHOLD = 2048

#: Tombstone compaction floor: below this many cancelled entries the
#: queues do not bother rebuilding storage.
_COMPACT_FLOOR = 64


@dataclass(order=True, slots=True)
class Event:
    """A scheduled callback.

    Attributes:
        time: simulation time at which the event fires.
        priority: tie-break between events at the same instant (lower first).
        seq: global sequence number; makes ordering total.
        action: zero-argument callable executed when the event fires.
        label: human-readable tag used in traces and debugging.
        cancelled: cooperatively-cancelled events are skipped when popped.
    """

    time: float
    priority: int
    seq: int
    action: Callable[[], Any] = field(compare=False)
    label: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark this event so the scheduler skips it."""
        self.cancelled = True


class HeapEventQueue:
    """Binary-heap event queue: O(log n) push/pop.

    This is the seed implementation, unchanged in behaviour, plus
    tombstone accounting so cancellations cannot leak memory.
    """

    def __init__(self, counter: Iterator[int] | None = None) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count() if counter is None else counter
        self._live = 0
        self._tombstones = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def storage_size(self) -> int:
        """Number of entries physically held (live + tombstones)."""
        return len(self._heap)

    def push(
        self,
        time: float,
        action: Callable[[], Any],
        *,
        priority: int = PRIORITY_NORMAL,
        label: str = "",
    ) -> Event:
        """Schedule ``action`` at ``time`` and return the event handle."""
        if time != time:  # NaN guard
            raise SchedulingError("event time is NaN")
        event = Event(time, priority, next(self._counter), action, label)
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def pop(self) -> Event:
        """Remove and return the earliest live event.

        Raises:
            SchedulingError: if the queue is empty.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                if self._tombstones:
                    self._tombstones -= 1
                continue
            self._live -= 1
            return event
        raise SchedulingError("pop from empty event queue")

    def peek_time(self) -> float | None:
        """Return the firing time of the earliest live event, or ``None``."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
            if self._tombstones:
                self._tombstones -= 1
        return self._heap[0].time if self._heap else None

    def note_cancelled(self) -> None:
        """Account for an event cancelled through its handle.

        :meth:`Event.cancel` does not know about the queue, so the scheduler
        calls this to keep ``len()`` accurate.  Once tombstones outnumber
        live events (i.e. exceed half the heap) the storage is compacted.
        """
        if self._live > 0:
            self._live -= 1
            self._tombstones += 1
            if self._tombstones > max(self._live, _COMPACT_FLOOR):
                self.compact()

    def compact(self) -> None:
        """Drop cancelled entries and re-heapify; memory stays O(live)."""
        self._heap = [event for event in self._heap if not event.cancelled]
        heapq.heapify(self._heap)
        self._tombstones = 0

    def drain_live(self) -> list[Event]:
        """Remove and return every live event (used for backend migration)."""
        heap, self._heap = self._heap, []
        self._live = 0
        self._tombstones = 0
        return [event for event in heap if not event.cancelled]

    def clear(self) -> None:
        """Drop every pending event."""
        self._heap.clear()
        self._live = 0
        self._tombstones = 0


class CalendarEventQueue:
    """Bucketed calendar queue: O(1) amortised push/pop at scale.

    Events hash into fixed-width time buckets (``bucket = ⌊time/width⌋ mod
    nbuckets``); each bucket stays sorted, so a pop walks the calendar one
    "day" at a time and takes the front of the current bucket.  The bucket
    count doubles/halves and the width is re-estimated from the live event
    spacing whenever occupancy drifts, keeping a handful of events per
    bucket.

    The pop order is the same total order as the heap — ``(time, priority,
    seq)`` — because same-instant events always share a bucket (identical
    times hash identically) and the in-bucket sort uses the full key.
    """

    MIN_BUCKETS = 16

    def __init__(self, counter: Iterator[int] | None = None) -> None:
        self._counter = itertools.count() if counter is None else counter
        self._width = 1.0
        self._nbuckets = self.MIN_BUCKETS
        self._mask = self._nbuckets - 1
        self._buckets: list[list[Event]] = [[] for _ in range(self._nbuckets)]
        self._live = 0
        self._tombstones = 0
        #: Virtual bucket index (``⌊time/width⌋``, *not* reduced modulo
        #: nbuckets) of the scan cursor.  Inserts behind the cursor pull it
        #: back, so the forward scan can never miss an event.
        self._vcur = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def storage_size(self) -> int:
        """Number of entries physically held (live + tombstones)."""
        return self._live + self._tombstones

    # -- construction ---------------------------------------------------

    def _rebuild(self, events: list[Event]) -> None:
        """Re-bucket ``events`` with a width fitted to their spacing."""
        count = len(events)
        nbuckets = self.MIN_BUCKETS
        while nbuckets < count:
            nbuckets *= 2
        if count >= 2:
            times = sorted(event.time for event in events)
            span = times[-1] - times[0]
            width = (2.0 * span / count) if span > 0.0 else 1.0
            width = max(width, 1e-9)
        else:
            width = 1.0
        self._width = width
        self._nbuckets = nbuckets
        self._mask = nbuckets - 1
        self._buckets = [[] for _ in range(nbuckets)]
        self._live = 0
        self._tombstones = 0
        self._vcur = int(min((e.time for e in events), default=0.0) / width)
        for event in events:
            self._insert(event)

    def _insert(self, event: Event) -> None:
        v = int(event.time / self._width)
        insort(self._buckets[v & self._mask], event)
        if v < self._vcur:
            self._vcur = v
        self._live += 1

    def _maybe_resize(self) -> None:
        if self._live > 2 * self._nbuckets or (
            self._nbuckets > self.MIN_BUCKETS and self._live < self._nbuckets // 4
        ):
            self._rebuild(
                [e for b in self._buckets for e in b if not e.cancelled]
            )

    # -- queue API ------------------------------------------------------

    def push(
        self,
        time: float,
        action: Callable[[], Any],
        *,
        priority: int = PRIORITY_NORMAL,
        label: str = "",
    ) -> Event:
        """Schedule ``action`` at ``time`` and return the event handle."""
        if time != time:  # NaN guard
            raise SchedulingError("event time is NaN")
        event = Event(time, priority, next(self._counter), action, label)
        self._insert(event)
        if self._live > 2 * self._nbuckets:
            self._maybe_resize()
        return event

    def _scan(self, remove: bool) -> Event:
        """Find (and optionally remove) the earliest live event.

        Walks forward from the cursor for at most one calendar rotation;
        if nothing lands inside its own "day" (sparse far-future events),
        falls back to a direct min over the bucket fronts.
        """
        width = self._width
        v = self._vcur
        for _ in range(self._nbuckets):
            bucket = self._buckets[v & self._mask]
            while bucket and bucket[0].cancelled:
                del bucket[0]
                self._tombstones -= 1
            if bucket:
                event = bucket[0]
                if int(event.time / width) == v:
                    self._vcur = v
                    if remove:
                        del bucket[0]
                        self._live -= 1
                    return event
            v += 1
        best: Event | None = None
        for bucket in self._buckets:
            while bucket and bucket[0].cancelled:
                del bucket[0]
                self._tombstones -= 1
            if bucket and (best is None or bucket[0] < best):
                best = bucket[0]
        if best is None:  # pragma: no cover - guarded by _live checks
            raise SchedulingError("pop from empty event queue")
        self._vcur = int(best.time / width)
        if remove:
            del self._buckets[self._vcur & self._mask][0]
            self._live -= 1
        return best

    def pop(self) -> Event:
        """Remove and return the earliest live event.

        Raises:
            SchedulingError: if the queue is empty.
        """
        if self._live == 0:
            raise SchedulingError("pop from empty event queue")
        event = self._scan(remove=True)
        if self._nbuckets > self.MIN_BUCKETS and self._live < self._nbuckets // 4:
            self._maybe_resize()
        return event

    def peek_time(self) -> float | None:
        """Return the firing time of the earliest live event, or ``None``."""
        if self._live == 0:
            return None
        return self._scan(remove=False).time

    def note_cancelled(self) -> None:
        """Account for an event cancelled through its handle; compact the
        buckets once tombstones outnumber live events."""
        if self._live > 0:
            self._live -= 1
            self._tombstones += 1
            if self._tombstones > max(self._live, _COMPACT_FLOOR):
                self.compact()

    def compact(self) -> None:
        """Drop cancelled entries; memory stays O(live)."""
        for bucket in self._buckets:
            if bucket:
                bucket[:] = [e for e in bucket if not e.cancelled]
        self._tombstones = 0

    def clear(self) -> None:
        """Drop every pending event."""
        self._buckets = [[] for _ in range(self._nbuckets)]
        self._live = 0
        self._tombstones = 0
        self._vcur = 0


class EventQueue:
    """A deterministic priority queue of :class:`Event` objects.

    Adaptive: starts on the binary heap and migrates to the calendar
    queue — same total order, proven by the differential suite — once the
    live-event count exceeds ``calendar_threshold``.  Pass
    ``calendar_threshold=None`` to pin the heap backend.

    The hot-path methods (``push``/``pop``/``peek_time``/``note_cancelled``)
    are rebound to the backend's bound methods after migration, so the
    facade adds no steady-state indirection.
    """

    def __init__(self, calendar_threshold: int | None = CALENDAR_THRESHOLD) -> None:
        self._counter = itertools.count()
        self._impl: HeapEventQueue | CalendarEventQueue = HeapEventQueue(
            counter=self._counter
        )
        self._threshold = calendar_threshold
        self.pop = self._impl.pop
        self.peek_time = self._impl.peek_time
        self.note_cancelled = self._impl.note_cancelled

    def __len__(self) -> int:
        return len(self._impl)

    def __bool__(self) -> bool:
        return self._impl._live > 0

    @property
    def backend(self) -> str:
        """Active backend name: ``"heap"`` or ``"calendar"``."""
        return "calendar" if isinstance(self._impl, CalendarEventQueue) else "heap"

    def storage_size(self) -> int:
        """Number of entries physically held (live + tombstones)."""
        return self._impl.storage_size()

    def push(
        self,
        time: float,
        action: Callable[[], Any],
        *,
        priority: int = PRIORITY_NORMAL,
        label: str = "",
    ) -> Event:
        """Schedule ``action`` at ``time`` and return the event handle."""
        event = self._impl.push(time, action, priority=priority, label=label)
        if self._threshold is not None and self._impl._live > self._threshold:
            self._promote()
        return event

    def _promote(self) -> None:
        """Migrate the heap's live events into a calendar queue."""
        assert isinstance(self._impl, HeapEventQueue)
        live = self._impl.drain_live()
        calendar = CalendarEventQueue(counter=self._counter)
        calendar._rebuild(live)
        self._impl = calendar
        # Rebind the hot path straight to the backend; push can too, since
        # promotion is one-way.
        self.push = calendar.push  # type: ignore[method-assign]
        self.pop = calendar.pop
        self.peek_time = calendar.peek_time
        self.note_cancelled = calendar.note_cancelled

    def clear(self) -> None:
        """Drop every pending event."""
        self._impl.clear()
