"""Event queue for the discrete-event simulator.

The queue is a binary heap ordered by ``(time, priority, sequence)``.  The
sequence number makes ordering total and deterministic: two events scheduled
for the same instant fire in scheduling order, so simulations are exactly
reproducible for a given seed.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.sim.errors import SchedulingError

#: Default priority for ordinary events.
PRIORITY_NORMAL = 0
#: Priority for membership changes; they fire before message deliveries
#: scheduled at the same instant so a leave at time t suppresses deliveries
#: at time t (the adversary controls ties).
PRIORITY_MEMBERSHIP = -1
#: Priority for bookkeeping that must run after everything else at an instant.
PRIORITY_LATE = 1


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Attributes:
        time: simulation time at which the event fires.
        priority: tie-break between events at the same instant (lower first).
        seq: global sequence number; makes ordering total.
        action: zero-argument callable executed when the event fires.
        label: human-readable tag used in traces and debugging.
        cancelled: cooperatively-cancelled events are skipped when popped.
    """

    time: float
    priority: int
    seq: int
    action: Callable[[], Any] = field(compare=False)
    label: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark this event so the scheduler skips it."""
        self.cancelled = True


class EventQueue:
    """A deterministic priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(
        self,
        time: float,
        action: Callable[[], Any],
        *,
        priority: int = PRIORITY_NORMAL,
        label: str = "",
    ) -> Event:
        """Schedule ``action`` at ``time`` and return the event handle."""
        if time != time:  # NaN guard
            raise SchedulingError("event time is NaN")
        event = Event(time, priority, next(self._counter), action, label)
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def pop(self) -> Event:
        """Remove and return the earliest live event.

        Raises:
            SchedulingError: if the queue is empty.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            return event
        raise SchedulingError("pop from empty event queue")

    def peek_time(self) -> float | None:
        """Return the firing time of the earliest live event, or ``None``."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def note_cancelled(self) -> None:
        """Account for an event cancelled through its handle.

        :meth:`Event.cancel` does not know about the queue, so the scheduler
        calls this to keep ``len()`` accurate.
        """
        if self._live > 0:
            self._live -= 1

    def clear(self) -> None:
        """Drop every pending event."""
        self._heap.clear()
        self._live = 0
