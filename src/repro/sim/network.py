"""Membership and message transport.

The :class:`Network` owns the two facts the paper's two dimensions talk
about: *who is present* (the entity dimension) and *who can talk to whom*
(the geography dimension).  Processes interact with it only through
:class:`repro.sim.node.Process` actions, so protocol code cannot cheat and
peek at global state.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Iterable

from repro.sim import trace as tr
from repro.sim.errors import MembershipError, TopologyError
from repro.sim.events import PRIORITY_NORMAL
from repro.sim.latency import DelayModel, LossModel, NoLoss, UniformDelay
from repro.sim.messages import Message
from repro.sim.node import Process

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.scheduler import Simulator

#: Bucket bounds for the deliveries-by-hop-count histogram (wave depths,
#: flood frontiers); roughly Fibonacci so both shallow and deep networks
#: resolve.
HOP_BUCKETS = (1.0, 2.0, 3.0, 5.0, 8.0, 13.0, 21.0, 34.0)


class Network:
    """Tracks present processes, their links, and in-flight messages.

    Args:
        sim: owning simulator.
        delay_model: per-message transmission delay distribution.
        loss_model: per-message drop decision.
        complete: if ``True`` the communication graph is always complete
            (the ``G_complete`` knowledge class); explicit edges are ignored.
    """

    def __init__(
        self,
        sim: "Simulator",
        delay_model: DelayModel | None = None,
        loss_model: LossModel | None = None,
        complete: bool = False,
        fifo: bool = False,
        notify_leaves: bool = True,
    ) -> None:
        self._sim = sim
        self.delay_model = delay_model or UniformDelay()
        self.loss_model = loss_model or NoLoss()
        self.complete = complete
        #: When False, departures are *silent*: neighbors get no
        #: ``on_neighbor_leave`` callback and must infer the crash from
        #: silence (failure detection).  This removes the perfect-detector
        #: assumption the default model makes.
        self.notify_leaves = notify_leaves
        #: FIFO channels: deliveries on each directed (sender, receiver)
        #: pair never overtake earlier ones, even when the sampled delays
        #: would reorder them.
        self.fifo = fifo
        self._last_delivery: dict[tuple[int, int], float] = {}
        #: The fault plane's single interposition point: when set (by
        #: :meth:`repro.faults.injector.FaultInjector.install`), every
        #: accepted message is offered to ``fault_injector.send_effect``,
        #: which may drop, delay or duplicate it.  ``None`` means faults
        #: are structurally absent — no extra branches, draws or events.
        self.fault_injector = None
        #: The resilience plane's interposition point: when set (by
        #: :meth:`repro.resilience.transport.ReliableTransport.install`),
        #: outbound messages may be wrapped with a session id and armed
        #: with retransmission timers, and inbound messages are
        #: acknowledged and deduplicated before the protocol sees them.
        #: ``None`` means the recovery layer is structurally absent.
        self.resilience = None
        self._processes: dict[int, Process] = {}
        self._adjacency: dict[int, set[int]] = {}
        self._edge_delays: dict[tuple[int, int], DelayModel] = {}
        # Simulation-local message ids keep traces reproducible regardless
        # of how many messages other simulations in this Python process
        # have created.
        self._msg_ids = itertools.count()

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    def present(self) -> frozenset[int]:
        """Ids of processes currently in the system (omniscient view —
        available to the analysis layer, never to protocol code)."""
        return frozenset(self._processes)

    def process(self, pid: int) -> Process:
        """Return the live process object for ``pid``."""
        try:
            return self._processes[pid]
        except KeyError:
            raise MembershipError(f"process {pid} is not present") from None

    def is_present(self, pid: int) -> bool:
        return pid in self._processes

    def add_process(self, proc: Process, neighbors: Iterable[int] = ()) -> None:
        """Insert ``proc`` and connect it to ``neighbors``.

        The caller (simulator/churn model) must have assigned ``proc.pid``.
        """
        pid = proc.pid
        if pid in self._processes:
            raise MembershipError(f"process {pid} is already present")
        neighbor_ids = set(neighbors)
        missing = neighbor_ids - set(self._processes)
        if missing:
            raise MembershipError(
                f"cannot attach {pid} to absent processes {sorted(missing)}"
            )
        self._processes[pid] = proc
        self._adjacency[pid] = set()
        for other in sorted(neighbor_ids):
            self._link(pid, other)
        self._sim.metrics.inc("membership.joins")
        self._sim.trace.record(
            self._sim.now, tr.JOIN, entity=pid, degree=len(neighbor_ids),
            value=getattr(proc, "value", None),
            neighbors=tuple(sorted(neighbor_ids)),
        )
        proc._alive = True
        proc.on_start()
        # In complete mode every present process is a neighbor of the
        # newcomer, so everyone learns of the join.
        to_notify = (
            set(self._processes) - {pid} if self.complete else neighbor_ids
        )
        for other in sorted(to_notify):
            if other in self._processes:  # may have left during callbacks
                self._processes[other].on_neighbor_join(pid)

    def remove_process(self, pid: int) -> Process:
        """Remove ``pid`` from the system; in-flight messages to it drop."""
        proc = self.process(pid)
        proc._alive = False
        proc.on_stop()
        if self.complete:
            former_neighbors = sorted(set(self._processes) - {pid})
        else:
            former_neighbors = sorted(self._adjacency.get(pid, ()))
        for other in former_neighbors:
            self._adjacency[other].discard(pid)
        del self._adjacency[pid]
        del self._processes[pid]
        self._sim.metrics.inc("membership.leaves")
        self._sim.trace.record(self._sim.now, tr.LEAVE, entity=pid)
        if self.notify_leaves:
            for other in former_neighbors:
                if other in self._processes:
                    self._processes[other].on_neighbor_leave(pid)
        return proc

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------

    def neighbors(self, pid: int) -> frozenset[int]:
        """Current neighbor set of ``pid``."""
        if pid not in self._processes:
            raise MembershipError(f"process {pid} is not present")
        if self.complete:
            return frozenset(p for p in self._processes if p != pid)
        return frozenset(self._adjacency[pid])

    def _link(self, a: int, b: int) -> None:
        if a == b:
            raise TopologyError(f"self-loop on process {a}")
        self._adjacency[a].add(b)
        self._adjacency[b].add(a)

    def add_edge(self, a: int, b: int) -> None:
        """Create a link between two present processes (dynamic topology)."""
        if a not in self._processes or b not in self._processes:
            raise MembershipError(f"both endpoints of ({a}, {b}) must be present")
        if b in self._adjacency[a]:
            return
        self._link(a, b)
        self._sim.trace.record(self._sim.now, "edge_up", a=min(a, b), b=max(a, b))
        self._processes[a].on_neighbor_join(b)
        self._processes[b].on_neighbor_join(a)

    def remove_edge(self, a: int, b: int) -> None:
        """Drop the link between ``a`` and ``b`` (dynamic topology)."""
        if a not in self._processes or b not in self._processes:
            raise MembershipError(f"both endpoints of ({a}, {b}) must be present")
        if b not in self._adjacency[a]:
            return
        self._adjacency[a].discard(b)
        self._adjacency[b].discard(a)
        self._sim.trace.record(self._sim.now, "edge_down", a=min(a, b), b=max(a, b))
        self._processes[a].on_neighbor_leave(b)
        self._processes[b].on_neighbor_leave(a)

    def edges(self) -> set[tuple[int, int]]:
        """All current links as sorted pairs (analysis-layer view)."""
        return {
            (min(a, b), max(a, b))
            for a, nbrs in self._adjacency.items()
            for b in nbrs
        }

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------

    def set_edge_delay(self, a: int, b: int, model: DelayModel) -> None:
        """Override the delay model on one link (adversary constructions)."""
        self._edge_delays[(min(a, b), max(a, b))] = model

    def _delay_for(self, a: int, b: int) -> DelayModel:
        return self._edge_delays.get((min(a, b), max(a, b)), self.delay_model)

    def send(self, message: Message) -> None:
        """Accept a message for delivery.

        Enforces the geography constraint: the receiver must be a current
        neighbor of the sender (unless the graph is complete).
        """
        sender, receiver = message.sender, message.receiver
        if sender not in self._processes:
            raise MembershipError(f"sender {sender} is not present")
        if not self.complete and receiver not in self._adjacency[sender]:
            raise TopologyError(
                f"process {sender} cannot reach {receiver}: not a neighbor"
            )
        if self.complete and (receiver == sender or receiver not in self._processes):
            raise TopologyError(f"process {sender} cannot reach {receiver}")
        if self.resilience is not None:
            # The recovery layer may wrap the message (session id payload
            # key) and register it for acknowledgement tracking; control
            # traffic and retransmissions pass through unchanged.
            message = self.resilience.outbound(message)
        now = self._sim.now
        msg_id = next(self._msg_ids)
        self._sim.metrics.inc("net.sent")
        self._sim.metrics.inc(f"net.sent.{message.kind}")
        self._sim.trace.record(
            now, tr.SEND, msg_id=msg_id, msg_kind=message.kind,
            sender=sender, receiver=receiver,
        )
        rng = self._sim.rng_for("transport")
        if self.loss_model.is_lost(rng):
            self._lose(message, msg_id, "loss", counter="net.dropped.loss")
            return
        effect = (
            self.fault_injector.send_effect(message)
            if self.fault_injector is not None
            else None
        )
        if effect is not None and effect.drop:
            self._lose(
                message, msg_id, effect.reason or "fault",
                counter="net.dropped.fault",
            )
            return
        delay = self._delay_for(sender, receiver).sample(rng)
        self._sim.metrics.observe("net.delivery_delay", delay)
        if effect is not None and effect.extra_delay > 0.0:
            delay += effect.extra_delay
            self._sim.metrics.observe("faults.extra_delay", effect.extra_delay)
        self._schedule_delivery(message, msg_id, delay)
        if effect is not None and effect.copies > 0:
            # Duplicates reuse the original msg_id (they *are* the same
            # message, redelivered) and draw their delays from the fault
            # stream so transport randomness is untouched.
            fault_rng = self._sim.rng_for("faults")
            self._sim.metrics.inc("faults.duplicates", effect.copies)
            for _ in range(effect.copies):
                copy_delay = self._delay_for(sender, receiver).sample(fault_rng)
                self._schedule_delivery(message, msg_id, copy_delay)

    def _lose(
        self, message: Message, msg_id: int, reason: str, counter: str
    ) -> None:
        """Record a message lost in transit: the classic ``drop`` plus a
        ``msg_lost`` event owned by the sender, so causal analysis can tell
        "sent and lost" apart from "never sent"."""
        now = self._sim.now
        self._sim.metrics.inc(counter)
        self._sim.trace.record(
            now, tr.DROP, msg_id=msg_id, msg_kind=message.kind,
            sender=message.sender, receiver=message.receiver, reason=reason,
        )
        self._sim.trace.record(
            now, tr.MSG_LOST, msg_id=msg_id, msg_kind=message.kind,
            entity=message.sender, sender=message.sender,
            receiver=message.receiver, reason=reason,
        )

    def _schedule_delivery(
        self, message: Message, msg_id: int, delay: float
    ) -> None:
        deliver_at = self._sim.now + delay
        if self.fifo:
            channel = (message.sender, message.receiver)
            deliver_at = max(deliver_at, self._last_delivery.get(channel, 0.0))
            self._last_delivery[channel] = deliver_at
        self._sim.at(
            deliver_at,
            lambda: self._deliver(message, msg_id),
            priority=PRIORITY_NORMAL,
            label=f"deliver:{message.kind}",
        )

    def _deliver(self, message: Message, msg_id: int) -> None:
        now = self._sim.now
        receiver = self._processes.get(message.receiver)
        if receiver is None or not receiver._alive:
            self._sim.metrics.inc("net.dropped.receiver_absent")
            self._sim.trace.record(
                now, tr.DROP, msg_id=msg_id, msg_kind=message.kind,
                sender=message.sender, receiver=message.receiver,
                reason="receiver_absent",
            )
            return
        self._sim.metrics.inc("net.delivered")
        hops = message.payload.get("hops")
        if isinstance(hops, int):
            self._sim.metrics.observe("net.delivery_hops", hops, buckets=HOP_BUCKETS)
        self._sim.trace.record(
            now, tr.DELIVER, msg_id=msg_id, msg_kind=message.kind,
            sender=message.sender, receiver=message.receiver,
        )
        if self.resilience is not None:
            # Acks are consumed and data is acknowledged + deduplicated
            # here, after the delivery is traced (the network did deliver
            # it) but before the protocol sees it.
            message = self.resilience.inbound(message)
            if message is None:
                return
        receiver.on_message(message)
