"""Membership and message transport.

The :class:`Network` owns the two facts the paper's two dimensions talk
about: *who is present* (the entity dimension) and *who can talk to whom*
(the geography dimension).  Processes interact with it only through
:class:`repro.sim.node.Process` actions, so protocol code cannot cheat and
peek at global state.

State is slot-backed for scale (see ``docs/SCALING.md``): each entity
occupies a recycled slot in parallel arrays (process object, adjacency
set, pid), with a dense slot list for O(1) uniform sampling.  Pids remain
globally unique and are never reused — slots are storage, not identity.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.sim import trace as tr
from repro.sim.errors import MembershipError, TopologyError
from repro.sim.events import PRIORITY_NORMAL
from repro.sim.latency import DelayModel, LossModel, NoLoss, UniformDelay
from repro.sim.messages import Message
from repro.sim.node import Process

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    import random

    from repro.sim.scheduler import Simulator

#: Bucket bounds for the deliveries-by-hop-count histogram (wave depths,
#: flood frontiers); roughly Fibonacci so both shallow and deep networks
#: resolve.
HOP_BUCKETS = (1.0, 2.0, 3.0, 5.0, 8.0, 13.0, 21.0, 34.0)


class Network:
    """Tracks present processes, their links, and in-flight messages.

    Args:
        sim: owning simulator.
        delay_model: per-message transmission delay distribution.
        loss_model: per-message drop decision.
        complete: if ``True`` the communication graph is always complete
            (the ``G_complete`` knowledge class); explicit edges are ignored.
    """

    def __init__(
        self,
        sim: "Simulator",
        delay_model: DelayModel | None = None,
        loss_model: LossModel | None = None,
        complete: bool = False,
        fifo: bool = False,
        notify_leaves: bool = True,
        notify_joins: bool = True,
    ) -> None:
        self._sim = sim
        self.delay_model = delay_model or UniformDelay()
        self.loss_model = loss_model or NoLoss()
        self.complete = complete
        #: When False, departures are *silent*: neighbors get no
        #: ``on_neighbor_leave`` callback and must infer the crash from
        #: silence (failure detection).  This removes the perfect-detector
        #: assumption the default model makes.
        self.notify_leaves = notify_leaves
        #: When False, joins are silent too: no ``on_neighbor_join``
        #: callbacks fire when an entity arrives.  On complete graphs a
        #: join otherwise notifies the *entire* population (O(n)), which
        #: dominates at 10⁴⁺ entities; scale workloads whose protocols
        #: poll neighbors instead of reacting to arrivals turn this off.
        self.notify_joins = notify_joins
        #: FIFO channels: deliveries on each directed (sender, receiver)
        #: pair never overtake earlier ones, even when the sampled delays
        #: would reorder them.
        self.fifo = fifo
        self._last_delivery: dict[tuple[int, int], float] = {}
        #: The fault plane's single interposition point: when set (by
        #: :meth:`repro.faults.injector.FaultInjector.install`), every
        #: accepted message is offered to ``fault_injector.send_effect``,
        #: which may drop, delay or duplicate it.  ``None`` means faults
        #: are structurally absent — no extra branches, draws or events.
        self.fault_injector = None
        #: The resilience plane's interposition point: when set (by
        #: :meth:`repro.resilience.transport.ReliableTransport.install`),
        #: outbound messages may be wrapped with a session id and armed
        #: with retransmission timers, and inbound messages are
        #: acknowledged and deduplicated before the protocol sees them.
        #: ``None`` means the recovery layer is structurally absent.
        self.resilience = None
        # Slot-backed entity state.  ``_slot_of`` maps pid -> slot; the
        # parallel arrays are indexed by slot and holes are recycled
        # through the ``_free`` stack.  ``_dense`` lists occupied slots
        # contiguously (swap-remove) for O(1) uniform sampling.
        self._slot_of: dict[int, int] = {}
        self._procs: list[Process | None] = []
        self._adj: list[set[int] | None] = []
        self._slot_pid: list[int] = []
        self._free: list[int] = []
        self._dense: list[int] = []
        self._dense_pos: list[int] = []
        self._edge_delays: dict[tuple[int, int], DelayModel] = {}
        # Topology journals: incremental consumers (PartitionFault's
        # watchdog) subscribe to joins and new links instead of rescanning
        # the whole graph every tick.  Empty dict = zero hot-path cost.
        self._journals: dict[int, list[tuple[str, int, int]]] = {}
        self._journal_tokens = itertools.count()
        # Simulation-local message ids keep traces reproducible regardless
        # of how many messages other simulations in this Python process
        # have created.
        self._msg_ids = itertools.count()

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    def present(self) -> frozenset[int]:
        """Ids of processes currently in the system (omniscient view —
        available to the analysis layer, never to protocol code)."""
        return frozenset(self._slot_of)

    def population(self) -> int:
        """Number of processes currently present (O(1))."""
        return len(self._slot_of)

    def process(self, pid: int) -> Process:
        """Return the live process object for ``pid``."""
        try:
            proc = self._procs[self._slot_of[pid]]
        except KeyError:
            raise MembershipError(f"process {pid} is not present") from None
        assert proc is not None
        return proc

    def is_present(self, pid: int) -> bool:
        return pid in self._slot_of

    def _alloc_slot(self, proc: Process) -> int:
        pid = proc.pid
        if self._free:
            slot = self._free.pop()
            self._procs[slot] = proc
            self._adj[slot] = set()
            self._slot_pid[slot] = pid
            self._dense_pos[slot] = len(self._dense)
        else:
            slot = len(self._procs)
            self._procs.append(proc)
            self._adj.append(set())
            self._slot_pid.append(pid)
            self._dense_pos.append(len(self._dense))
        self._dense.append(slot)
        self._slot_of[pid] = slot
        return slot

    def _release_slot(self, pid: int) -> None:
        slot = self._slot_of.pop(pid)
        self._procs[slot] = None
        self._adj[slot] = None
        # Swap-remove from the dense slot list.
        pos = self._dense_pos[slot]
        last = self._dense.pop()
        if last != slot:
            self._dense[pos] = last
            self._dense_pos[last] = pos
        self._free.append(slot)

    def add_process(self, proc: Process, neighbors: Iterable[int] = ()) -> None:
        """Insert ``proc`` and connect it to ``neighbors``.

        The caller (simulator/churn model) must have assigned ``proc.pid``.
        """
        pid = proc.pid
        if pid in self._slot_of:
            raise MembershipError(f"process {pid} is already present")
        neighbor_ids = set(neighbors)
        missing = neighbor_ids - self._slot_of.keys()
        if missing:
            raise MembershipError(
                f"cannot attach {pid} to absent processes {sorted(missing)}"
            )
        self._alloc_slot(proc)
        for other in sorted(neighbor_ids):
            self._link(pid, other)
        if self._journals:
            for journal in self._journals.values():
                journal.append(("join", pid, pid))
        self._sim.metrics.inc("membership.joins")
        self._sim.trace.record(
            self._sim.now, tr.JOIN, entity=pid, degree=len(neighbor_ids),
            value=getattr(proc, "value", None),
            neighbors=tuple(sorted(neighbor_ids)),
        )
        proc._alive = True
        proc.on_start()
        if not self.notify_joins:
            return
        # In complete mode every present process is a neighbor of the
        # newcomer, so everyone learns of the join.
        if self.complete:
            to_notify = set(self._slot_of)
            to_notify.discard(pid)
        else:
            to_notify = neighbor_ids
        slot_of = self._slot_of
        for other in sorted(to_notify):
            other_slot = slot_of.get(other)
            if other_slot is not None:  # may have left during callbacks
                self._procs[other_slot].on_neighbor_join(pid)

    def remove_process(self, pid: int) -> Process:
        """Remove ``pid`` from the system; in-flight messages to it drop.

        On complete graphs with silent departures (``notify_leaves=False``)
        this is O(1): no neighbor list is materialised because nobody gets
        notified and no adjacency needs patching.  Otherwise it is
        O(degree) plus the notification fan-out.
        """
        proc = self.process(pid)
        proc._alive = False
        proc.on_stop()
        former_neighbors: list[int] = []
        if self.complete:
            if self.notify_leaves:
                former_neighbors = sorted(self._slot_of)
                former_neighbors.remove(pid)
        else:
            adj = self._adj[self._slot_of[pid]]
            assert adj is not None
            if self.notify_leaves:
                former_neighbors = sorted(adj)
            slot_of = self._slot_of
            for other in adj:
                other_adj = self._adj[slot_of[other]]
                if other_adj is not None:
                    other_adj.discard(pid)
        self._release_slot(pid)
        self._sim.metrics.inc("membership.leaves")
        self._sim.trace.record(self._sim.now, tr.LEAVE, entity=pid)
        if self.notify_leaves:
            slot_of = self._slot_of
            for other in former_neighbors:
                other_slot = slot_of.get(other)
                if other_slot is not None:
                    self._procs[other_slot].on_neighbor_leave(pid)
        return proc

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------

    def neighbors(self, pid: int) -> frozenset[int]:
        """Current neighbor set of ``pid``."""
        slot = self._slot_of.get(pid)
        if slot is None:
            raise MembershipError(f"process {pid} is not present")
        if self.complete:
            return frozenset(p for p in self._slot_of if p != pid)
        return frozenset(self._adj[slot])

    def degree(self, pid: int) -> int:
        """Current degree of ``pid`` (O(1); no neighbor set is built)."""
        slot = self._slot_of.get(pid)
        if slot is None:
            raise MembershipError(f"process {pid} is not present")
        if self.complete:
            return len(self._slot_of) - 1
        return len(self._adj[slot])

    def has_edge(self, a: int, b: int) -> bool:
        """True iff ``a`` and ``b`` are currently linked (``False`` when
        either endpoint is absent).  On complete graphs every present
        pair is linked."""
        if self.complete:
            return a != b and a in self._slot_of and b in self._slot_of
        slot = self._slot_of.get(a)
        if slot is None:
            return False
        return b in self._adj[slot]

    def _link(self, a: int, b: int) -> None:
        if a == b:
            raise TopologyError(f"self-loop on process {a}")
        self._adj[self._slot_of[a]].add(b)
        self._adj[self._slot_of[b]].add(a)
        if self._journals:
            lo, hi = (a, b) if a < b else (b, a)
            for journal in self._journals.values():
                journal.append(("edge", lo, hi))

    def add_edge(self, a: int, b: int) -> None:
        """Create a link between two present processes (dynamic topology)."""
        slot_a = self._slot_of.get(a)
        slot_b = self._slot_of.get(b)
        if slot_a is None or slot_b is None:
            raise MembershipError(f"both endpoints of ({a}, {b}) must be present")
        if b in self._adj[slot_a]:
            return
        self._link(a, b)
        self._sim.trace.record(self._sim.now, "edge_up", a=min(a, b), b=max(a, b))
        self._procs[slot_a].on_neighbor_join(b)
        self._procs[slot_b].on_neighbor_join(a)

    def remove_edge(self, a: int, b: int) -> None:
        """Drop the link between ``a`` and ``b`` (dynamic topology)."""
        slot_a = self._slot_of.get(a)
        slot_b = self._slot_of.get(b)
        if slot_a is None or slot_b is None:
            raise MembershipError(f"both endpoints of ({a}, {b}) must be present")
        if b not in self._adj[slot_a]:
            return
        self._adj[slot_a].discard(b)
        self._adj[slot_b].discard(a)
        self._sim.trace.record(self._sim.now, "edge_down", a=min(a, b), b=max(a, b))
        self._procs[slot_a].on_neighbor_leave(b)
        self._procs[slot_b].on_neighbor_leave(a)

    def edges(self) -> set[tuple[int, int]]:
        """All current links as sorted pairs (analysis-layer view)."""
        result: set[tuple[int, int]] = set()
        for slot in self._dense:
            a = self._slot_pid[slot]
            for b in self._adj[slot]:
                result.add((a, b) if a < b else (b, a))
        return result

    def open_topology_journal(self) -> int:
        """Start recording joins and new links; returns a drain token.

        Incremental consumers (e.g. the partition watchdog) use this to
        observe topology growth in O(changes) instead of rescanning the
        whole graph.  Entries are ``("join", pid, pid)`` and
        ``("edge", lo, hi)`` tuples.
        """
        token = next(self._journal_tokens)
        self._journals[token] = []
        return token

    def drain_topology_journal(self, token: int) -> list[tuple[str, int, int]]:
        """Return and reset the entries recorded since the last drain."""
        entries = self._journals[token]
        self._journals[token] = []
        return entries

    def close_topology_journal(self, token: int) -> None:
        """Stop recording for ``token`` (idempotent)."""
        self._journals.pop(token, None)

    # ------------------------------------------------------------------
    # Sampling (scale workloads)
    # ------------------------------------------------------------------

    def sample_present(
        self, rng: "random.Random", exclude: int | None = None
    ) -> int | None:
        """Uniformly sample a present pid in O(1); ``None`` if none qualify.

        Deterministic for a fixed seed and schedule: the underlying dense
        slot order depends only on the join/leave history.
        """
        count = len(self._dense)
        if exclude is not None and exclude in self._slot_of:
            if count <= 1:
                return None
            slot = self._dense[rng.randrange(count - 1)]
            pid = self._slot_pid[slot]
            if pid == exclude:
                pid = self._slot_pid[self._dense[count - 1]]
            return pid
        if count == 0:
            return None
        return self._slot_pid[self._dense[rng.randrange(count)]]

    def sample_neighbor(self, pid: int, rng: "random.Random") -> int | None:
        """Uniformly sample a current neighbor of ``pid`` (``None`` if it
        has none).  O(1) on complete graphs; O(d log d) on sparse ones
        (the neighbor set is sorted so draws are seed-deterministic)."""
        slot = self._slot_of.get(pid)
        if slot is None:
            raise MembershipError(f"process {pid} is not present")
        if self.complete:
            return self.sample_present(rng, exclude=pid)
        adj = self._adj[slot]
        if not adj:
            return None
        return rng.choice(sorted(adj))

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------

    def set_edge_delay(self, a: int, b: int, model: DelayModel) -> None:
        """Override the delay model on one link (adversary constructions)."""
        self._edge_delays[(min(a, b), max(a, b))] = model

    def _delay_for(self, a: int, b: int) -> DelayModel:
        if not self._edge_delays:
            return self.delay_model
        return self._edge_delays.get((min(a, b), max(a, b)), self.delay_model)

    def send(self, message: Message) -> None:
        """Accept a message for delivery.

        Enforces the geography constraint: the receiver must be a current
        neighbor of the sender (unless the graph is complete).
        """
        sender, receiver = message.sender, message.receiver
        sender_slot = self._slot_of.get(sender)
        if sender_slot is None:
            raise MembershipError(f"sender {sender} is not present")
        if not self.complete and receiver not in self._adj[sender_slot]:
            raise TopologyError(
                f"process {sender} cannot reach {receiver}: not a neighbor"
            )
        if self.complete and (receiver == sender or receiver not in self._slot_of):
            raise TopologyError(f"process {sender} cannot reach {receiver}")
        if self.resilience is not None:
            # The recovery layer may wrap the message (session id payload
            # key) and register it for acknowledgement tracking; control
            # traffic and retransmissions pass through unchanged.
            message = self.resilience.outbound(message)
        now = self._sim.now
        msg_id = next(self._msg_ids)
        self._sim.metrics.inc("net.sent")
        self._sim.metrics.inc(f"net.sent.{message.kind}")
        self._sim.trace.record(
            now, tr.SEND, msg_id=msg_id, msg_kind=message.kind,
            sender=sender, receiver=receiver,
        )
        rng = self._sim.rng_for("transport")
        if self.loss_model.is_lost(rng):
            self._lose(message, msg_id, "loss", counter="net.dropped.loss")
            return
        effect = (
            self.fault_injector.send_effect(message)
            if self.fault_injector is not None
            else None
        )
        if effect is not None and effect.drop:
            self._lose(
                message, msg_id, effect.reason or "fault",
                counter="net.dropped.fault",
            )
            return
        delay = self._delay_for(sender, receiver).sample(rng)
        self._sim.metrics.observe("net.delivery_delay", delay)
        if effect is not None and effect.extra_delay > 0.0:
            delay += effect.extra_delay
            self._sim.metrics.observe("faults.extra_delay", effect.extra_delay)
        self._schedule_delivery(message, msg_id, delay)
        if effect is not None and effect.copies > 0:
            # Duplicates reuse the original msg_id (they *are* the same
            # message, redelivered) and draw their delays from the fault
            # stream so transport randomness is untouched.
            fault_rng = self._sim.rng_for("faults")
            self._sim.metrics.inc("faults.duplicates", effect.copies)
            for _ in range(effect.copies):
                copy_delay = self._delay_for(sender, receiver).sample(fault_rng)
                self._schedule_delivery(message, msg_id, copy_delay)

    def _lose(
        self, message: Message, msg_id: int, reason: str, counter: str
    ) -> None:
        """Record a message lost in transit: the classic ``drop`` plus a
        ``msg_lost`` event owned by the sender, so causal analysis can tell
        "sent and lost" apart from "never sent"."""
        now = self._sim.now
        self._sim.metrics.inc(counter)
        self._sim.trace.record(
            now, tr.DROP, msg_id=msg_id, msg_kind=message.kind,
            sender=message.sender, receiver=message.receiver, reason=reason,
        )
        self._sim.trace.record(
            now, tr.MSG_LOST, msg_id=msg_id, msg_kind=message.kind,
            entity=message.sender, sender=message.sender,
            receiver=message.receiver, reason=reason,
        )

    def _schedule_delivery(
        self, message: Message, msg_id: int, delay: float
    ) -> None:
        deliver_at = self._sim.now + delay
        if self.fifo:
            channel = (message.sender, message.receiver)
            deliver_at = max(deliver_at, self._last_delivery.get(channel, 0.0))
            self._last_delivery[channel] = deliver_at
        self._sim.at(
            deliver_at,
            lambda: self._deliver(message, msg_id),
            priority=PRIORITY_NORMAL,
            label=f"deliver:{message.kind}",
        )

    def _deliver(self, message: Message, msg_id: int) -> None:
        now = self._sim.now
        slot = self._slot_of.get(message.receiver)
        receiver = self._procs[slot] if slot is not None else None
        if receiver is None or not receiver._alive:
            self._sim.metrics.inc("net.dropped.receiver_absent")
            self._sim.trace.record(
                now, tr.DROP, msg_id=msg_id, msg_kind=message.kind,
                sender=message.sender, receiver=message.receiver,
                reason="receiver_absent",
            )
            return
        self._sim.metrics.inc("net.delivered")
        hops = message.payload.get("hops")
        if isinstance(hops, int):
            self._sim.metrics.observe("net.delivery_hops", hops, buckets=HOP_BUCKETS)
        self._sim.trace.record(
            now, tr.DELIVER, msg_id=msg_id, msg_kind=message.kind,
            sender=message.sender, receiver=message.receiver,
        )
        if self.resilience is not None:
            # Acks are consumed and data is acknowledged + deduplicated
            # here, after the delivery is traced (the network did deliver
            # it) but before the protocol sees it.
            message = self.resilience.inbound(message)
            if message is None:
                return
        receiver.on_message(message)
