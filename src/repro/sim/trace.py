"""Structured trace recording.

Every observable fact about a simulation — membership changes, message
sends, deliveries and drops, protocol milestones — is appended to a
:class:`TraceLog`.  The formal layer (:mod:`repro.core`) consumes traces to
build *runs* and to check problem specifications, so the trace is the single
source of truth connecting the simulator to the paper's definitions.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator

# Canonical event kinds written by the substrate.  Protocols are free to
# record additional kinds (e.g. "query_issued").
JOIN = "join"
LEAVE = "leave"
SEND = "send"
DELIVER = "deliver"
DROP = "drop"
TIMER = "timer"


@dataclass(frozen=True)
class TraceEvent:
    """One observable fact, at one instant."""

    time: float
    kind: str
    data: dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.data[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self.data.get(key, default)


class TraceLog:
    """An append-only, time-ordered log of :class:`TraceEvent` objects."""

    def __init__(self) -> None:
        self._events: list[TraceEvent] = []
        self._counts: dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def record(self, time: float, kind: str, **data: Any) -> TraceEvent:
        """Append an event and return it."""
        event = TraceEvent(time, kind, data)
        self._events.append(event)
        self._counts[kind] = self._counts.get(kind, 0) + 1
        return event

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def events(self, kind: str | None = None) -> list[TraceEvent]:
        """Return all events, optionally filtered by kind."""
        if kind is None:
            return list(self._events)
        return [e for e in self._events if e.kind == kind]

    def count(self, kind: str) -> int:
        """Return how many events of ``kind`` were recorded."""
        return self._counts.get(kind, 0)

    def first(self, kind: str) -> TraceEvent | None:
        """Return the earliest event of ``kind``, or ``None``."""
        for event in self._events:
            if event.kind == kind:
                return event
        return None

    def last(self, kind: str) -> TraceEvent | None:
        """Return the latest event of ``kind``, or ``None``."""
        for event in reversed(self._events):
            if event.kind == kind:
                return event
        return None

    def between(self, t0: float, t1: float, kind: str | None = None) -> list[TraceEvent]:
        """Return events with ``t0 <= time <= t1`` (optionally of one kind)."""
        return [
            e
            for e in self._events
            if t0 <= e.time <= t1 and (kind is None or e.kind == kind)
        ]

    # ------------------------------------------------------------------
    # Membership helpers (consumed by repro.core.runs)
    # ------------------------------------------------------------------

    def membership_events(self) -> list[TraceEvent]:
        """Return join/leave events in time order."""
        return [e for e in self._events if e.kind in (JOIN, LEAVE)]

    def entities_ever(self) -> set[int]:
        """Return the ids of every entity that ever joined."""
        return {e["entity"] for e in self._events if e.kind == JOIN}

    def message_count(self) -> int:
        """Total number of message sends (the standard cost metric)."""
        return self.count(SEND)

    def summary(self) -> dict[str, int]:
        """Return a ``{kind: count}`` summary of the whole log."""
        return dict(self._counts)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def save_jsonl(self, path: str | Path) -> int:
        """Write the log as JSON Lines; returns the number of events.

        Tuples and frozensets in event data are encoded with type markers
        so :meth:`load_jsonl` round-trips them exactly.
        """
        path = Path(path)
        with path.open("w", encoding="utf-8") as handle:
            for event in self._events:
                record = {
                    "t": event.time,
                    "k": event.kind,
                    "d": {key: _encode(value) for key, value in event.data.items()},
                }
                handle.write(json.dumps(record) + "\n")
        return len(self._events)

    @classmethod
    def load_jsonl(cls, path: str | Path) -> "TraceLog":
        """Read a log written by :meth:`save_jsonl`."""
        log = cls()
        with Path(path).open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                data = {key: _decode(value) for key, value in record["d"].items()}
                log.record(record["t"], record["k"], **data)
        return log


def _encode(value: Any) -> Any:
    """JSON-encode event data, marking tuples and frozensets."""
    if isinstance(value, tuple):
        return {"__tuple__": [_encode(v) for v in value]}
    if isinstance(value, frozenset):
        return {"__frozenset__": sorted((_encode(v) for v in value), key=repr)}
    if isinstance(value, (list, dict, str, int, float, bool)) or value is None:
        return value
    return {"__repr__": repr(value)}


def _decode(value: Any) -> Any:
    """Inverse of :func:`_encode` (best effort for ``__repr__`` markers)."""
    if isinstance(value, dict):
        if "__tuple__" in value:
            return tuple(_decode(v) for v in value["__tuple__"])
        if "__frozenset__" in value:
            return frozenset(_decode(v) for v in value["__frozenset__"])
        if "__repr__" in value:
            return value["__repr__"]
        return {key: _decode(v) for key, v in value.items()}
    return value


def merge_logs(logs: Iterable[TraceLog]) -> TraceLog:
    """Merge several logs into one, re-sorted by time (stable).

    Useful when analysing a batch of independent trials together.
    """
    merged = TraceLog()
    events = sorted(
        (e for log in logs for e in log), key=lambda e: e.time
    )
    for event in events:
        merged.record(event.time, event.kind, **event.data)
    return merged
