"""Structured trace recording.

Every observable fact about a simulation — membership changes, message
sends, deliveries and drops, protocol milestones — is appended to a
:class:`TraceLog`.  The formal layer (:mod:`repro.core`) consumes traces to
build *runs* and to check problem specifications, so the trace is the single
source of truth connecting the simulator to the paper's definitions.

Storage is delegated to a pluggable :class:`repro.obs.sinks.TraceSink`.
The default :class:`~repro.obs.sinks.MemorySink` keeps every event in
memory (the historical behavior); space-saving sinks
(:class:`~repro.obs.sinks.JsonlStreamSink`,
:class:`~repro.obs.sinks.CountingSink`,
:class:`~repro.obs.sinks.NullSink`) stream or drop the high-volume
transport events while the membership and protocol-milestone events the
specification checker relies on are always retained.  Per-kind counts are
maintained unconditionally, so :meth:`TraceLog.count` and
:meth:`TraceLog.summary` are exact under every sink.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator

from repro.obs.codec import decode_value, encode_event, encode_value
from repro.obs.sinks import MemorySink, TraceSink

# Canonical event kinds written by the substrate.  Protocols are free to
# record additional kinds (e.g. "query_issued").
JOIN = "join"
LEAVE = "leave"
SEND = "send"
DELIVER = "deliver"
DROP = "drop"
TIMER = "timer"
# A message that *was* sent but never reached its receiver — emitted next
# to the drop record on the loss and fault paths so causal analysis can
# distinguish "never sent" from "sent and lost in transit".
MSG_LOST = "msg_lost"
# Fault-plane activations (repro.faults): every scheduled fault activation
# records one fault_injected; window closes / link restores record
# fault_cleared.
FAULT_INJECTED = "fault_injected"
FAULT_CLEARED = "fault_cleared"
# Resilience-plane events (repro.resilience): each retransmission of an
# unacknowledged message (high-volume: treated as a transport kind by the
# space-saving sinks), and the bounded give-up after the retry budget is
# exhausted (low-volume: retained by every sink so coverage reports can
# read it back).
RETRANSMIT = "retransmit"
DELIVERY_ABANDONED = "delivery_abandoned"


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One observable fact, at one instant."""

    time: float
    kind: str
    data: dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.data[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self.data.get(key, default)


class TraceLog:
    """An append-only, time-ordered log of :class:`TraceEvent` objects.

    Args:
        sink: where recorded events go (default: keep all in memory).
            Space-saving sinks retain only the low-volume kinds the
            specification layer needs; :meth:`events` then returns the
            retained subset while :meth:`count`/:meth:`summary` stay exact.
    """

    def __init__(self, sink: TraceSink | None = None) -> None:
        self._sink: TraceSink = sink if sink is not None else MemorySink()
        self._events: list[TraceEvent] = []
        self._counts: dict[str, int] = {}
        self._total = 0

    @property
    def sink(self) -> TraceSink:
        """The sink receiving this log's events."""
        return self._sink

    def __len__(self) -> int:
        """Total number of events *recorded* (under every sink)."""
        return self._total

    def __iter__(self) -> Iterator[TraceEvent]:
        """Iterate over the retained events (all of them, with the default
        memory sink)."""
        return iter(self._events)

    @property
    def retained(self) -> int:
        """How many events are held in memory (== ``len`` for MemorySink)."""
        return len(self._events)

    def record(self, time: float, kind: str, **data: Any) -> TraceEvent:
        """Append an event and return it."""
        event = TraceEvent(time, kind, data)
        self._total += 1
        self._counts[kind] = self._counts.get(kind, 0) + 1
        if self._sink.retains(kind):
            self._events.append(event)
        self._sink.emit(event)
        return event

    def close(self) -> None:
        """Flush and close the sink (idempotent; a no-op for memory)."""
        self._sink.close()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def events(self, kind: str | None = None) -> list[TraceEvent]:
        """Return the retained events, optionally filtered by kind."""
        if kind is None:
            return list(self._events)
        return [e for e in self._events if e.kind == kind]

    def count(self, kind: str) -> int:
        """Return how many events of ``kind`` were recorded (exact under
        every sink)."""
        return self._counts.get(kind, 0)

    def first(self, kind: str) -> TraceEvent | None:
        """Return the earliest retained event of ``kind``, or ``None``."""
        for event in self._events:
            if event.kind == kind:
                return event
        return None

    def last(self, kind: str) -> TraceEvent | None:
        """Return the latest retained event of ``kind``, or ``None``."""
        for event in reversed(self._events):
            if event.kind == kind:
                return event
        return None

    def between(self, t0: float, t1: float, kind: str | None = None) -> list[TraceEvent]:
        """Return retained events with ``t0 <= time <= t1``."""
        return [
            e
            for e in self._events
            if t0 <= e.time <= t1 and (kind is None or e.kind == kind)
        ]

    # ------------------------------------------------------------------
    # Membership helpers (consumed by repro.core.runs)
    # ------------------------------------------------------------------

    def membership_events(self) -> list[TraceEvent]:
        """Return join/leave events in time order (retained by every sink)."""
        return [e for e in self._events if e.kind in (JOIN, LEAVE)]

    def entities_ever(self) -> set[int]:
        """Return the ids of every entity that ever joined."""
        return {e["entity"] for e in self._events if e.kind == JOIN}

    def message_count(self) -> int:
        """Total number of message sends (the standard cost metric)."""
        return self.count(SEND)

    def summary(self) -> dict[str, int]:
        """Return a ``{kind: count}`` summary of the whole log (exact under
        every sink)."""
        return dict(self._counts)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def save_jsonl(self, path: str | Path) -> int:
        """Write the retained events as JSON Lines; returns how many.

        Tuples and frozensets in event data are encoded with type markers
        so :meth:`load_jsonl` round-trips them exactly.  To persist the
        *full* stream under a space-saving sink, record through a
        :class:`~repro.obs.sinks.JsonlStreamSink` instead.
        """
        path = Path(path)
        with path.open("w", encoding="utf-8") as handle:
            for event in self._events:
                record = encode_event(event.time, event.kind, event.data)
                handle.write(json.dumps(record) + "\n")
        return len(self._events)

    @classmethod
    def load_jsonl(cls, path: str | Path) -> "TraceLog":
        """Read a log written by :meth:`save_jsonl` (or streamed by a
        :class:`~repro.obs.sinks.JsonlStreamSink`)."""
        log = cls()
        with Path(path).open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                data = {key: decode_value(value) for key, value in record["d"].items()}
                log.record(record["t"], record["k"], **data)
        return log


def _encode(value: Any) -> Any:
    """Backwards-compatible alias for :func:`repro.obs.codec.encode_value`."""
    return encode_value(value)


def _decode(value: Any) -> Any:
    """Backwards-compatible alias for :func:`repro.obs.codec.decode_value`."""
    return decode_value(value)


def merge_logs(logs: Iterable[TraceLog]) -> TraceLog:
    """Merge several logs into one, re-sorted by time (stable).

    Useful when analysing a batch of independent trials together.  Only
    retained events merge; use memory sinks when a full merge matters.
    """
    merged = TraceLog()
    events = sorted(
        (e for log in logs for e in log), key=lambda e: e.time
    )
    for event in events:
        merged.record(event.time, event.kind, **event.data)
    return merged
