"""The process (node) runtime.

A :class:`Process` is one entity of the dynamic system.  Protocol authors
subclass it and implement the ``on_*`` hooks; the base class provides the
actions a real networked process would have — send to a neighbor, set a
timer, read the local clock — and *only* those.  In particular a process can
see its current neighbor set but has no built-in way to observe the global
membership, which is exactly the paper's locality constraint.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Any

from repro.sim.errors import ProtocolError
from repro.sim.events import Event
from repro.sim.messages import Message

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.scheduler import Simulator


class Process:
    """Base class for simulated processes.

    Attributes:
        pid: globally unique entity id, assigned at spawn time.
        value: the local input value aggregated by query protocols.
    """

    # The base class is slotted so 10⁵-entity populations do not pay a
    # per-process ``__dict__``.  Subclasses without ``__slots__`` still
    # get one for their own attributes, so protocol code is unaffected.
    __slots__ = ("pid", "value", "_sim", "_timers", "_timer_ids", "_alive",
                 "__weakref__")

    def __init__(self, value: Any = None) -> None:
        self.pid: int = -1
        self.value = value
        self._sim: "Simulator | None" = None
        self._timers: dict[int, Event] = {}
        self._timer_ids = 0
        self._alive = False

    # ------------------------------------------------------------------
    # Environment accessors
    # ------------------------------------------------------------------

    @property
    def sim(self) -> "Simulator":
        if self._sim is None:
            raise ProtocolError(f"process {self.pid} is not attached to a simulator")
        return self._sim

    @property
    def now(self) -> float:
        """Current simulation time (every process has a perfect local clock;
        the paper's model is about membership, not clock synchronisation)."""
        return self.sim.now

    @property
    def rng(self) -> random.Random:
        """Per-process deterministic random stream."""
        return self.sim.process_rng(self.pid)

    @property
    def alive(self) -> bool:
        """Whether this process is currently a member of the system."""
        return self._alive

    def neighbors(self) -> frozenset[int]:
        """The ids of the processes this one can currently talk to.

        This is the *only* membership information available to a process —
        the geography dimension of the model.
        """
        return self.sim.network.neighbors(self.pid)

    def degree(self) -> int:
        """How many neighbors this process currently has (O(1); no
        neighbor set is materialised)."""
        return self.sim.network.degree(self.pid)

    def random_neighbor(self) -> int | None:
        """A uniformly random current neighbor, or ``None`` if isolated.

        O(1) on complete graphs — at scale, use this instead of
        ``self.rng.choice(sorted(self.neighbors()))``, which materialises
        and sorts the whole population.  Draws from the per-process
        stream, so it is deterministic for a fixed seed.
        """
        return self.sim.network.sample_neighbor(self.pid, self.rng)

    # ------------------------------------------------------------------
    # Actions
    # ------------------------------------------------------------------

    def send(self, receiver: int, kind: str, **payload: Any) -> None:
        """Send a message to a neighbor.

        Raises:
            TopologyError: if ``receiver`` is not currently a neighbor.
        """
        message = Message(sender=self.pid, receiver=receiver, kind=kind, payload=payload)
        self.sim.network.send(message)

    def broadcast(self, kind: str, exclude: int | None = None, **payload: Any) -> int:
        """Send ``kind`` to every current neighbor; return how many were sent.

        ``exclude`` skips one neighbor (typically the process the triggering
        message came from).
        """
        sent = 0
        for neighbor in sorted(self.neighbors()):
            if neighbor == exclude:
                continue
            self.send(neighbor, kind, **payload)
            sent += 1
        return sent

    def set_timer(self, delay: float, name: str, payload: Any = None) -> int:
        """Schedule :meth:`on_timer` after ``delay``; return a cancel handle."""
        if delay < 0:
            raise ProtocolError(f"timer delay must be >= 0, got {delay}")
        self._timer_ids += 1
        timer_id = self._timer_ids
        event = self.sim.schedule(
            delay,
            lambda: self._fire_timer(timer_id, name, payload),
            label=f"timer:{self.pid}:{name}",
        )
        self._timers[timer_id] = event
        return timer_id

    def cancel_timer(self, timer_id: int) -> None:
        """Cancel a pending timer; cancelling a fired timer is a no-op."""
        event = self._timers.pop(timer_id, None)
        if event is not None:
            event.cancel()
            self.sim.queue.note_cancelled()

    def _fire_timer(self, timer_id: int, name: str, payload: Any) -> None:
        self._timers.pop(timer_id, None)
        if self._alive:
            self.sim.trace.record(self.now, "timer", entity=self.pid, name=name)
            self.on_timer(name, payload)

    def record(self, kind: str, **data: Any) -> None:
        """Write a protocol-level event to the simulation trace."""
        self.sim.trace.record(self.now, kind, entity=self.pid, **data)

    # ------------------------------------------------------------------
    # Lifecycle hooks (override in subclasses)
    # ------------------------------------------------------------------

    def on_start(self) -> None:
        """Called once when the process joins the system."""

    def on_stop(self) -> None:
        """Called when the process leaves (crash or departure)."""

    def on_message(self, message: Message) -> None:
        """Called when a message is delivered to this process."""

    def on_timer(self, name: str, payload: Any) -> None:
        """Called when a timer set with :meth:`set_timer` fires."""

    def on_neighbor_join(self, pid: int) -> None:
        """Called when ``pid`` becomes a neighbor of this process."""

    def on_neighbor_leave(self, pid: int) -> None:
        """Called when neighbor ``pid`` leaves the system."""

    def on_delivery_abandoned(self, message: Message) -> None:
        """Called when the resilience layer gives up on a message this
        process sent (see :mod:`repro.resilience.transport`).  ``message``
        is the original, unwrapped message.  Only ever invoked when a
        reliable transport is installed; protocols that can degrade
        gracefully override this to stop waiting on the receiver."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(pid={self.pid}, value={self.value!r})"
