"""Discrete-event simulation substrate for dynamic distributed systems.

The substrate provides:

* :class:`~repro.sim.scheduler.Simulator` — deterministic event loop with a
  virtual clock and seeded randomness;
* :class:`~repro.sim.node.Process` — the node runtime protocols subclass;
* :class:`~repro.sim.network.Network` — membership + neighbor-constrained
  message transport with configurable delay and loss;
* :class:`~repro.sim.trace.TraceLog` — the structured record of a run that
  the formal layer (:mod:`repro.core`) checks specifications against.
"""

from repro.sim.errors import (
    ConfigurationError,
    MembershipError,
    ProtocolError,
    SchedulingError,
    SimulationError,
    TopologyError,
)
from repro.sim.events import Event, EventQueue
from repro.sim.latency import (
    BernoulliLoss,
    ConstantDelay,
    DelayModel,
    ExponentialDelay,
    LossModel,
    NoLoss,
    UniformDelay,
)
from repro.sim.messages import Message
from repro.sim.network import Network
from repro.sim.node import Process
from repro.sim.rng import SeedSequence, iter_seeds
from repro.sim.scheduler import Simulator
from repro.sim.trace import DELIVER, DROP, JOIN, LEAVE, SEND, TIMER, TraceEvent, TraceLog

__all__ = [
    "BernoulliLoss",
    "ConfigurationError",
    "ConstantDelay",
    "DELIVER",
    "DROP",
    "DelayModel",
    "Event",
    "EventQueue",
    "ExponentialDelay",
    "JOIN",
    "LEAVE",
    "LossModel",
    "MembershipError",
    "Message",
    "Network",
    "NoLoss",
    "Process",
    "ProtocolError",
    "SEND",
    "SchedulingError",
    "SeedSequence",
    "SimulationError",
    "Simulator",
    "TIMER",
    "TopologyError",
    "TraceEvent",
    "TraceLog",
    "UniformDelay",
    "iter_seeds",
]
