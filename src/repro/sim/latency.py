"""Message delay and loss models.

The geography dimension of a dynamic system says *who* a process can talk
to; these models say *how long* the talking takes.  Asynchrony is modelled
by drawing per-message delays from a distribution; an asynchronous adversary
corresponds to a distribution with unbounded support.
"""

from __future__ import annotations

import abc
import random

from repro.sim.errors import ConfigurationError


class DelayModel(abc.ABC):
    """Draws a transmission delay for each message."""

    @abc.abstractmethod
    def sample(self, rng: random.Random) -> float:
        """Return a non-negative delay."""

    def bound(self) -> float | None:
        """Return an upper bound on delays, or ``None`` if unbounded.

        Protocols in the *synchronous* or *partially synchronous* settings
        may consult this bound (it is part of the knowledge dimension).
        """
        return None


class ConstantDelay(DelayModel):
    """Every message takes exactly ``delay`` time units (synchronous)."""

    def __init__(self, delay: float = 1.0) -> None:
        if delay < 0:
            raise ConfigurationError(f"delay must be >= 0, got {delay}")
        self.delay = delay

    def sample(self, rng: random.Random) -> float:
        return self.delay

    def bound(self) -> float | None:
        return self.delay

    def __repr__(self) -> str:
        return f"ConstantDelay({self.delay})"


class UniformDelay(DelayModel):
    """Delays uniform in ``[low, high]`` (bounded asynchrony)."""

    def __init__(self, low: float = 0.5, high: float = 1.5) -> None:
        if not 0 <= low <= high:
            raise ConfigurationError(f"need 0 <= low <= high, got [{low}, {high}]")
        self.low = low
        self.high = high

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)

    def bound(self) -> float | None:
        return self.high

    def __repr__(self) -> str:
        return f"UniformDelay({self.low}, {self.high})"


class ExponentialDelay(DelayModel):
    """Exponential delays with the given mean (unbounded asynchrony).

    The exponential has unbounded support, so :meth:`bound` returns ``None``:
    a protocol running over this model is in the fully asynchronous setting.
    """

    def __init__(self, mean: float = 1.0) -> None:
        if mean <= 0:
            raise ConfigurationError(f"mean must be > 0, got {mean}")
        self.mean = mean

    def sample(self, rng: random.Random) -> float:
        return rng.expovariate(1.0 / self.mean)

    def __repr__(self) -> str:
        return f"ExponentialDelay({self.mean})"


class LossModel(abc.ABC):
    """Decides whether a message is dropped in transit."""

    @abc.abstractmethod
    def is_lost(self, rng: random.Random) -> bool:
        """Return ``True`` if the message should be dropped."""


class NoLoss(LossModel):
    """Reliable channels: nothing is ever dropped."""

    def is_lost(self, rng: random.Random) -> bool:
        return False

    def __repr__(self) -> str:
        return "NoLoss()"


class BernoulliLoss(LossModel):
    """Each message is independently dropped with probability ``p``."""

    def __init__(self, p: float) -> None:
        if not 0 <= p <= 1:
            raise ConfigurationError(f"loss probability must be in [0, 1], got {p}")
        self.p = p

    def is_lost(self, rng: random.Random) -> bool:
        return rng.random() < self.p

    def __repr__(self) -> str:
        return f"BernoulliLoss({self.p})"
