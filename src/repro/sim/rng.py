"""Seeded randomness for reproducible simulations.

All stochastic components (message delays, churn processes, topology
generators) draw from streams derived from a single root seed, so a
simulation is fully determined by ``(configuration, seed)``.  Independent
components receive independent child streams, which keeps results stable
when one component consumes a different number of variates than before
(e.g. after a protocol change).
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.sim.errors import ConfigurationError

#: Large odd multiplier used to derive well-separated child seeds.
_STREAM_MULTIPLIER = 0x9E3779B97F4A7C15


class SeedSequence:
    """Derives independent child seeds from a root seed.

    This is a small, dependency-free analogue of
    :class:`numpy.random.SeedSequence`: each named or indexed child gets a
    seed that is a deterministic mix of the root seed and the child key.

    >>> ss = SeedSequence(42)
    >>> ss.child("churn") != ss.child("delays")
    True
    >>> ss.child("churn") == SeedSequence(42).child("churn")
    True
    """

    def __init__(self, seed: int) -> None:
        if not isinstance(seed, int):
            raise ConfigurationError(f"seed must be an int, got {type(seed).__name__}")
        self.seed = seed & 0xFFFFFFFFFFFFFFFF

    def child(self, key: str | int) -> int:
        """Return a deterministic child seed for ``key``."""
        if isinstance(key, str):
            key_int = int.from_bytes(key.encode("utf-8").ljust(8, b"\0")[:8], "little")
            # Fold in the remaining bytes for long keys so distinct long
            # names do not collide on their 8-byte prefix.
            for i, byte in enumerate(key.encode("utf-8")[8:]):
                key_int ^= byte << (8 * (i % 8))
        else:
            key_int = int(key)
        mixed = (self.seed ^ (key_int * _STREAM_MULTIPLIER)) & 0xFFFFFFFFFFFFFFFF
        # A final avalanche step (splitmix64 finaliser) decorrelates
        # neighbouring keys.
        mixed = (mixed ^ (mixed >> 30)) * 0xBF58476D1CE4E5B9 & 0xFFFFFFFFFFFFFFFF
        mixed = (mixed ^ (mixed >> 27)) * 0x94D049BB133111EB & 0xFFFFFFFFFFFFFFFF
        return mixed ^ (mixed >> 31)

    def stream(self, key: str | int) -> random.Random:
        """Return a :class:`random.Random` seeded with the child seed."""
        return random.Random(self.child(key))

    def spawn(self, key: str | int) -> "SeedSequence":
        """Return a child :class:`SeedSequence` (for nested components)."""
        return SeedSequence(self.child(key))

    def __repr__(self) -> str:
        return f"SeedSequence({self.seed})"


def iter_seeds(root: int, count: int) -> Iterator[int]:
    """Yield ``count`` independent seeds derived from ``root``.

    Used by the benchmark harness to run repeated trials.
    """
    ss = SeedSequence(root)
    for i in range(count):
        yield ss.child(i)
