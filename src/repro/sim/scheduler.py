"""The discrete-event simulator core.

:class:`Simulator` ties together the event queue, the virtual clock, the
network, seeded randomness and the trace log.  A simulation is fully
deterministic given its configuration and seed.
"""

from __future__ import annotations

import itertools
import random
from typing import Any, Callable, Iterable

from repro.obs.metrics import Metrics
from repro.obs.sinks import TraceSink
from repro.sim.errors import SchedulingError
from repro.sim.events import Event, EventQueue, PRIORITY_MEMBERSHIP, PRIORITY_NORMAL
from repro.sim.latency import DelayModel, LossModel
from repro.sim.network import Network
from repro.sim.node import Process
from repro.sim.rng import SeedSequence
from repro.sim.trace import TraceLog


class Simulator:
    """A deterministic discrete-event simulator for dynamic systems.

    Args:
        seed: root seed; all randomness derives from it.
        delay_model: message delay distribution (default: uniform [0.5, 1.5]).
        loss_model: message loss model (default: reliable).
        complete: if ``True`` the communication graph is complete
            (the ``G_complete`` knowledge class).
        fifo: if ``True`` channels are FIFO (no per-link reordering).
        notify_leaves: if ``False`` departures are silent (no perfect
            failure detection; protocols must use timeouts/heartbeats).
        notify_joins: if ``False`` arrivals are silent too — on complete
            graphs a join otherwise notifies everyone (O(n)), which
            dominates at 10⁴⁺ entities.
        trace_sink: where trace events go (default: all in memory); see
            :mod:`repro.obs.sinks` for the space-saving alternatives.
    """

    def __init__(
        self,
        seed: int = 0,
        delay_model: DelayModel | None = None,
        loss_model: LossModel | None = None,
        complete: bool = False,
        fifo: bool = False,
        notify_leaves: bool = True,
        notify_joins: bool = True,
        trace_sink: TraceSink | None = None,
    ) -> None:
        self.seeds = SeedSequence(seed)
        self.queue = EventQueue()
        self.trace = TraceLog(sink=trace_sink)
        self.metrics = Metrics()
        # Instrumented sinks (CheckingSink) count into this registry.
        self.trace.sink.attach_metrics(self.metrics)
        self.network = Network(
            self, delay_model=delay_model, loss_model=loss_model,
            complete=complete, fifo=fifo, notify_leaves=notify_leaves,
            notify_joins=notify_joins,
        )
        self._now = 0.0
        self._pid_counter = itertools.count()
        self._qid_counter = itertools.count()
        self._streams: dict[str, random.Random] = {}
        self._process_streams: dict[int, random.Random] = {}
        self._events_executed = 0

    # ------------------------------------------------------------------
    # Clock & randomness
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Total number of events executed so far."""
        return self._events_executed

    def rng_for(self, name: str) -> random.Random:
        """Return the named component's random stream (created on demand)."""
        stream = self._streams.get(name)
        if stream is None:
            stream = self.seeds.stream(name)
            self._streams[name] = stream
        return stream

    def process_rng(self, pid: int) -> random.Random:
        """Return the per-process random stream for ``pid``."""
        stream = self._process_streams.get(pid)
        if stream is None:
            stream = self.seeds.spawn("process").stream(pid)
            self._process_streams[pid] = stream
        return stream

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def schedule(
        self,
        delay: float,
        action: Callable[[], Any],
        *,
        priority: int = PRIORITY_NORMAL,
        label: str = "",
    ) -> Event:
        """Schedule ``action`` to run ``delay`` time units from now."""
        if delay < 0:
            raise SchedulingError(f"cannot schedule {delay} in the past")
        return self.queue.push(self._now + delay, action, priority=priority, label=label)

    def at(
        self,
        time: float,
        action: Callable[[], Any],
        *,
        priority: int = PRIORITY_NORMAL,
        label: str = "",
    ) -> Event:
        """Schedule ``action`` at absolute simulation time ``time``."""
        if time < self._now:
            raise SchedulingError(f"cannot schedule at {time} < now ({self._now})")
        return self.queue.push(time, action, priority=priority, label=label)

    def call_soon(self, action: Callable[[], Any], *, label: str = "") -> Event:
        """Schedule ``action`` at the current instant (after pending ties)."""
        return self.queue.push(self._now, action, label=label)

    # ------------------------------------------------------------------
    # Membership actions (used by churn models and experiment drivers)
    # ------------------------------------------------------------------

    def new_pid(self) -> int:
        """Allocate a fresh entity id.

        Ids are never reused: an entity that leaves and "comes back" is, per
        the paper's entity dimension, a *new* entity.
        """
        return next(self._pid_counter)

    def new_qid(self) -> int:
        """Allocate a fresh query id (unique within this simulation)."""
        return next(self._qid_counter)

    def spawn(
        self, proc: Process, neighbors: Iterable[int] = (), pid: int | None = None
    ) -> Process:
        """Add ``proc`` to the system, connected to ``neighbors``."""
        proc.pid = self.new_pid() if pid is None else pid
        proc._sim = self
        self.network.add_process(proc, neighbors)
        return proc

    def kill(self, pid: int) -> Process:
        """Remove process ``pid`` from the system immediately."""
        return self.network.remove_process(pid)

    def schedule_join(
        self,
        delay: float,
        make_process: Callable[[], Process],
        choose_neighbors: Callable[[frozenset[int]], Iterable[int]],
    ) -> Event:
        """Schedule a join: at ``now + delay`` create a process and attach it.

        ``choose_neighbors`` receives the set of processes present at join
        time and returns the attachment points.
        """

        def _join() -> None:
            proc = make_process()
            self.spawn(proc, choose_neighbors(self.network.present()))

        return self.schedule(
            delay, _join, priority=PRIORITY_MEMBERSHIP, label="join"
        )

    def schedule_leave(self, delay: float, pid: int) -> Event:
        """Schedule process ``pid`` to leave at ``now + delay`` (no-op if it
        already left)."""

        def _leave() -> None:
            if self.network.is_present(pid):
                self.kill(pid)

        return self.schedule(
            delay, _leave, priority=PRIORITY_MEMBERSHIP, label=f"leave:{pid}"
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def step(self) -> bool:
        """Execute one event; return ``False`` if the queue was empty."""
        if not self.queue:
            return False
        event = self.queue.pop()
        if event.time < self._now:
            raise SchedulingError(
                f"time went backwards: {event.time} < {self._now} ({event.label})"
            )
        self._now = event.time
        self._events_executed += 1
        event.action()
        return True

    def run(self, until: float | None = None, max_events: int = 5_000_000) -> float:
        """Run until the queue drains, ``until`` passes, or ``max_events``.

        The ``max_events`` budget is **per call**: each invocation counts
        from zero, so a resumed run (calling ``run`` again with a later
        ``until``) gets a fresh budget.  The lifetime total across all
        calls is exposed separately as :attr:`events_executed`.

        Events scheduled exactly at ``until`` are executed.  Returns the
        simulation time when the run stopped.
        """
        executed = 0
        while self.queue:
            next_time = self.queue.peek_time()
            if until is not None and next_time is not None and next_time > until:
                self._now = until
                return self._now
            if executed >= max_events:
                raise SchedulingError(
                    f"exceeded max_events={max_events}; runaway simulation?"
                )
            self.step()
            executed += 1
        if until is not None and until > self._now:
            self._now = until
        return self._now

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def metrics_snapshot(self, include_timing: bool = False) -> dict[str, Any]:
        """Final metrics snapshot for this simulation.

        Stamps the end-of-run gauges (clock, executed events, population)
        and returns :meth:`repro.obs.metrics.Metrics.snapshot` — the block
        the experiment engine embeds per trial in schema-v2 result
        documents.  Everything except the optional ``timings`` section is
        deterministic for a fixed seed.
        """
        self.metrics.set_gauge("sim.time", self._now)
        self.metrics.set_gauge("sim.events_executed", self._events_executed)
        self.metrics.set_gauge("sim.population", self.network.population())
        self.metrics.set_gauge("sim.trace_events", len(self.trace))
        return self.metrics.snapshot(include_timing=include_timing)
