"""E4 — Completeness vs churn rate in (M_inf_bounded, G_known_diameter).

Claim: conditionally solvable — the wave stays complete while churn is slow
relative to the wave traversal, and degrades as churn accelerates.  The
harness sweeps the replacement churn rate and reports the completeness
curve; the paper-shape assertion is the monotone-ish decline with a clean
regime at the slow end and a broken regime at the fast end.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.bench.runner import QueryConfig, run_query
from repro.bench.sweep import sweep, sweep_table
from repro.churn.models import ReplacementChurn

RATES = [0.0, 0.25, 1.0, 2.0, 4.0, 8.0]
N = 32


def trial(rate: float, seed: int):
    churn = (
        (lambda f: ReplacementChurn(f, rate=rate)) if rate > 0 else None
    )
    return run_query(QueryConfig(
        n=N, topology="er", aggregate="COUNT", seed=seed, horizon=250.0,
        churn=churn,
    ))


def test_e4_completeness_vs_churn(benchmark):
    points = sweep(RATES, trial, trials=6)
    emit(sweep_table(
        points,
        {
            "completeness": lambda p: p.metric(lambda o: o.completeness).mean,
            "fully_complete": lambda p: p.fraction(lambda o: o.completeness == 1.0),
            "reached": lambda p: p.metric(lambda o: float(o.record.result or 0)).mean,
            "core_size": lambda p: p.metric(
                lambda o: float(len(o.verdict.stable_core))
            ).mean,
        },
        parameter_name="churn_rate",
        title=f"E4: wave completeness vs replacement churn, n={N}",
    ))
    mean_completeness = [p.metric(lambda o: o.completeness).mean for p in points]
    # Slow-churn regime: spec fully satisfied.
    assert mean_completeness[0] == 1.0
    assert points[1].metric(lambda o: o.completeness).mean > 0.9
    # Fast-churn regime: the wave loses stable members.
    assert mean_completeness[-1] < mean_completeness[0]
    assert points[-1].fraction(lambda o: o.completeness == 1.0) < 1.0
    # The number of values actually folded shrinks with churn.
    reached = [p.metric(lambda o: float(o.record.result or 0)).mean for p in points]
    assert reached[-1] < reached[0]

    benchmark.pedantic(lambda: trial(2.0, 0), rounds=3, iterations=1)
