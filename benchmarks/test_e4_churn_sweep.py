"""E4 — Completeness vs churn rate in (M_inf_bounded, G_known_diameter).

Claim: conditionally solvable — the wave stays complete while churn is slow
relative to the wave traversal, and degrades as churn accelerates.  The
harness expands the churn-rate grid into an engine plan, executes it, and
reads the completeness curve off the result store; the paper-shape
assertion is the monotone-ish decline with a clean regime at the slow end
and a broken regime at the fast end.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.analysis.tables import render_result_document
from repro.engine import SerialExecutor, build_plan, execute_trial, run_plan

RATES = [0.0, 0.25, 1.0, 2.0, 4.0, 8.0]
N = 32
BASE = {"n": N, "topology": "er", "aggregate": "COUNT", "horizon": 250.0}

PLAN = build_plan(
    "e4-churn-sweep",
    kind="query",
    grid={"churn_rate": RATES},
    base=BASE,
    trials=6,
    root_seed=2007,
)


def test_e4_completeness_vs_churn(benchmark):
    store = run_plan(PLAN, executor=SerialExecutor())
    document = store.document()
    emit(render_result_document(
        document,
        columns=("completeness", "fully_complete", "result_mean", "core_size"),
        title=f"E4: wave completeness vs replacement churn, n={N}",
    ))
    summaries = {
        entry["point"]["churn_rate"]: entry["summary"]
        for entry in document["points"]
    }
    mean_completeness = [summaries[rate]["completeness"] for rate in RATES]
    # Slow-churn regime: spec fully satisfied.
    assert mean_completeness[0] == 1.0
    assert summaries[RATES[1]]["completeness"] > 0.9
    # Fast-churn regime: the wave loses stable members.
    assert mean_completeness[-1] < mean_completeness[0]
    assert summaries[RATES[-1]]["fully_complete"] < 1.0
    # The number of values actually folded shrinks with churn.
    reached = [summaries[rate]["result_mean"] for rate in RATES]
    assert reached[-1] < reached[0]

    representative = build_plan(
        "e4-representative", kind="query",
        grid={"churn_rate": [2.0]}, base=BASE, seeds=[0],
    ).specs[0]
    benchmark.pedantic(lambda: execute_trial(representative),
                       rounds=3, iterations=1)
