"""E1 — One-time query in (M_static, G_complete).

Claim: trivially solvable by request/collect.  The harness sweeps the
population size and reports success rate, latency (one round trip,
independent of n) and message cost (exactly 2(n-1), linear in n).
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.engine.trials import QueryConfig, run_query
from repro.bench.sweep import sweep, sweep_table
from repro.sim.latency import ConstantDelay

SIZES = [10, 20, 40, 80, 160, 320]


def trial(n: int, seed: int):
    return run_query(QueryConfig(
        n=n, protocol="request_collect", aggregate="COUNT",
        seed=seed, delay=ConstantDelay(1.0), horizon=100.0,
    ))


def test_e1_request_collect_scaling(benchmark):
    points = sweep(SIZES, trial, trials=3)
    emit(sweep_table(
        points,
        {
            "solved": lambda p: p.fraction(lambda o: o.ok),
            "latency": lambda p: p.metric(lambda o: o.latency).mean,
            "messages": lambda p: p.metric(lambda o: float(o.messages)).mean,
        },
        parameter_name="n",
        title="E1: request/collect in (M_static, G_complete)",
    ))
    # Paper shape: always solvable; latency flat; messages linear.
    assert all(p.fraction(lambda o: o.ok) == 1.0 for p in points)
    latencies = [p.metric(lambda o: o.latency).mean for p in points]
    assert max(latencies) - min(latencies) < 1e-6  # one RTT regardless of n
    messages = [p.metric(lambda o: float(o.messages)).mean for p in points]
    for n, m in zip(SIZES, messages):
        assert m == 2 * (n - 1)

    benchmark.pedantic(lambda: trial(80, 0), rounds=3, iterations=1)
