"""E21 — Attachment-rule ablation: overlay maintenance under churn.

Extension experiment.  Under churn the overlay's shape is maintained by the
join procedure; the attachment rule is therefore a protocol-level knob on
the geography dimension.  The harness runs the same replacement churn with
different rules and measures wave completeness and overlay connectivity:

* ``k = 1`` grows trees — one departure can split the overlay;
* ``k = 2, 3`` add redundancy — completeness and connectivity improve;
* preferential attachment concentrates edges on hubs — efficient until a
  hub departs.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.analysis.tables import render_table
from repro.engine.trials import QueryConfig, reachable_now, run_query
from repro.churn.models import ReplacementChurn
from repro.sim.rng import iter_seeds
from repro.topology.attachment import (
    DegreeProportionalAttachment,
    UniformAttachment,
)

N = 24
RATE = 1.5
TRIALS = 6

RULES = [
    ("uniform k=1", lambda: UniformAttachment(1)),
    ("uniform k=2", lambda: UniformAttachment(2)),
    ("uniform k=3", lambda: UniformAttachment(3)),
    ("preferential k=2", lambda: DegreeProportionalAttachment(2)),
]


def trial(make_rule, seed: int) -> tuple[float, float]:
    """Returns (values counted, fraction of population reachable at query).

    The spec's completeness ratio is scoped to the reachable component, so
    a *fragmented* overlay can be vacuously "complete"; the informative
    columns are the reachable fraction (overlay health) and the absolute
    count the query folded (query utility).
    """
    outcome = run_query(QueryConfig(
        n=N, topology="er", aggregate="COUNT", seed=seed,
        query_at=40.0, horizon=250.0,
        churn=lambda f: ReplacementChurn(f, rate=RATE, attachment=make_rule()),
    ))
    population = len(outcome.run.present_at(outcome.record.issue_time))
    reach_fraction = (
        len(outcome.reachable_at_issue) / population if population else 0.0
    )
    counted = float(outcome.record.result or 0)
    return counted, reach_fraction


def test_e21_attachment_rules(benchmark):
    rows = []
    results: dict[str, tuple[float, float]] = {}
    for name, make_rule in RULES:
        seeds = list(iter_seeds(2007, TRIALS))
        outcomes = [trial(make_rule, s) for s in seeds]
        counted = sum(o[0] for o in outcomes) / len(outcomes)
        reach = sum(o[1] for o in outcomes) / len(outcomes)
        results[name] = (counted, reach)
        rows.append([name, counted, reach])
    emit(render_table(
        ["attachment rule", "values_counted", "reachable_fraction"],
        rows,
        title=f"E21: overlay maintenance under churn (rate {RATE}), n={N}",
    ))
    # Redundant attachment keeps the overlay usable: k=1 grows trees that
    # fragment, k>=2 keeps most of the population reachable.
    assert results["uniform k=1"][1] < 0.5
    assert results["uniform k=2"][1] > 0.7
    assert results["uniform k=3"][1] >= results["uniform k=1"][1]
    # Query utility follows overlay health.
    assert results["uniform k=2"][0] > results["uniform k=1"][0]

    benchmark.pedantic(
        lambda: trial(lambda: UniformAttachment(2), 0), rounds=3, iterations=1
    )
