"""E12 — Continuous tree aggregation: error vs churn and rebuild period.

Extension experiment.  The continuous counterpart of the one-time query: a
sink maintains a spanning tree and reads a running population count.  The
deployment knob is the rebuild period — rebuild rarely and the estimate
staleness grows with churn; rebuild often and repair is fast but build
waves cost messages.  The harness sweeps both and validates the trade-off.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.analysis.tables import render_table
from repro.churn.models import ReplacementChurn
from repro.protocols.tree_aggregation import TreeAggregationNode
from repro.sim.latency import ConstantDelay
from repro.sim.rng import iter_seeds
from repro.sim.scheduler import Simulator
from repro.topology import generators as gen

N = 20
TRIALS = 4
HORIZON = 80.0
SAMPLE_TIMES = [30.0, 45.0, 60.0, 75.0]


def trial(rebuild: float, rate: float, seed: int) -> tuple[float, int]:
    """Returns (mean |count error| over samples, total messages)."""
    sim = Simulator(seed=seed, delay_model=ConstantDelay(0.2))
    topo = gen.make("er", N, sim.rng_for("topo"))
    pids = []
    for node in sorted(topo.nodes()):
        neighbors = [p for p in topo.neighbors(node) if p < node]
        proc = TreeAggregationNode(
            1.0, is_sink=(node == 0), rebuild_period=rebuild, report_period=0.5,
        )
        pids.append(sim.spawn(proc, neighbors).pid)
    if rate > 0:
        model = ReplacementChurn(
            lambda: TreeAggregationNode(
                1.0, rebuild_period=rebuild, report_period=0.5
            ),
            rate=rate,
        )
        model.immortal.add(pids[0])
        model.install(sim)
    errors = []

    def sample() -> None:
        sink = sim.network.process(pids[0])
        truth = len(sim.network.present())
        errors.append(abs(sink.estimate_count - truth) / truth)

    for t in SAMPLE_TIMES:
        sim.at(t, sample)
    sim.run(until=HORIZON)
    return sum(errors) / len(errors), sim.trace.message_count()


def test_e12_rebuild_tradeoff(benchmark):
    rows = []
    results: dict[tuple[float, float], tuple[float, float]] = {}
    for rebuild in (4.0, 16.0):
        for rate in (0.0, 0.5, 2.0):
            seeds = list(iter_seeds(2007, TRIALS))
            outcomes = [trial(rebuild, rate, s) for s in seeds]
            error = sum(o[0] for o in outcomes) / len(outcomes)
            messages = sum(o[1] for o in outcomes) / len(outcomes)
            results[(rebuild, rate)] = (error, messages)
            rows.append([rebuild, rate, error, messages])
    emit(render_table(
        ["rebuild_period", "churn_rate", "count_error", "messages"],
        rows,
        title=f"E12: continuous tree aggregation, n={N}, report period 0.5",
    ))
    # Static system: exact regardless of rebuild period.
    assert results[(4.0, 0.0)][0] < 0.05
    assert results[(16.0, 0.0)][0] < 0.05
    # Under churn, faster rebuilds track the population more closely.
    assert results[(4.0, 2.0)][0] <= results[(16.0, 2.0)][0] + 0.02
    # Error grows with churn for a fixed rebuild period.
    assert results[(16.0, 2.0)][0] > results[(16.0, 0.0)][0]
    # And the price of fast rebuilds is messages.
    assert results[(4.0, 0.0)][1] > results[(16.0, 0.0)][1]

    benchmark.pedantic(lambda: trial(8.0, 1.0, 0), rounds=3, iterations=1)
