"""E14 — Edge churn ablation: the geography dimension made time-varying.

Extension experiment.  Entity churn and edge churn stress a wave
differently: a rewired edge can cut the echo path of an in-flight wave even
though *nobody leaves* — every entity stays in the stable core, so
completeness failures are pure geography.  The harness sweeps the rewiring
rate (connectivity-preserving) and reports wave completeness; the shape
mirrors E4 with the entity dimension held fixed.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.analysis.tables import render_table
from repro.core.aggregates import COUNT
from repro.core.spec import OneTimeQuerySpec
from repro.protocols.one_time_query import WaveNode
from repro.sim.latency import ConstantDelay
from repro.sim.rng import iter_seeds
from repro.sim.scheduler import Simulator
from repro.topology import generators as gen
from repro.topology.dynamic import EdgeRewiringChurn

N = 24
TRIALS = 6


def trial(rate: float, seed: int) -> tuple[bool, float]:
    """Returns (spec ok, completeness) for one wave under edge churn."""
    sim = Simulator(seed=seed, delay_model=ConstantDelay(1.0))
    topo = gen.make("ring", N, sim.rng_for("topo"))
    pids = []
    for node in sorted(topo.nodes()):
        neighbors = [p for p in topo.neighbors(node) if p < node]
        pids.append(sim.spawn(WaveNode(1.0), neighbors).pid)
    if rate > 0:
        EdgeRewiringChurn(rate=rate, preserve_connectivity=True).install(sim)
    querier = sim.network.process(pids[0])
    sim.at(5.0, lambda: querier.issue_query(COUNT, ttl=None))
    sim.run(until=300.0)
    verdict = OneTimeQuerySpec().check(sim.trace)[0]
    return verdict.ok, verdict.completeness_ratio


def test_e14_edge_churn(benchmark):
    rows = []
    curve: dict[float, float] = {}
    for rate in (0.0, 0.5, 2.0, 8.0):
        seeds = list(iter_seeds(2007, TRIALS))
        outcomes = [trial(rate, s) for s in seeds]
        ok_fraction = sum(1 for ok, _ in outcomes if ok) / len(outcomes)
        completeness = sum(c for _, c in outcomes) / len(outcomes)
        curve[rate] = completeness
        rows.append([rate, ok_fraction, completeness])
    emit(render_table(
        ["rewire_rate", "spec_ok", "completeness"],
        rows,
        title=f"E14: wave vs edge churn (no entity ever leaves), ring n={N}",
    ))
    # No rewiring: perfect.
    assert curve[0.0] == 1.0
    # Heavy rewiring costs completeness even though the stable core is the
    # entire population (pure geography failures).
    assert curve[8.0] < curve[0.0]

    benchmark.pedantic(lambda: trial(2.0, 0), rounds=3, iterations=1)
