"""E20 — The paper's claims in their native synchronous-rounds model.

Two sub-experiments on knowledge flooding in lock-step rounds:

* **E20a** — static graphs: the querier is complete after ``R`` rounds iff
  ``R >= eccentricity(querier)``; sweeping ``R`` around the eccentricity
  shows a hard threshold — the purest form of "you must know the diameter".
* **E20b** — the synchronous diagonalisation: an adversary adding one chain
  process per round keeps the flood's frontier permanently behind; the
  known fraction *decreases* as rounds pass, while everything that existed
  ``R`` rounds ago is known — the frontier, not the past, is the problem.
"""

from __future__ import annotations

import random

from benchmarks.conftest import emit
from repro.analysis.tables import render_table
from repro.synchronous.flooding import KnowledgeFlood
from repro.synchronous.runner import SynchronousSystem, build_from_topology
from repro.topology import generators as gen

N = 24


def run_flood(topo, rounds: int) -> tuple[int, int]:
    """Returns (known count at querier, messages)."""
    system = SynchronousSystem()
    pids = build_from_topology(
        system, topo, lambda node: KnowledgeFlood(float(node))
    )
    system.run(rounds)
    return len(system.process(pids[0]).known), system.messages_sent


def test_e20a_round_threshold(benchmark):
    rows = []
    for family in ("ring", "line", "tree", "er"):
        topo = gen.make(family, N, random.Random(7))
        ecc = topo.eccentricity(0)
        for offset in (-2, -1, 0, +1):
            rounds = max(0, ecc + offset)
            known, _ = run_flood(topo, rounds)
            complete = known == N
            rows.append([family, ecc, rounds, known, complete])
            # The hard threshold at R = eccentricity.
            if offset >= 0:
                assert complete, (family, rounds)
            elif rounds < ecc:
                assert not complete, (family, rounds)
    emit(render_table(
        ["topology", "eccentricity", "rounds", "known", "complete"],
        rows,
        title=f"E20a: synchronous flooding threshold, n={N}",
    ))

    benchmark.pedantic(
        lambda: run_flood(gen.ring(N), N // 2), rounds=3, iterations=1
    )


def test_e20b_synchronous_diagonalisation(benchmark):
    system = SynchronousSystem()
    querier_pid = system.add_process(KnowledgeFlood(0.0))
    tail = [querier_pid]

    def extend(round_no, sys_):
        tail.append(sys_.add_process(KnowledgeFlood(1.0), [tail[-1]]))

    rows = []
    fractions = []
    checkpoints = (10, 20, 40, 80)
    done = 0
    for target in checkpoints:
        system.run(target - done, before_round=extend)
        done = target
        querier = system.process(querier_pid)
        population = len(system.present())
        fraction = len(querier.known) / population
        fractions.append(fraction)
        rows.append([target, population, len(querier.known), fraction])
    emit(render_table(
        ["rounds", "population", "querier_knows", "fraction"],
        rows,
        title="E20b: one-new-process-per-round adversary vs flooding",
    ))
    # The frontier stays ahead forever: never complete...
    assert all(f < 1.0 for f in fractions)
    # ...and the known fraction converges to 1/2 from below (the flood
    # covers the older half of an ever-doubling... linearly growing chain).
    assert fractions[-1] <= fractions[0] + 0.05
    assert abs(fractions[-1] - 0.5) < 0.1

    def one_round_batch():
        sys_ = SynchronousSystem()
        chain = [sys_.add_process(KnowledgeFlood(0.0))]
        sys_.run(20, before_round=lambda r, s: chain.append(
            s.add_process(KnowledgeFlood(1.0), [chain[-1]])
        ))
        return sys_.messages_sent

    benchmark.pedantic(one_round_batch, rounds=3, iterations=1)
