#!/usr/bin/env python3
"""Engine perf emitter: serial vs parallel wall-time into BENCH_engine.json.

Runs one fixed plan (the E4 churn-sweep shape) through both executor
backends, asserts their canonical result documents are byte-identical (the
engine's core guarantee), and records the wall-times.  The output file is
untracked scratch — a perf snapshot of this machine, not a fixture.

Run:  PYTHONPATH=src python benchmarks/emit_bench.py [--jobs N] [--output FILE]

``--smoke`` shrinks the plan to a seconds-scale run for CI, which executes
it with DeprecationWarnings promoted to errors — any internal code path
that still routes through the `repro.bench` shims fails the build.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time

from repro.api import (
    ParallelExecutor,
    SerialExecutor,
    build_plan,
    run_plan,
)

RATES = [0.0, 0.5, 2.0, 8.0]
TRIALS = 8
BASE = {"n": 32, "topology": "er", "aggregate": "COUNT", "horizon": 300.0}

SMOKE_RATES = [0.0, 2.0]
SMOKE_TRIALS = 2
SMOKE_BASE = {"n": 12, "topology": "er", "aggregate": "COUNT",
              "horizon": 150.0}


def _metrics_totals(store) -> dict[str, int | float]:
    """Sum the per-trial counter blocks into whole-plan totals."""
    totals: dict[str, int | float] = {}
    for result in store.results:
        for name, value in result.metrics.get("counters", {}).items():
            totals[name] = totals.get(name, 0) + value
    return {name: totals[name] for name in sorted(totals)}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 1,
                        help="workers for the parallel backend")
    parser.add_argument("--output", default="BENCH_engine.json")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny plan for CI: same checks, seconds-scale")
    args = parser.parse_args()

    rates = SMOKE_RATES if args.smoke else RATES
    trials = SMOKE_TRIALS if args.smoke else TRIALS
    base = SMOKE_BASE if args.smoke else BASE

    plan = build_plan(
        "bench-engine", kind="query",
        grid={"churn_rate": rates}, base=base,
        trials=trials, root_seed=2007,
    )
    print(f"plan: {len(plan)} trials "
          f"({len(rates)} rates x {trials} trials), n={base['n']}"
          f"{' [smoke]' if args.smoke else ''}")

    start = time.perf_counter()
    serial_store = run_plan(plan, executor=SerialExecutor())
    serial_wall = time.perf_counter() - start
    print(f"serial   : {serial_wall:.2f}s")

    start = time.perf_counter()
    parallel_store = run_plan(plan, executor=ParallelExecutor(args.jobs))
    parallel_wall = time.perf_counter() - start
    print(f"parallel : {parallel_wall:.2f}s (jobs={args.jobs})")

    identical = serial_store.to_json() == parallel_store.to_json()
    print(f"documents byte-identical: {identical}")
    if not identical:
        raise SystemExit("executor backends disagree — engine bug")

    trial_walls = [r.wall_time for r in serial_store.results]
    payload = {
        "benchmark": "engine-serial-vs-parallel",
        "plan": plan.meta(),
        "grid": {"churn_rate": rates},
        "base": base,
        "smoke": args.smoke,
        "machine": {
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "jobs": args.jobs,
        "serial_wall_s": round(serial_wall, 4),
        "parallel_wall_s": round(parallel_wall, 4),
        "speedup": round(serial_wall / parallel_wall, 3),
        "documents_identical": identical,
        "trial_wall_s": {
            "min": round(min(trial_walls), 4),
            "max": round(max(trial_walls), 4),
            "mean": round(sum(trial_walls) / len(trial_walls), 4),
        },
        "events_executed_total": sum(
            r.events_executed for r in serial_store.results
        ),
        "metrics_totals": _metrics_totals(serial_store),
    }
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output} (speedup {payload['speedup']}x "
          f"on {payload['machine']['cpu_count']} core(s))")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
