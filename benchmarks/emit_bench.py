#!/usr/bin/env python3
"""Engine perf emitter: serial vs warm-pool wall-time into BENCH_engine.json.

Runs one fixed plan (the E4 churn-sweep shape) five ways — the serial
reference backend, the same backend with a telemetry recorder attached,
the same backend with a checkpoint journal attached, the chunked
warm-pool parallel backend, and the streaming (JSONL) path on the same
warm pool — asserts all five produce the byte-identical canonical
result document (the engine's core guarantee), and records wall-times
plus the derived ``speedup``, ``trials_per_sec_*``,
``telemetry_overhead_ratio`` and ``checkpoint_overhead_ratio`` metrics
that ``repro bench diff`` gates in CI (telemetry and checkpoint
journalling must each stay under 5% overhead).

Run:  PYTHONPATH=src python benchmarks/emit_bench.py [--jobs N] [--output FILE]

The committed ``benchmarks/BENCH_engine.json`` is the regression
baseline for these families; re-emit it (4 workers) when the engine's
perf profile intentionally changes.  ``--smoke`` shrinks the plan to a
seconds-scale run for CI, which executes it with DeprecationWarnings
promoted to errors — any internal code path that still routes through a
deprecated shim fails the build.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import tempfile
import time

from repro.api import (
    ExecutorSpec,
    build_plan,
    load_document,
    run_plan,
    stream_plan,
)

RATES = [0.0, 0.5, 2.0, 8.0]
TRIALS = 8
BASE = {"n": 32, "topology": "er", "aggregate": "COUNT", "horizon": 300.0}

SMOKE_RATES = [0.0, 2.0]
SMOKE_TRIALS = 2
SMOKE_BASE = {"n": 12, "topology": "er", "aggregate": "COUNT",
              "horizon": 150.0}


def _metrics_totals(store) -> dict[str, int | float]:
    """Sum the per-trial counter blocks into whole-plan totals."""
    totals: dict[str, int | float] = {}
    for result in store.results:
        for name, value in result.metrics.get("counters", {}).items():
            totals[name] = totals.get(name, 0) + value
    return {name: totals[name] for name in sorted(totals)}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 1,
                        help="workers for the parallel backend")
    parser.add_argument("--chunk", type=int, default=None,
                        help="fixed trials per task (default: adaptive)")
    parser.add_argument("--output", default="BENCH_engine.json")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny plan for CI: same checks, seconds-scale")
    args = parser.parse_args()

    rates = SMOKE_RATES if args.smoke else RATES
    trials = SMOKE_TRIALS if args.smoke else TRIALS
    base = SMOKE_BASE if args.smoke else BASE

    plan = build_plan(
        "bench-engine", kind="query",
        grid={"churn_rate": rates}, base=base,
        trials=trials, root_seed=2007,
    )
    total = len(plan)
    print(f"plan: {total} trials "
          f"({len(rates)} rates x {trials} trials), n={base['n']}"
          f"{' [smoke]' if args.smoke else ''}")

    # Untimed warm-up pass: the very first execution pays one-time import
    # and cache-fill costs that would otherwise land entirely on the
    # serial arm and skew the telemetry-overhead ratio.
    run_plan(plan, executor=ExecutorSpec.serial())

    def timed_serial(telemetry=None):
        start = time.perf_counter()
        store = run_plan(plan, executor=ExecutorSpec.serial(),
                         telemetry=telemetry)
        return store, time.perf_counter() - start

    # Median-of-3 for the serial/telemetry/checkpoint trio: the overhead
    # gates are a tight 5%, so the arms must be measured above
    # run-to-run noise.  Each checkpoint arm gets a fresh journal path —
    # an existing same-plan journal would auto-resume and execute
    # nothing, timing the no-op instead of the journalling cost.
    serial_walls, telemetry_walls, checkpoint_walls = [], [], []
    for _ in range(3):
        serial_store, wall = timed_serial()
        serial_walls.append(wall)
        with tempfile.NamedTemporaryFile(
            mode="w", suffix=".telemetry.jsonl", delete=False
        ) as handle:
            telemetry_path = handle.name
        try:
            telemetry_store, wall = timed_serial(telemetry=telemetry_path)
        finally:
            os.unlink(telemetry_path)
        telemetry_walls.append(wall)
        with tempfile.NamedTemporaryFile(
            mode="w", suffix=".checkpoint.jsonl", delete=False
        ) as handle:
            checkpoint_path = handle.name
        os.unlink(checkpoint_path)
        try:
            start = time.perf_counter()
            checkpoint_store = run_plan(plan, executor=ExecutorSpec.serial(),
                                        checkpoint=checkpoint_path)
            wall = time.perf_counter() - start
        finally:
            if os.path.exists(checkpoint_path):
                os.unlink(checkpoint_path)
        checkpoint_walls.append(wall)
    serial_wall = sorted(serial_walls)[1]
    telemetry_wall = sorted(telemetry_walls)[1]
    checkpoint_wall = sorted(checkpoint_walls)[1]
    print(f"serial   : {serial_wall:.2f}s (median of 3)")
    # Overhead below 1.0 is timing noise, not a speedup: clamp so the
    # committed baseline is a stable 1.0 and the diff gate's 5% budget
    # bounds the absolute overhead.
    telemetry_overhead = max(1.0, telemetry_wall / serial_wall)
    print(f"telemetry: {telemetry_wall:.2f}s "
          f"({telemetry_overhead:.3f}x serial, median of 3)")
    checkpoint_overhead = max(1.0, checkpoint_wall / serial_wall)
    print(f"checkpoint: {checkpoint_wall:.2f}s "
          f"({checkpoint_overhead:.3f}x serial, median of 3)")

    # One materialised backend for both parallel runs: the pool forks and
    # warms once, then run_plan and stream_plan reuse it.  The untimed
    # warm-up run pays that one-time fork/import cost so the timed runs
    # measure steady-state chunked dispatch — the regime every run after
    # the first sees in real use.
    spec = ExecutorSpec.parallel(jobs=args.jobs, chunk=args.chunk)
    with spec.make() as backend:
        run_plan(plan, executor=backend)
        start = time.perf_counter()
        parallel_store = run_plan(plan, executor=backend)
        parallel_wall = time.perf_counter() - start
        chunks = getattr(backend, "chunks_dispatched", 0)
        print(f"parallel : {parallel_wall:.2f}s "
              f"(jobs={args.jobs}, {chunks} chunks)")

        with tempfile.NamedTemporaryFile(
            mode="w", suffix=".jsonl", delete=False
        ) as handle:
            stream_path = handle.name
        try:
            start = time.perf_counter()
            stream_plan(plan, stream_path, executor=backend)
            stream_wall = time.perf_counter() - start
            stream_doc = load_document(stream_path)
        finally:
            os.unlink(stream_path)
        print(f"streaming: {stream_wall:.2f}s (same pool)")

    canonical = json.dumps(serial_store.document(), sort_keys=True)
    identical = (
        serial_store.to_json() == parallel_store.to_json()
        and serial_store.to_json() == telemetry_store.to_json()
        and serial_store.to_json() == checkpoint_store.to_json()
        and canonical == json.dumps(stream_doc, sort_keys=True)
    )
    print("documents byte-identical "
          f"(serial/telemetry/checkpoint/parallel/stream): {identical}")
    if not identical:
        raise SystemExit("executor backends disagree — engine bug")

    trial_walls = [r.wall_time for r in serial_store.results]
    payload = {
        "benchmark": "engine-serial-vs-parallel",
        "plan": plan.meta(),
        "grid": {"churn_rate": rates},
        "base": base,
        "smoke": args.smoke,
        "machine": {
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "jobs": args.jobs,
        "chunks_dispatched": chunks,
        "serial_wall_s": round(serial_wall, 4),
        "telemetry_wall_s": round(telemetry_wall, 4),
        "checkpoint_wall_s": round(checkpoint_wall, 4),
        "parallel_wall_s": round(parallel_wall, 4),
        "streaming_wall_s": round(stream_wall, 4),
        "telemetry_overhead_ratio": round(telemetry_overhead, 4),
        "checkpoint_overhead_ratio": round(checkpoint_overhead, 4),
        "speedup": round(serial_wall / parallel_wall, 3),
        "trials_per_sec_serial": round(total / serial_wall, 3),
        "trials_per_sec_parallel": round(total / parallel_wall, 3),
        "documents_identical": identical,
        "trial_wall_s": {
            "min": round(min(trial_walls), 4),
            "max": round(max(trial_walls), 4),
            "mean": round(sum(trial_walls) / len(trial_walls), 4),
        },
        "events_executed_total": sum(
            r.events_executed for r in serial_store.results
        ),
        "metrics_totals": _metrics_totals(serial_store),
    }
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output} (speedup {payload['speedup']}x "
          f"on {payload['machine']['cpu_count']} core(s))")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
