"""E11 — Three census families under churn: directional bias.

Extension experiment (no table in the position paper; derived from its
taxonomy).  Three ways to count a dynamic population:

* the **wave** counts who it reaches in one shot (undercounts under churn
  as routes break);
* **push-sum** conserves mass, and departures destroy the mass they hold
  (drifts, direction depends on which mass is lost);
* **extrema propagation** keeps minima forever (counts everyone *ever*
  seen: overcounts a shrinking or turning-over population).

The harness runs all three on the same churn schedule and reports the
signed relative bias, validating the directional predictions.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.analysis.tables import render_table
from repro.engine.trials import QueryConfig, run_query
from repro.churn.models import ReplacementChurn
from repro.protocols.extrema import ExtremaNode
from repro.sim.latency import ConstantDelay
from repro.sim.rng import iter_seeds
from repro.sim.scheduler import Simulator
from repro.topology import generators as gen

N = 24
TRIALS = 4
READ_AT = 60.0


def wave_count(rate: float, seed: int) -> tuple[float, float]:
    outcome = run_query(QueryConfig(
        n=N, topology="er", aggregate="COUNT", seed=seed,
        query_at=READ_AT, horizon=READ_AT + 150.0,
        churn=(lambda f: ReplacementChurn(f, rate=rate)) if rate else None,
    ))
    truth = float(len(outcome.run.present_at(READ_AT)))
    measured = float(outcome.record.result or 0)
    return measured, truth


def extrema_count(rate: float, seed: int) -> tuple[float, float]:
    sim = Simulator(seed=seed, delay_model=ConstantDelay(0.3))
    topo = gen.make("er", N, sim.rng_for("topo"))
    pids = []
    for node in sorted(topo.nodes()):
        neighbors = [p for p in topo.neighbors(node) if p < node]
        pids.append(sim.spawn(ExtremaNode(k=256), neighbors).pid)
    if rate:
        model = ReplacementChurn(lambda: ExtremaNode(k=256), rate=rate)
        model.immortal.add(pids[0])
        model.install(sim)
    sim.run(until=READ_AT)
    reader = sim.network.process(pids[0])
    return reader.estimate, float(len(sim.network.present()))


def signed_bias(pairs: list[tuple[float, float]]) -> float:
    """Mean of (measured - truth) / truth across trials."""
    return sum((m - t) / t for m, t in pairs) / len(pairs)


def test_e11_census_bias(benchmark):
    rows = []
    biases: dict[tuple[str, float], float] = {}
    for rate in (0.0, 1.0, 3.0):
        seeds = list(iter_seeds(2007, TRIALS))
        for name, fn in (("wave", wave_count), ("extrema", extrema_count)):
            pairs = [fn(rate, s) for s in seeds]
            bias = signed_bias(pairs)
            biases[(name, rate)] = bias
            rows.append([name, rate, bias])
    emit(render_table(
        ["family", "churn_rate", "signed_bias"],
        rows,
        title=f"E11: census bias by protocol family, n={N}",
    ))
    # No churn: both are (nearly) unbiased.
    assert abs(biases[("wave", 0.0)]) < 0.05
    assert abs(biases[("extrema", 0.0)]) < 0.2   # estimator noise only
    # Churn: the wave under-counts, extrema propagation over-counts.
    assert biases[("wave", 3.0)] < -0.1
    assert biases[("extrema", 3.0)] > 0.5
    # The directions are opposite — the headline of this experiment.
    assert biases[("wave", 3.0)] < 0 < biases[("extrema", 3.0)]

    benchmark.pedantic(lambda: extrema_count(1.0, 0), rounds=3, iterations=1)
