"""Shared helpers for the experiment benchmarks (E1-E10).

Each benchmark module regenerates one experiment from DESIGN.md: it runs
the parameter sweep, prints the result table (visible with ``pytest -s``),
asserts the qualitative shape the paper's framework predicts, and times a
representative scenario with pytest-benchmark.
"""

from __future__ import annotations


def emit(table: str) -> None:
    """Print an experiment table, framed for readability in bench output."""
    print()
    print(table)
    print()
