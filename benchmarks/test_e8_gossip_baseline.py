"""E8 — Baseline comparison: deterministic wave vs push-sum gossip.

Claim: the wave gives exact answers while the system holds still and
degrades abruptly under churn; gossip is approximate always but degrades
gracefully.  The harness sweeps churn rate and reports both protocols'
relative error on the AVG aggregate.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.analysis.tables import render_table
from repro.engine.trials import (
    GossipConfig,
    QueryConfig,
    run_gossip,
    run_query,
)
from repro.churn.models import ReplacementChurn
from repro.sim.rng import iter_seeds

RATES = [0.0, 0.5, 2.0]
N = 24
TRIALS = 4


def wave_error(rate: float, seed: int) -> float:
    outcome = run_query(QueryConfig(
        n=N, topology="er", aggregate="AVG", seed=seed, horizon=250.0,
        churn=(lambda f: ReplacementChurn(f, rate=rate)) if rate else None,
    ))
    return outcome.error if outcome.terminated else float("inf")


def gossip_error(rate: float, seed: int) -> float:
    outcome = run_gossip(GossipConfig(
        n=N, topology="er", mode="avg", rounds=60, seed=seed,
        churn=(lambda f: ReplacementChurn(f, rate=rate)) if rate else None,
    ))
    return outcome.error


def test_e8_wave_vs_gossip(benchmark):
    rows = []
    curves: dict[str, dict[float, float]] = {"wave": {}, "gossip": {}}
    for rate in RATES:
        seeds = list(iter_seeds(2007, TRIALS))
        wave_errors = [wave_error(rate, s) for s in seeds]
        gossip_errors = [gossip_error(rate, s) for s in seeds]
        wave_mean = sum(wave_errors) / len(wave_errors)
        gossip_mean = sum(gossip_errors) / len(gossip_errors)
        curves["wave"][rate] = wave_mean
        curves["gossip"][rate] = gossip_mean
        rows.append([rate, wave_mean, gossip_mean])
    emit(render_table(
        ["churn_rate", "wave_rel_error", "gossip_rel_error"],
        rows,
        title=f"E8: AVG relative error, wave vs push-sum, n={N}",
    ))
    # Paper shape: with no churn the wave is exact and gossip merely close.
    assert curves["wave"][0.0] == 0.0
    assert curves["gossip"][0.0] < 0.1
    # Under churn both err; gossip stays bounded (graceful degradation).
    assert curves["gossip"][2.0] < 1.0
    # The wave's exactness is gone once churn bites.
    assert curves["wave"][2.0] > 0.0

    benchmark.pedantic(lambda: gossip_error(0.5, 0), rounds=3, iterations=1)
