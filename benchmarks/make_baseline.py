#!/usr/bin/env python3
"""Regenerate the committed bench-diff baseline (benchmarks/BASELINE.json).

The engine's result documents are deterministic for a fixed plan and root
seed (wall clock is quarantined into ``timings``), so the smoke-shaped
churn-sweep document below is an exact fixture: any change in verdicts,
completeness, message counts or executed events shows up as a
``repro bench diff`` regression.  CI regenerates a candidate with this
script and gates it against the committed baseline::

    PYTHONPATH=src python benchmarks/make_baseline.py --output /tmp/candidate.json
    PYTHONPATH=src python -m repro bench diff \
        benchmarks/BASELINE.json /tmp/candidate.json --fail-on-regression

Re-run with ``--output benchmarks/BASELINE.json`` and commit the result
when a change *intentionally* shifts the numbers.
"""

from __future__ import annotations

import argparse

from repro.api import ExecutorSpec, build_plan, run_plan

# The emit_bench.py smoke shape: seconds-scale, still exercises churn.
RATES = [0.0, 2.0]
TRIALS = 2
BASE = {"n": 12, "topology": "er", "aggregate": "COUNT", "horizon": 150.0}
ROOT_SEED = 2007


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default="benchmarks/BASELINE.json")
    parser.add_argument("--jobs", type=int, default=1,
                        help="workers (documents are identical either way)")
    args = parser.parse_args()

    plan = build_plan(
        "bench-baseline", kind="query",
        grid={"churn_rate": RATES}, base=BASE,
        trials=TRIALS, root_seed=ROOT_SEED,
    )
    spec = (ExecutorSpec.parallel(jobs=args.jobs) if args.jobs > 1
            else ExecutorSpec.serial())
    store = run_plan(plan, executor=spec)
    store.write(args.output)
    print(f"baseline document written to {args.output} "
          f"({len(plan)} trials)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
