"""E2 — One-time query in (M_static, G_known_diameter).

Claim: solvable by a TTL = D wave on any connected topology.  The harness
sweeps topology families and sizes, reporting success rate, latency
(~ 2 * D hops) and message cost (O(edges)).
"""

from __future__ import annotations

import random

from benchmarks.conftest import emit
from repro.analysis.tables import render_table
from repro.engine.trials import QueryConfig, run_query
from repro.sim.latency import ConstantDelay
from repro.sim.rng import iter_seeds
from repro.topology import generators as gen

FAMILIES = ["ring", "line", "star", "torus", "tree", "er", "regular"]
N = 36


def trial(family: str, seed: int):
    topo = gen.make(family, N, random.Random(seed))
    diameter = topo.diameter()
    outcome = run_query(QueryConfig(
        n=N, topology=topo, aggregate="COUNT", ttl=diameter,
        seed=seed, delay=ConstantDelay(1.0), horizon=1000.0,
    ))
    return outcome, diameter


def test_e2_wave_across_topologies(benchmark):
    rows = []
    for family in FAMILIES:
        outcomes = [trial(family, seed) for seed in iter_seeds(2007, 3)]
        solved = sum(1 for o, _ in outcomes if o.ok) / len(outcomes)
        diameter = outcomes[0][1]
        latency = sum(o.latency for o, _ in outcomes) / len(outcomes)
        messages = sum(o.messages for o, _ in outcomes) / len(outcomes)
        rows.append([family, diameter, solved, latency, messages])
        # Paper shape: with TTL = D the wave always solves the problem,
        # and the echo completes within ~2 * D hop delays.
        assert solved == 1.0
        assert latency <= 2 * diameter + 2
    emit(render_table(
        ["topology", "diameter", "solved", "latency", "messages"],
        rows,
        title=f"E2: TTL=D wave in (M_static, G_known_diameter), n={N}",
    ))
    # Latency tracks diameter: the flattest topology (star) beats the line.
    by_family = {row[0]: row for row in rows}
    assert by_family["star"][3] < by_family["line"][3]

    benchmark.pedantic(lambda: trial("er", 1), rounds=3, iterations=1)
