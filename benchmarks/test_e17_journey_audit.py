"""E17 — Journey audit: are wave misses impossible or just inefficient?

Extension experiment using the time-varying-graph formalism.  A journey
(time-respecting path) from the querier is a *necessary* condition for any
protocol to count a member; auditing each missed stable-core member against
journey reachability splits the wave's completeness failures into

* **impossible** — no journey existed: the run itself forbade counting the
  member, no protocol could do better;
* **unexplained** — a journey existed but the wave did not exploit it
  (e.g. its echo path broke after the forward wave passed): the protocol's
  own inefficiency.

The harness sweeps churn and reports the split — quantifying how much of
the conditional entries' failure mass is fundamental.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.analysis.tables import render_table
from repro.engine.trials import QueryConfig, run_query
from repro.churn.models import ReplacementChurn
from repro.core.journeys import audit_query_misses
from repro.sim.latency import ConstantDelay
from repro.sim.rng import iter_seeds

N = 20
TRIALS = 8


def audit_at_rate(rate: float) -> tuple[int, int, int]:
    """Returns (queries with misses, impossible misses, unexplained)."""
    with_misses = impossible = unexplained = 0
    for seed in iter_seeds(2007, TRIALS):
        outcome = run_query(QueryConfig(
            n=N, topology="ring", aggregate="COUNT", seed=seed,
            horizon=200.0, delay=ConstantDelay(1.0),
            churn=lambda f: ReplacementChurn(f, rate=rate),
        ))
        if not outcome.terminated or not outcome.verdict.missing_core:
            continue
        with_misses += 1
        audit = audit_query_misses(
            outcome.trace,
            querier=outcome.querier,
            issue_time=outcome.record.issue_time,
            return_time=outcome.record.return_time,
            missing=outcome.verdict.missing_core,
            hop_time=1.0,
        )
        impossible += len(audit.impossible)
        unexplained += len(audit.unexplained_misses)
    return with_misses, impossible, unexplained


def test_e17_journey_audit(benchmark):
    rows = []
    totals = {"impossible": 0, "unexplained": 0}
    for rate in (1.0, 2.0, 4.0):
        with_misses, impossible, unexplained = audit_at_rate(rate)
        rows.append([rate, with_misses, impossible, unexplained])
        totals["impossible"] += impossible
        totals["unexplained"] += unexplained
    emit(render_table(
        ["churn_rate", "queries_with_misses", "impossible_misses",
         "protocol_misses"],
        rows,
        title=f"E17: journey audit of wave misses, ring n={N}",
    ))
    # The scenarios produce misses, and both categories appear: some
    # failures are fundamental (no journey), some are the wave's own —
    # which is the argument for better protocols in conditional classes.
    assert totals["impossible"] + totals["unexplained"] > 0
    assert totals["impossible"] > 0

    benchmark.pedantic(lambda: audit_at_rate(2.0), rounds=2, iterations=1)
