"""E10 — The solvability matrix: the paper's landscape, decided and checked.

The harness renders the full (arrival x knowledge) matrix from the decision
table and cross-validates a representative cell of each verdict kind
empirically: a YES cell must succeed in simulation, a NO cell must be
defeated by its adversary, and a CONDITIONAL cell must flip with its
condition.  The empirical cells run as small engine plans — declarative
churn specs instead of hand-rolled builder lambdas.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.analysis.tables import render_matrix
from repro.churn.adversary import defeat_ttl
from repro.core.aggregates import COUNT
from repro.core.classes import standard_lattice
from repro.core.solvability import Solvable, solvability_matrix
from repro.core.spec import OneTimeQuerySpec
from repro.engine import build_plan, run_plan
from repro.protocols.one_time_query import WaveNode

SYMBOL = {Solvable.YES: "yes", Solvable.CONDITIONAL: "cond", Solvable.NO: "NO"}


def test_e10_matrix(benchmark):
    lattice = standard_lattice(n=16, c=64, diameter=8, size_bound=64)
    matrix = solvability_matrix(lattice)
    row_labels = []
    col_labels = []
    cells = {}
    for system, result in matrix.items():
        row = str(system.arrival)
        col = str(system.knowledge)
        if row not in row_labels:
            row_labels.append(row)
        if col not in col_labels:
            col_labels.append(col)
        cells[(row, col)] = SYMBOL[result.answer]
    emit(render_matrix(
        row_labels, col_labels, cells, corner="arrival \\ knowledge",
        title="E10: one-time query solvability matrix",
    ))

    # Structural shape: rows get worse downward, columns worse rightward
    # (the orders used to build the lattice).
    order = {"yes": 2, "cond": 1, "NO": 0}
    for col in col_labels:
        column = [order[cells[(row, col)]] for row in row_labels]
        assert column == sorted(column, reverse=True), col

    # Empirical cross-validation of one cell per verdict kind:
    # YES — (M_static, G_complete):
    yes_store = run_plan(build_plan(
        "e10-yes-cell", kind="query",
        base={"n": 16, "protocol": "request_collect", "aggregate": "COUNT",
              "horizon": 100.0},
        seeds=[1],
    ))
    assert yes_store.results[0].ok

    # NO — (M_*, G_local) via the TTL diagonalisation:
    sim, pids = defeat_ttl(6, lambda: WaveNode(1.0))
    sim.network.process(pids[0]).issue_query(COUNT, ttl=6)
    sim.run(until=1000)
    assert not OneTimeQuerySpec().check(sim.trace)[0].ok

    # CONDITIONAL — (M_inf_bounded, G_known_diameter): flips with churn.
    conditional_base = {"n": 16, "topology": "er", "aggregate": "COUNT",
                        "horizon": 200.0}
    slow_store = run_plan(build_plan(
        "e10-conditional-slow", kind="query",
        grid={"churn_rate": [0.05]}, base=conditional_base, seeds=[2],
    ))
    assert slow_store.results[0].completeness == 1.0
    fast_store = run_plan(build_plan(
        "e10-conditional-fast", kind="query",
        grid={"churn_rate": [8.0]}, base=conditional_base, seeds=[1, 2, 3],
    ))
    assert any(result.completeness < 1.0 for result in fast_store.results)

    benchmark.pedantic(
        lambda: solvability_matrix(standard_lattice()), rounds=5, iterations=1
    )
