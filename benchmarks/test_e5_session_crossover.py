"""E5 — Crossover: session length vs query latency.

Claim: under session churn the one-time query is solvable exactly when
sessions outlast the query wave — a crossover in mean session length around
the wave's traversal time.  The harness churns the *entire* population
(initial members included) with exponential and heavy-tailed Pareto session
lengths at matched means, holding the stationary population near constant
(arrival rate = n / mean lifetime), and locates the crossover.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.analysis.tables import render_table
from repro.engine.trials import QueryConfig, run_query
from repro.churn.lifetimes import ExponentialLifetime, ParetoLifetime
from repro.churn.models import ArrivalDepartureChurn
from repro.sim.rng import iter_seeds

MEAN_LIFETIMES = [2.0, 5.0, 15.0, 50.0, 200.0]
N = 24
TRIALS = 6


def trial(lifetimes, mean: float, seed: int):
    return run_query(QueryConfig(
        n=N, topology="er", aggregate="COUNT", seed=seed,
        query_at=10.0, horizon=400.0,
        churn=lambda f: ArrivalDepartureChurn(
            f, arrival_rate=N / mean, lifetimes=lifetimes,
            concurrency_cap=3 * N, doom_initial=True,
        ),
    ))


def run_family(name: str, make_lifetime):
    rows = []
    curve = {}
    for mean in MEAN_LIFETIMES:
        outcomes = [
            trial(make_lifetime(mean), mean, seed)
            for seed in iter_seeds(2007, TRIALS)
        ]
        completeness = sum(o.completeness for o in outcomes) / len(outcomes)
        full = sum(1 for o in outcomes if o.completeness == 1.0) / len(outcomes)
        terminated = [o for o in outcomes if o.terminated]
        latency = (
            sum(o.latency for o in terminated) / len(terminated)
            if terminated
            else float("nan")
        )
        rows.append([name, mean, completeness, full, latency])
        curve[mean] = completeness
    return rows, curve


def test_e5_session_length_crossover(benchmark):
    exp_rows, exp_curve = run_family(
        "exponential", lambda mean: ExponentialLifetime(mean)
    )
    # Pareto with alpha=2 has mean 2*xm; match the mean.
    par_rows, par_curve = run_family(
        "pareto(a=2)", lambda mean: ParetoLifetime(alpha=2.0, xm=mean / 2.0)
    )
    emit(render_table(
        ["lifetimes", "mean_session", "completeness", "always_full", "latency"],
        exp_rows + par_rows,
        title=f"E5: session-length crossover, n={N} (whole population churns)",
    ))
    # Paper shape: completeness climbs with session length; sessions much
    # longer than the wave latency (~8 time units) are effectively static.
    for curve in (exp_curve, par_curve):
        assert curve[MEAN_LIFETIMES[-1]] > curve[MEAN_LIFETIMES[0]]
        assert curve[MEAN_LIFETIMES[-1]] > 0.9
    # Sessions comparable to the wave latency break completeness.
    assert exp_curve[MEAN_LIFETIMES[0]] < 0.9

    benchmark.pedantic(
        lambda: trial(ExponentialLifetime(15.0), 15.0, 0), rounds=3, iterations=1
    )
