"""E23 — The scale curve: per-event cost must stay flat as n grows.

Claim: after the slot-backed refactor the simulator's per-event cost is
O(1) in the population — no hidden O(n) scan on the ping/send/leave hot
path — so events/sec at n=2000 stays within a small constant of n=50.
The seed core fails this by design: its complete-graph neighbor access
sorted the whole present set per ping (O(n log n)), collapsing throughput
~70x over the same range.

The full curve (n up to 10^5, with peak-RSS and the committed
BENCH_scale.json baseline) lives in ``benchmarks/emit_scale.py``; this
test pins the asymptotic *shape* at CI-friendly sizes.
"""

from __future__ import annotations

import time

from benchmarks.conftest import emit
from repro.analysis.tables import render_table
from repro.obs.sinks import CountingSink
from repro.sim.node import Process
from repro.sim.scheduler import Simulator

PERIOD = 1.0
SIZES = [50, 500, 2000]
HORIZONS = {50: 40.0, 500: 8.0, 2000: 4.0}


class PingNode(Process):
    """Same entity as emit_scale.py's storm: ping one random neighbor."""

    def on_start(self):
        self.set_timer(self.rng.uniform(0.0, PERIOD), "ping")

    def on_timer(self, name, payload):
        target = self.random_neighbor()
        if target is not None:
            self.send(target, "PING")
        self.set_timer(PERIOD, "ping")


def run_point(n: int, horizon: float, seed: int = 2007):
    sim = Simulator(seed=seed, complete=True, notify_leaves=False,
                    notify_joins=False, trace_sink=CountingSink())
    pids = [sim.spawn(PingNode(1.0)).pid for _ in range(n)]
    rng = sim.rng_for("scale-churn")
    for _ in range(n // 20):
        at = rng.uniform(0.1, horizon)
        sim.schedule_leave(at, rng.choice(pids))
        sim.schedule_join(at, lambda: PingNode(1.0), lambda present: ())
    start = time.perf_counter()
    sim.run(until=horizon, max_events=50_000_000)
    wall = time.perf_counter() - start
    return sim.events_executed, wall, sim.queue.backend


def test_e23_scale_curve():
    rows = []
    cost = {}
    for n in SIZES:
        events, wall, backend = run_point(n, HORIZONS[n])
        per_event_us = wall / events * 1e6
        cost[n] = per_event_us
        rows.append([n, events, f"{events / wall:,.0f}",
                     f"{per_event_us:.1f}", backend])
    emit(render_table(
        ["n", "events", "events/sec", "us/event", "queue"],
        rows,
        title="E23: scale curve (ping storm, silent churn, counts sink)",
    ))
    # The asymptotic claim: 40x the population may cost at most 10x per
    # event (scheduling gets deeper, caches get colder — but nothing may
    # scan the population).  The seed core sits near 70x here.
    assert cost[2000] / cost[50] < 10.0, cost
    # The adaptive queue must actually have migrated at the top size.
    assert rows[-1][-1] == "calendar"
    assert rows[0][-1] == "heap"


def test_e23_churn_does_not_scan_population():
    # Silent leave+join on a complete graph is O(1): time 200 churn ops at
    # two population sizes an order of magnitude apart and require the
    # per-op cost not to scale with n.
    def churn_cost(n: int) -> float:
        sim = Simulator(seed=11, complete=True, notify_leaves=False,
                        notify_joins=False, trace_sink=CountingSink())
        pids = [sim.spawn(PingNode(1.0)).pid for _ in range(n)]
        start = time.perf_counter()
        for i in range(200):
            sim.network.remove_process(pids[i])
            pids.append(sim.spawn(PingNode(1.0)).pid)
        return (time.perf_counter() - start) / 200

    small, large = churn_cost(200), churn_cost(4000)
    assert large / small < 8.0, (small, large)
