"""E7 — Knowledge ablation: what does each global parameter buy?

Claim: for the open-loop wave family, knowledge determines the usable TTL:
``G_known_diameter`` gives the tight TTL = D; ``G_known_size`` only the
loose TTL = N - 1 (correct but costlier); ``G_local`` gives no safe TTL at
all (any guess g can be defeated by a graph of diameter > g).  The harness
runs the same query on the same graphs under each knowledge class.
"""

from __future__ import annotations

import random

from benchmarks.conftest import emit
from repro.analysis.tables import render_table
from repro.engine.trials import QueryConfig, run_query
from repro.sim.latency import ConstantDelay
from repro.sim.rng import iter_seeds
from repro.topology import generators as gen

N = 32
GUESS_TTL = 3  # what a G_local protocol might guess


def run_with_ttl(topo, ttl, seed):
    return run_query(QueryConfig(
        n=N, topology=topo, aggregate="COUNT", ttl=ttl,
        seed=seed, delay=ConstantDelay(1.0), horizon=2000.0,
    ))


def test_e7_knowledge_classes(benchmark):
    rows = []
    results = {}
    for family in ("ring", "line", "er"):
        for knowledge, ttl_of in (
            ("G_known_diameter", lambda t: t.diameter()),
            ("G_known_size", lambda t: N - 1),
            ("G_local(guess)", lambda t: GUESS_TTL),
        ):
            solved = 0
            messages = 0.0
            trials = list(iter_seeds(2007, 3))
            for seed in trials:
                topo = gen.make(family, N, random.Random(seed))
                outcome = run_with_ttl(topo, ttl_of(topo), seed)
                solved += outcome.ok
                messages += outcome.messages
            solved_frac = solved / len(trials)
            messages /= len(trials)
            rows.append([family, knowledge, solved_frac, messages])
            results[(family, knowledge)] = (solved_frac, messages)
    emit(render_table(
        ["topology", "knowledge", "solved", "messages"],
        rows,
        title=f"E7: TTL-wave under different knowledge classes, n={N}",
    ))
    for family in ("ring", "line", "er"):
        # Both real knowledge classes solve the problem...
        assert results[(family, "G_known_diameter")][0] == 1.0
        assert results[(family, "G_known_size")][0] == 1.0
        # ...and the loose size bound never beats the tight diameter bound
        # on message cost.
        assert (
            results[(family, "G_known_size")][1]
            >= results[(family, "G_known_diameter")][1]
        )
    # The blind guess fails wherever the diameter exceeds it.
    assert results[("line", "G_local(guess)")][0] == 0.0
    assert results[("ring", "G_local(guess)")][0] == 0.0

    benchmark.pedantic(
        lambda: run_with_ttl(gen.ring(N), N // 2, 0), rounds=3, iterations=1
    )
